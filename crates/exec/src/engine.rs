//! The execution engine: ties parser, planner, and operators together.

use std::cmp::Ordering;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

use qp_obs::{Counter, LatencyHistogram, MetricsRegistry, Tracer};
use qp_sql::{parse_query, Query};
use qp_storage::{Database, Row, Value};

use crate::analyze::PlanProfile;
use crate::cache::PlanCache;
use crate::error::ExecError;
use crate::functions::{AggState, FunctionRegistry};
use crate::guard::QueryGuard;
use crate::plan::ExecCtx;
use crate::planner::{CompiledQuery, KeySource, Planner};
use crate::result::ResultSet;

/// Counters accumulated while planning and executing a query. Benchmarks
/// use these to report *work done* alongside wall-clock time.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ExecStats {
    /// Base-table rows touched by scans.
    pub rows_scanned: u64,
    /// Index probes performed by index nested-loop joins.
    pub index_probes: u64,
    /// Uncorrelated `IN` sub-queries materialized at plan time.
    pub subqueries: u64,
    /// Rows materialized by operators (scan outputs, join outputs,
    /// aggregation groups) — the quantity a
    /// [`crate::guard::QueryGuard`] intermediate-row budget bounds.
    pub rows_intermediate: u64,
}

impl ExecStats {
    /// Adds another stats record into this one.
    pub fn merge(&mut self, other: &ExecStats) {
        self.rows_scanned += other.rows_scanned;
        self.index_probes += other.index_probes;
        self.subqueries += other.subqueries;
        self.rows_intermediate += other.rows_intermediate;
    }
}

/// The query engine: a function registry plus entry points for executing
/// SQL text or pre-built ASTs against a [`Database`].
///
/// ```
/// use qp_exec::Engine;
/// use qp_storage::{Attribute, DataType, Database, Value};
/// let mut db = Database::new();
/// db.create_relation(
///     "MOVIE",
///     vec![Attribute::new("mid", DataType::Int), Attribute::new("title", DataType::Text)],
///     &["mid"],
/// ).unwrap();
/// db.insert_by_name("MOVIE", vec![Value::Int(1), Value::str("Annie Hall")]).unwrap();
/// let engine = Engine::new();
/// let rs = engine.execute_sql(&db, "select title from MOVIE where mid = 1").unwrap();
/// assert_eq!(rs.rows[0][0], Value::str("Annie Hall"));
/// ```
#[derive(Debug)]
pub struct Engine {
    registry: FunctionRegistry,
    tracer: Tracer,
    metrics: Arc<MetricsRegistry>,
    counters: EngineCounters,
    /// Worker threads data-parallel operators may fan out to; 1 = serial.
    parallelism: usize,
    /// Compiled-plan cache; `None` when disabled.
    plan_cache: Option<Arc<PlanCache>>,
    /// Route execution through the legacy row-at-a-time operator path
    /// instead of the vectorized batch engine (the parity oracle).
    row_engine: bool,
}

/// Handles into the engine's [`MetricsRegistry`], fetched once at
/// construction so the per-query path never touches the registry lock.
#[derive(Debug)]
struct EngineCounters {
    /// `exec.queries`: queries executed through the plan-and-run paths.
    queries: Arc<Counter>,
    /// `exec.prepared_execs`: executions of pre-compiled queries (PPA's
    /// per-tuple probes live here).
    prepared_execs: Arc<Counter>,
    /// `exec.rows_scanned`: base-table rows touched, all queries.
    rows_scanned: Arc<Counter>,
    /// `exec.index_probes`: index lookups, all queries.
    index_probes: Arc<Counter>,
    /// `exec.rows_intermediate`: operator-materialized rows, all queries.
    rows_intermediate: Arc<Counter>,
    /// `exec.rows_out`: result rows returned to callers.
    rows_out: Arc<Counter>,
    /// `exec.query_us`: per-query wall-clock latency.
    query_us: Arc<LatencyHistogram>,
    /// `cache.plan.hits`: plan-cache lookups that skipped parse+plan.
    plan_cache_hits: Arc<Counter>,
    /// `cache.plan.misses`: plan-cache lookups that had to compile.
    plan_cache_misses: Arc<Counter>,
    /// `exec.batch.count`: columnar batches produced by the vectorized
    /// path (0 while `QP_ROW_ENGINE` routes through the row path).
    batch_count: Arc<Counter>,
    /// `exec.batch.rows`: live rows carried by those batches.
    batch_rows: Arc<Counter>,
    /// `pool.morsel`: morsels dispatched by the work-stealing pool.
    pool_morsels: Arc<Counter>,
    /// `pool.steal`: morsels executed by a worker other than the one
    /// they were dealt to.
    pool_steals: Arc<Counter>,
}

impl EngineCounters {
    fn new(metrics: &MetricsRegistry) -> Self {
        EngineCounters {
            queries: metrics.counter("exec.queries"),
            prepared_execs: metrics.counter("exec.prepared_execs"),
            rows_scanned: metrics.counter("exec.rows_scanned"),
            index_probes: metrics.counter("exec.index_probes"),
            rows_intermediate: metrics.counter("exec.rows_intermediate"),
            rows_out: metrics.counter("exec.rows_out"),
            query_us: metrics.histogram("exec.query_us"),
            plan_cache_hits: metrics.counter("cache.plan.hits"),
            plan_cache_misses: metrics.counter("cache.plan.misses"),
            batch_count: metrics.counter("exec.batch.count"),
            batch_rows: metrics.counter("exec.batch.rows"),
            pool_morsels: metrics.counter("pool.morsel"),
            pool_steals: metrics.counter("pool.steal"),
        }
    }

    /// Folds one query's work counters and result size into the totals.
    fn note(&self, stats: &ExecStats, rows_out: u64, elapsed: std::time::Duration) {
        self.rows_scanned.add(stats.rows_scanned);
        self.index_probes.add(stats.index_probes);
        self.rows_intermediate.add(stats.rows_intermediate);
        self.rows_out.add(rows_out);
        self.query_us.observe(elapsed);
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// An engine with the built-in functions registered and observability
    /// off (a disabled [`Tracer`], an empty [`MetricsRegistry`]).
    ///
    /// Concurrency defaults come from the environment so test/CI legs can
    /// sweep configurations without code changes: `QP_PARALLELISM` sets
    /// the worker count (default 1 = serial), `QP_DISABLE_PLAN_CACHE=1`
    /// starts the engine without a plan cache, `QP_ROW_ENGINE=1` routes
    /// execution through the legacy row-at-a-time path (the vectorized
    /// engine's parity oracle).
    pub fn new() -> Self {
        let metrics = Arc::new(MetricsRegistry::new());
        let counters = EngineCounters::new(&metrics);
        let parallelism = std::env::var("QP_PARALLELISM")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(1)
            .max(1);
        let plan_cache = if env_flag("QP_DISABLE_PLAN_CACHE") {
            None
        } else {
            Some(Arc::new(PlanCache::new()))
        };
        Engine {
            registry: FunctionRegistry::new(),
            tracer: Tracer::disabled(),
            metrics,
            counters,
            parallelism,
            plan_cache,
            row_engine: env_flag("QP_ROW_ENGINE"),
        }
    }

    /// Switches between the vectorized batch engine (default, `false`)
    /// and the legacy row-at-a-time path (`true`). The row path is kept
    /// as the parity oracle: both produce byte-identical results, and
    /// the parity suites run every query on both. Also selects PPA's
    /// probe strategy (batched IN-set probes vs. per-tuple point probes).
    pub fn set_row_engine(&mut self, enabled: bool) {
        self.row_engine = enabled;
    }

    /// Whether the legacy row-at-a-time path is active (see
    /// [`Engine::set_row_engine`] and the `QP_ROW_ENGINE` env toggle).
    pub fn row_engine(&self) -> bool {
        self.row_engine
    }

    /// Sets the number of worker threads data-parallel operators (hash
    /// join build/probe) and callers that consult
    /// [`Engine::parallelism`] (PPA's per-round probes) may use. 1 means
    /// fully serial; values are clamped to at least 1.
    pub fn set_parallelism(&mut self, parallelism: usize) {
        self.parallelism = parallelism.max(1);
    }

    /// The configured worker-thread count (1 = serial).
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Enables (with a fresh default-geometry cache) or disables the plan
    /// cache. Disabling drops the cache and its contents.
    pub fn set_plan_cache_enabled(&mut self, enabled: bool) {
        match (enabled, self.plan_cache.is_some()) {
            (true, false) => self.plan_cache = Some(Arc::new(PlanCache::new())),
            (false, true) => self.plan_cache = None,
            _ => {}
        }
    }

    /// The plan cache, when enabled — callers can inspect hit/miss
    /// totals or [`PlanCache::clear`] it.
    pub fn plan_cache(&self) -> Option<&Arc<PlanCache>> {
        self.plan_cache.as_ref()
    }

    /// Installs (or removes) a specific plan cache instance. This is the
    /// non-destructive sibling of [`Engine::set_plan_cache_enabled`]:
    /// callers that disable caching for one run set the warm cache
    /// aside and put the same `Arc` back afterwards.
    pub fn set_plan_cache(&mut self, cache: Option<Arc<PlanCache>>) {
        self.plan_cache = cache;
    }

    /// The function registry (for UDF registration).
    pub fn registry_mut(&mut self) -> &mut FunctionRegistry {
        &mut self.registry
    }

    /// Read access to the registry.
    pub fn registry(&self) -> &FunctionRegistry {
        &self.registry
    }

    /// Attaches a tracer: every subsequent query emits an `exec.query`
    /// span (and higher layers that share this engine nest their phase
    /// spans around it). Pass [`Tracer::disabled`] to turn tracing off.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The engine's tracer (disabled by default). Cloning it gives
    /// callers a handle that parents their spans around engine work.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The engine's metrics registry. Counters accumulate across the
    /// engine's lifetime; see `OBSERVABILITY.md` for the metric names.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Parses and executes SQL text.
    pub fn execute_sql(&self, db: &Database, sql: &str) -> Result<ResultSet, ExecError> {
        let query = parse_query(sql)?;
        self.execute(db, &query)
    }

    /// Executes a query AST.
    pub fn execute(&self, db: &Database, query: &Query) -> Result<ResultSet, ExecError> {
        self.execute_with_stats(db, query).map(|(rs, _)| rs)
    }

    /// Executes a query AST, returning work counters alongside the result.
    pub fn execute_with_stats(
        &self,
        db: &Database,
        query: &Query,
    ) -> Result<(ResultSet, ExecStats), ExecError> {
        self.execute_with_guard(db, query, &QueryGuard::unlimited())
    }

    /// Executes a query AST under a [`QueryGuard`]: planning (including
    /// `IN` sub-query materialization) and every operator respect the
    /// guard's deadline, budgets, and cancellation token. The result rows
    /// are charged against the guard's output budget.
    pub fn execute_with_guard(
        &self,
        db: &Database,
        query: &Query,
        guard: &QueryGuard,
    ) -> Result<(ResultSet, ExecStats), ExecError> {
        let mut span = self.tracer.span("exec.query");
        let t0 = Instant::now();
        self.counters.queries.inc();
        let (compiled, mut stats) = self.compile_cached(db, query, guard)?;
        let rows = self.run(db, &compiled, &mut stats, guard)?;
        guard.charge_output(rows.len() as u64)?;
        self.counters.note(&stats, rows.len() as u64, t0.elapsed());
        span.attr("rows", rows.len());
        span.attr("rows_scanned", stats.rows_scanned);
        Ok((ResultSet::new(compiled.columns.clone(), rows), stats))
    }

    /// Executes a query AST under a [`QueryGuard`] *without* charging the
    /// result rows to the guard's output budget. Internal bookkeeping
    /// statements (PPA's phase and probe queries) use this: their rows
    /// are algorithm state, not user output — the personalization layer
    /// charges the output budget per *emitted* tuple instead.
    pub fn execute_uncharged(
        &self,
        db: &Database,
        query: &Query,
        guard: &QueryGuard,
    ) -> Result<ResultSet, ExecError> {
        let mut span = self.tracer.span("exec.query");
        let t0 = Instant::now();
        self.counters.queries.inc();
        let (compiled, mut stats) = self.compile_cached(db, query, guard)?;
        let rows = self.run(db, &compiled, &mut stats, guard)?;
        self.counters.note(&stats, rows.len() as u64, t0.elapsed());
        span.attr("rows", rows.len());
        span.attr("rows_scanned", stats.rows_scanned);
        Ok(ResultSet::new(compiled.columns.clone(), rows))
    }

    /// Compiles a query for repeated execution.
    pub fn prepare(&self, db: &Database, query: &Query) -> Result<CompiledQuery, ExecError> {
        let mut planner = Planner::new(db, &self.registry);
        planner.compile(query)
    }

    /// Compiles through the plan cache, returning a shared handle:
    /// repeated preparation of the same (normalized) query text against
    /// an unchanged database skips parse+plan entirely. Callers that must
    /// mutate the plan ([`CompiledQuery::rebind_rowid`]) clone the
    /// `CompiledQuery` out of the `Arc`. Falls back to a plain
    /// [`Engine::prepare`] when the cache is disabled.
    pub fn prepare_cached(
        &self,
        db: &Database,
        query: &Query,
    ) -> Result<Arc<CompiledQuery>, ExecError> {
        self.compile_cached(db, query, &QueryGuard::unlimited()).map(|(c, _)| c)
    }

    /// Cache-aware compilation. On a hit the returned stats are empty
    /// (no plan-time sub-queries ran — that is the point); on a miss the
    /// freshly compiled plan is cached under the database's current
    /// version and the planner's stats are returned.
    fn compile_cached(
        &self,
        db: &Database,
        query: &Query,
        guard: &QueryGuard,
    ) -> Result<(Arc<CompiledQuery>, ExecStats), ExecError> {
        let Some(cache) = &self.plan_cache else {
            let mut planner = Planner::new(db, &self.registry).with_guard(guard.clone());
            let compiled = planner.compile(query)?;
            return Ok((Arc::new(compiled), planner.take_stats()));
        };
        let sql = query.to_string();
        if let Some(hit) = cache.get(db, &sql) {
            self.counters.plan_cache_hits.inc();
            self.tracer.event("cache.plan.hit", &[("sql_len", (sql.len() as u64).into())]);
            return Ok((hit, ExecStats::default()));
        }
        self.counters.plan_cache_misses.inc();
        let mut planner = Planner::new(db, &self.registry).with_guard(guard.clone());
        let compiled = planner.compile(query)?;
        Ok((cache.insert(db, sql, compiled), planner.take_stats()))
    }

    /// Runs a compiled query with this engine's configured parallelism,
    /// dispatching to the vectorized batch path unless the row engine is
    /// selected.
    fn run(
        &self,
        db: &Database,
        compiled: &CompiledQuery,
        stats: &mut ExecStats,
        guard: &QueryGuard,
    ) -> Result<Vec<Row>, ExecError> {
        let mut ctx = ExecCtx {
            stats,
            guard,
            profile: None,
            parallelism: self.parallelism,
            batch_count: 0,
            batch_rows: 0,
            pool_morsels: 0,
            pool_steals: 0,
        };
        let rows = if self.row_engine {
            run_compiled_at(db, compiled, &mut ctx, 0)?
        } else {
            crate::batch::run_compiled_batched_at(db, compiled, &mut ctx, 0)?
        };
        self.note_batches(&ctx);
        Ok(rows)
    }

    /// Folds one execution's batch and pool-scheduling counters into the
    /// engine totals.
    fn note_batches(&self, ctx: &ExecCtx<'_>) {
        if ctx.batch_count > 0 {
            self.counters.batch_count.add(ctx.batch_count);
            self.counters.batch_rows.add(ctx.batch_rows);
        }
        self.note_pool(crate::pool::MorselStats {
            morsels: ctx.pool_morsels,
            steals: ctx.pool_steals,
        });
    }

    /// Folds one parallel run's scheduling counters into the
    /// `pool.morsel` / `pool.steal` totals. Higher layers that drive the
    /// pool directly (PPA's preference-query materializations and probe
    /// rounds) report through here; engine-internal operators do so
    /// automatically.
    pub fn note_pool(&self, stats: crate::pool::MorselStats) {
        if stats.morsels > 0 {
            self.counters.pool_morsels.add(stats.morsels);
            self.counters.pool_steals.add(stats.steals);
        }
    }

    /// Compiles a query and renders its physical plan as an indented
    /// tree (an `EXPLAIN`).
    pub fn explain(&self, db: &Database, query: &Query) -> Result<String, ExecError> {
        let compiled = self.prepare(db, query)?;
        Ok(crate::explain::render(db, &compiled))
    }

    /// Executes a previously prepared query.
    pub fn execute_prepared(
        &self,
        db: &Database,
        compiled: &CompiledQuery,
        stats: &mut ExecStats,
    ) -> Result<ResultSet, ExecError> {
        self.counters.prepared_execs.inc();
        let rows = self.run(db, compiled, stats, &QueryGuard::unlimited())?;
        Ok(ResultSet::new(compiled.columns.clone(), rows))
    }

    /// Executes a previously prepared query, returning only the rows —
    /// the allocation-free-of-metadata path hot loops (PPA's per-tuple
    /// parameterized queries) use. Deliberately span-free: a traced PPA
    /// run issues hundreds of these per phase, and the phase span plus
    /// the `exec.prepared_execs` counter carry the signal without
    /// flooding the trace.
    pub fn execute_prepared_rows(
        &self,
        db: &Database,
        compiled: &CompiledQuery,
        stats: &mut ExecStats,
    ) -> Result<Vec<Row>, ExecError> {
        self.counters.prepared_execs.inc();
        self.run(db, compiled, stats, &QueryGuard::unlimited())
    }

    /// [`Engine::execute_prepared_rows`] under a [`QueryGuard`]. Result
    /// rows are *not* charged to the output budget here: prepared hot
    /// loops (PPA probes) produce bookkeeping rows, not user output.
    pub fn execute_prepared_rows_guarded(
        &self,
        db: &Database,
        compiled: &CompiledQuery,
        stats: &mut ExecStats,
        guard: &QueryGuard,
    ) -> Result<Vec<Row>, ExecError> {
        self.counters.prepared_execs.inc();
        self.run(db, compiled, stats, guard)
    }

    /// Executes a query with a per-node [`PlanProfile`] attached,
    /// returning the result, the work counters, and the profile. This is
    /// the programmatic face of [`Engine::explain_analyze`].
    pub fn execute_profiled(
        &self,
        db: &Database,
        query: &Query,
        guard: &QueryGuard,
    ) -> Result<(ResultSet, ExecStats, PlanProfile), ExecError> {
        let (compiled, rows, stats, profile) = self.run_profiled(db, query, guard)?;
        Ok((ResultSet::new(compiled.columns.clone(), rows), stats, profile))
    }

    /// Executes the query, then renders the annotated plan tree: per
    /// node, actual rows out, elapsed time, and observed selectivity next
    /// to the planner's histogram estimate. The query *runs in full* —
    /// like PostgreSQL's `EXPLAIN ANALYZE`, this reports actuals, not
    /// estimates alone.
    pub fn explain_analyze(&self, db: &Database, query: &Query) -> Result<String, ExecError> {
        let (compiled, _rows, _stats, profile) =
            self.run_profiled(db, query, &QueryGuard::unlimited())?;
        Ok(crate::analyze::render_analyzed(db, &compiled, &profile))
    }

    fn run_profiled(
        &self,
        db: &Database,
        query: &Query,
        guard: &QueryGuard,
    ) -> Result<(Arc<CompiledQuery>, Vec<Row>, ExecStats, PlanProfile), ExecError> {
        let mut span = self.tracer.span("exec.query");
        self.counters.queries.inc();
        let (compiled, mut stats) = self.compile_cached(db, query, guard)?;
        let profile = PlanProfile::for_query(&compiled);
        let t0 = Instant::now();
        let rows = {
            let mut ctx = ExecCtx {
                stats: &mut stats,
                guard,
                profile: Some(&profile),
                parallelism: self.parallelism,
                batch_count: 0,
                batch_rows: 0,
                pool_morsels: 0,
                pool_steals: 0,
            };
            let rows = if self.row_engine {
                run_compiled_at(db, &compiled, &mut ctx, 0)?
            } else {
                crate::batch::run_compiled_batched_at(db, &compiled, &mut ctx, 0)?
            };
            self.note_batches(&ctx);
            rows
        };
        guard.charge_output(rows.len() as u64)?;
        profile.set_result(rows.len() as u64, t0.elapsed());
        self.counters.note(&stats, rows.len() as u64, t0.elapsed());
        span.attr("rows", rows.len());
        span.attr("profiled", true);
        Ok((compiled, rows, stats, profile))
    }
}

/// Runs a compiled query to completion: branches → aggregation → having →
/// projection → distinct → order → limit.
pub(crate) fn run_compiled(
    db: &Database,
    compiled: &CompiledQuery,
    stats: &mut ExecStats,
    guard: &QueryGuard,
) -> Result<Vec<Row>, ExecError> {
    let mut ctx = ExecCtx {
        stats,
        guard,
        profile: None,
        parallelism: 1,
        batch_count: 0,
        batch_rows: 0,
        pool_morsels: 0,
        pool_steals: 0,
    };
    run_compiled_at(db, compiled, &mut ctx, 0)
}

/// [`run_compiled`] with an execution context and a node-id base: branch
/// plans occupy consecutive pre-order id ranges starting at `base` (see
/// [`crate::analyze::PlanProfile`]). Derived-table execution re-enters
/// here with the derived node's own base.
pub(crate) fn run_compiled_at(
    db: &Database,
    compiled: &CompiledQuery,
    ctx: &mut ExecCtx<'_>,
    base: usize,
) -> Result<Vec<Row>, ExecError> {
    let mut rows: Vec<Row> = Vec::new();
    // One extracted key column per ORDER BY Source key (evaluated against
    // the pre-projection row); columnar so the sort can read keys by
    // reference instead of cloning a key row per input row.
    let src_exprs = source_key_exprs(compiled);
    let mut skeys: Vec<Vec<Value>> = vec![Vec::new(); src_exprs.len()];
    // Source keys are only compiled on single-branch queries; for any
    // other shape the old code sorted missing sources as NULL keys, which
    // the final `resize` below reproduces.
    let keep_source = compiled.branches.len() == 1 && !src_exprs.is_empty();
    let mut branch_base = base;
    for branch in &compiled.branches {
        let input = branch.plan.run_node(db, ctx, branch_base)?;
        branch_base += branch.plan.node_count();
        let sources: Vec<Row> = match &branch.agg {
            Some(agg) => {
                let mut inter = agg.spec.run(input);
                ctx.stats.rows_intermediate += inter.len() as u64;
                ctx.guard.charge_intermediate(inter.len() as u64)?;
                if let Some(h) = &agg.having {
                    inter.retain(|r| h.eval_bool(r));
                }
                inter
            }
            None => input,
        };
        let mut branch_rows: Vec<Row> = Vec::with_capacity(sources.len());
        for src in sources {
            branch_rows.push(branch.project.iter().map(|p| p.eval(&src)).collect());
            if keep_source {
                for (j, e) in src_exprs.iter().enumerate() {
                    skeys[j].push(e.eval(&src));
                }
            }
        }
        if branch.distinct {
            let mut seen: HashSet<Row> = HashSet::with_capacity(branch_rows.len());
            branch_rows.retain(|out| seen.insert(out.clone()));
        }
        rows.extend(branch_rows);
    }
    Ok(sort_and_limit(compiled, rows, skeys))
}

/// The ORDER BY Source-key expressions, in key order.
pub(crate) fn source_key_exprs(compiled: &CompiledQuery) -> Vec<&crate::expr::PhysExpr> {
    compiled
        .order
        .iter()
        .filter_map(|k| match &k.source {
            KeySource::Source(e) => Some(e),
            KeySource::Output(_) => None,
        })
        .collect()
}

/// Shared final stage of both engines: ORDER BY + LIMIT over projected
/// rows. `skeys` holds one extracted column per Source order key (see
/// [`source_key_exprs`]); Output keys read the projected rows directly.
/// Sorts a permutation of row indices — keys are compared by reference,
/// so no `Value` is cloned per row — with the deterministic tie-break on
/// original row position, then reorders once.
pub(crate) fn sort_and_limit(
    compiled: &CompiledQuery,
    mut rows: Vec<Row>,
    mut skeys: Vec<Vec<Value>>,
) -> Vec<Row> {
    if !compiled.order.is_empty() && rows.len() > 1 {
        // Pad short source-key columns with NULLs (multi-branch queries
        // never retain sources; the planner rejects DISTINCT + Source
        // keys, so on the retained path lengths already match).
        for col in &mut skeys {
            col.resize(rows.len(), Value::Null);
        }
        enum KeyCol {
            Out(usize),
            Src(usize),
        }
        let mut cols = Vec::with_capacity(compiled.order.len());
        let mut s = 0usize;
        for k in &compiled.order {
            match &k.source {
                KeySource::Output(c) => cols.push(KeyCol::Out(*c)),
                KeySource::Source(_) => {
                    cols.push(KeyCol::Src(s));
                    s += 1;
                }
            }
        }
        let mut idx: Vec<usize> = (0..rows.len()).collect();
        idx.sort_unstable_by(|&a, &b| {
            for (kc, spec) in cols.iter().zip(&compiled.order) {
                let (va, vb) = match kc {
                    KeyCol::Out(c) => (&rows[a][*c], &rows[b][*c]),
                    KeyCol::Src(j) => (&skeys[*j][a], &skeys[*j][b]),
                };
                let ord = va.total_cmp(vb);
                let ord = if spec.desc { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            a.cmp(&b) // stable tie-break on original position
        });
        let mut reordered = Vec::with_capacity(rows.len());
        for &i in &idx {
            reordered.push(std::mem::take(&mut rows[i]));
        }
        rows = reordered;
    }
    if let Some(n) = compiled.limit {
        rows.truncate(n as usize);
    }
    rows
}

/// `true` when the environment variable `name` is set to a truthy value
/// (anything other than empty, `0`, or `false`).
fn env_flag(name: &str) -> bool {
    match std::env::var(name) {
        Ok(v) => {
            let v = v.trim();
            !(v.is_empty() || v == "0" || v.eq_ignore_ascii_case("false"))
        }
        Err(_) => false,
    }
}

// keep the AggState import used (trait methods are called through plan.rs)
#[allow(unused)]
fn _assert_traits(_s: &dyn AggState) {}
