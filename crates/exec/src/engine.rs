//! The execution engine: ties parser, planner, and operators together.

use std::cmp::Ordering;
use std::collections::HashSet;

use qp_sql::{parse_query, Query};
use qp_storage::{Database, Row, Value};

use crate::error::ExecError;
use crate::functions::{AggState, FunctionRegistry};
use crate::guard::QueryGuard;
use crate::planner::{CompiledQuery, KeySource, Planner};
use crate::result::ResultSet;

/// Counters accumulated while planning and executing a query. Benchmarks
/// use these to report *work done* alongside wall-clock time.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ExecStats {
    /// Base-table rows touched by scans.
    pub rows_scanned: u64,
    /// Index probes performed by index nested-loop joins.
    pub index_probes: u64,
    /// Uncorrelated `IN` sub-queries materialized at plan time.
    pub subqueries: u64,
    /// Rows materialized by operators (scan outputs, join outputs,
    /// aggregation groups) — the quantity a
    /// [`crate::guard::QueryGuard`] intermediate-row budget bounds.
    pub rows_intermediate: u64,
}

impl ExecStats {
    /// Adds another stats record into this one.
    pub fn merge(&mut self, other: &ExecStats) {
        self.rows_scanned += other.rows_scanned;
        self.index_probes += other.index_probes;
        self.subqueries += other.subqueries;
        self.rows_intermediate += other.rows_intermediate;
    }
}

/// The query engine: a function registry plus entry points for executing
/// SQL text or pre-built ASTs against a [`Database`].
///
/// ```
/// use qp_exec::Engine;
/// use qp_storage::{Attribute, DataType, Database, Value};
/// let mut db = Database::new();
/// db.create_relation(
///     "MOVIE",
///     vec![Attribute::new("mid", DataType::Int), Attribute::new("title", DataType::Text)],
///     &["mid"],
/// ).unwrap();
/// db.insert_by_name("MOVIE", vec![Value::Int(1), Value::str("Annie Hall")]).unwrap();
/// let engine = Engine::new();
/// let rs = engine.execute_sql(&db, "select title from MOVIE where mid = 1").unwrap();
/// assert_eq!(rs.rows[0][0], Value::str("Annie Hall"));
/// ```
#[derive(Debug, Default)]
pub struct Engine {
    registry: FunctionRegistry,
}

impl Engine {
    /// An engine with the built-in functions registered.
    pub fn new() -> Self {
        Engine { registry: FunctionRegistry::new() }
    }

    /// The function registry (for UDF registration).
    pub fn registry_mut(&mut self) -> &mut FunctionRegistry {
        &mut self.registry
    }

    /// Read access to the registry.
    pub fn registry(&self) -> &FunctionRegistry {
        &self.registry
    }

    /// Parses and executes SQL text.
    pub fn execute_sql(&self, db: &Database, sql: &str) -> Result<ResultSet, ExecError> {
        let query = parse_query(sql)?;
        self.execute(db, &query)
    }

    /// Executes a query AST.
    pub fn execute(&self, db: &Database, query: &Query) -> Result<ResultSet, ExecError> {
        self.execute_with_stats(db, query).map(|(rs, _)| rs)
    }

    /// Executes a query AST, returning work counters alongside the result.
    pub fn execute_with_stats(
        &self,
        db: &Database,
        query: &Query,
    ) -> Result<(ResultSet, ExecStats), ExecError> {
        self.execute_with_guard(db, query, &QueryGuard::unlimited())
    }

    /// Executes a query AST under a [`QueryGuard`]: planning (including
    /// `IN` sub-query materialization) and every operator respect the
    /// guard's deadline, budgets, and cancellation token. The result rows
    /// are charged against the guard's output budget.
    pub fn execute_with_guard(
        &self,
        db: &Database,
        query: &Query,
        guard: &QueryGuard,
    ) -> Result<(ResultSet, ExecStats), ExecError> {
        let mut planner = Planner::new(db, &self.registry).with_guard(guard.clone());
        let compiled = planner.compile(query)?;
        let mut stats = planner.take_stats();
        let rows = run_compiled(db, &compiled, &mut stats, guard)?;
        guard.charge_output(rows.len() as u64)?;
        Ok((ResultSet::new(compiled.columns.clone(), rows), stats))
    }

    /// Executes a query AST under a [`QueryGuard`] *without* charging the
    /// result rows to the guard's output budget. Internal bookkeeping
    /// statements (PPA's phase and probe queries) use this: their rows
    /// are algorithm state, not user output — the personalization layer
    /// charges the output budget per *emitted* tuple instead.
    pub fn execute_uncharged(
        &self,
        db: &Database,
        query: &Query,
        guard: &QueryGuard,
    ) -> Result<ResultSet, ExecError> {
        let mut planner = Planner::new(db, &self.registry).with_guard(guard.clone());
        let compiled = planner.compile(query)?;
        let mut stats = planner.take_stats();
        let rows = run_compiled(db, &compiled, &mut stats, guard)?;
        Ok(ResultSet::new(compiled.columns.clone(), rows))
    }

    /// Compiles a query for repeated execution.
    pub fn prepare(&self, db: &Database, query: &Query) -> Result<CompiledQuery, ExecError> {
        let mut planner = Planner::new(db, &self.registry);
        planner.compile(query)
    }

    /// Compiles a query and renders its physical plan as an indented
    /// tree (an `EXPLAIN`).
    pub fn explain(&self, db: &Database, query: &Query) -> Result<String, ExecError> {
        let compiled = self.prepare(db, query)?;
        Ok(crate::explain::render(db, &compiled))
    }

    /// Executes a previously prepared query.
    pub fn execute_prepared(
        &self,
        db: &Database,
        compiled: &CompiledQuery,
        stats: &mut ExecStats,
    ) -> Result<ResultSet, ExecError> {
        let rows = run_compiled(db, compiled, stats, &QueryGuard::unlimited())?;
        Ok(ResultSet::new(compiled.columns.clone(), rows))
    }

    /// Executes a previously prepared query, returning only the rows —
    /// the allocation-free-of-metadata path hot loops (PPA's per-tuple
    /// parameterized queries) use.
    pub fn execute_prepared_rows(
        &self,
        db: &Database,
        compiled: &CompiledQuery,
        stats: &mut ExecStats,
    ) -> Result<Vec<Row>, ExecError> {
        run_compiled(db, compiled, stats, &QueryGuard::unlimited())
    }

    /// [`Engine::execute_prepared_rows`] under a [`QueryGuard`]. Result
    /// rows are *not* charged to the output budget here: prepared hot
    /// loops (PPA probes) produce bookkeeping rows, not user output.
    pub fn execute_prepared_rows_guarded(
        &self,
        db: &Database,
        compiled: &CompiledQuery,
        stats: &mut ExecStats,
        guard: &QueryGuard,
    ) -> Result<Vec<Row>, ExecError> {
        run_compiled(db, compiled, stats, guard)
    }
}

/// Runs a compiled query to completion: branches → aggregation → having →
/// projection → distinct → order → limit.
pub(crate) fn run_compiled(
    db: &Database,
    compiled: &CompiledQuery,
    stats: &mut ExecStats,
    guard: &QueryGuard,
) -> Result<Vec<Row>, ExecError> {
    // (source row, output row) pairs; source rows back ORDER BY
    // expressions that are not output columns.
    let mut pairs: Vec<(Option<Row>, Row)> = Vec::new();
    let single_branch = compiled.branches.len() == 1;
    for branch in &compiled.branches {
        let input = branch.plan.run(db, stats, guard)?;
        let sources: Vec<Row> = match &branch.agg {
            Some(agg) => {
                let mut inter = agg.spec.run(input);
                stats.rows_intermediate += inter.len() as u64;
                guard.charge_intermediate(inter.len() as u64)?;
                if let Some(h) = &agg.having {
                    inter.retain(|r| h.eval_bool(r));
                }
                inter
            }
            None => input,
        };
        let keep_source = single_branch
            && compiled.order.iter().any(|k| matches!(k.source, KeySource::Source(_)));
        let mut branch_pairs: Vec<(Option<Row>, Row)> = Vec::with_capacity(sources.len());
        for src in sources {
            let out: Row = branch.project.iter().map(|p| p.eval(&src)).collect();
            branch_pairs.push((if keep_source { Some(src) } else { None }, out));
        }
        if branch.distinct {
            let mut seen: HashSet<Row> = HashSet::with_capacity(branch_pairs.len());
            branch_pairs.retain(|(_, out)| seen.insert(out.clone()));
        }
        pairs.extend(branch_pairs);
    }
    if !compiled.order.is_empty() {
        // Pre-compute sort keys.
        let mut keyed: Vec<(Vec<Value>, usize)> = pairs
            .iter()
            .enumerate()
            .map(|(i, (src, out))| {
                let keys: Vec<Value> = compiled
                    .order
                    .iter()
                    .map(|k| match &k.source {
                        KeySource::Output(c) => out[*c].clone(),
                        // `keep_source` retained sources iff a Source key
                        // exists on a single branch; a missing source here
                        // would be a planner bug, surfaced as NULL keys
                        // rather than a panic.
                        KeySource::Source(e) => {
                            src.as_deref().map_or(Value::Null, |s| e.eval(s))
                        }
                    })
                    .collect();
                (keys, i)
            })
            .collect();
        keyed.sort_by(|(ka, ia), (kb, ib)| {
            for (k, spec) in ka.iter().zip(kb).zip(&compiled.order) {
                let (a, b) = k;
                let ord = a.total_cmp(b);
                let ord = if spec.desc { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            ia.cmp(ib) // stable tie-break on original position
        });
        let mut reordered = Vec::with_capacity(pairs.len());
        for (_, i) in keyed {
            reordered.push(std::mem::take(&mut pairs[i].1));
        }
        let mut rows = reordered;
        if let Some(n) = compiled.limit {
            rows.truncate(n as usize);
        }
        return Ok(rows);
    }
    let mut rows: Vec<Row> = pairs.into_iter().map(|(_, out)| out).collect();
    if let Some(n) = compiled.limit {
        rows.truncate(n as usize);
    }
    Ok(rows)
}

// keep the AggState import used (trait methods are called through plan.rs)
#[allow(unused)]
fn _assert_traits(_s: &dyn AggState) {}
