//! Execution and planning errors.

use std::fmt;

use qp_sql::ParseError;
use qp_storage::StorageError;

/// Errors raised while planning or executing a query.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// The SQL text failed to parse (only from `execute_sql`).
    Parse(ParseError),
    /// A catalog lookup failed.
    Storage(StorageError),
    /// A table binding was not found in scope.
    UnknownBinding(String),
    /// A column name was not found in any binding.
    UnknownColumn(String),
    /// A column name matched more than one binding.
    AmbiguousColumn(String),
    /// Two bindings share a name.
    DuplicateBinding(String),
    /// A function name is not registered.
    UnknownFunction(String),
    /// An aggregate appeared where none is allowed, or vice versa.
    MisplacedAggregate(String),
    /// A non-grouped column was referenced in an aggregate query.
    NotGrouped(String),
    /// UNION ALL branches disagree on arity.
    UnionArityMismatch {
        /// Arity of the first branch.
        expected: usize,
        /// Arity of the offending branch.
        got: usize,
    },
    /// An IN sub-query projected more or fewer than one column.
    SubqueryArity(usize),
    /// An IN sub-query referenced bindings of the outer query (only
    /// uncorrelated sub-queries are supported).
    CorrelatedSubquery(String),
    /// ORDER BY expression could not be resolved.
    UnresolvedOrderBy(String),
    /// A type error during evaluation.
    Type(String),
    /// Anything else.
    Unsupported(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Parse(e) => write!(f, "{e}"),
            ExecError::Storage(e) => write!(f, "{e}"),
            ExecError::UnknownBinding(b) => write!(f, "unknown table binding `{b}`"),
            ExecError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            ExecError::AmbiguousColumn(c) => write!(f, "ambiguous column `{c}`"),
            ExecError::DuplicateBinding(b) => write!(f, "duplicate table binding `{b}`"),
            ExecError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            ExecError::MisplacedAggregate(n) => {
                write!(f, "aggregate `{n}` is not allowed in this context")
            }
            ExecError::NotGrouped(c) => {
                write!(f, "column `{c}` must appear in GROUP BY or an aggregate")
            }
            ExecError::UnionArityMismatch { expected, got } => {
                write!(f, "UNION ALL branches have different arities: {expected} vs {got}")
            }
            ExecError::SubqueryArity(n) => {
                write!(f, "IN sub-query must project exactly one column, got {n}")
            }
            ExecError::CorrelatedSubquery(c) => {
                write!(f, "correlated sub-queries are not supported (outer reference `{c}`)")
            }
            ExecError::UnresolvedOrderBy(e) => {
                write!(f, "cannot resolve ORDER BY expression `{e}`")
            }
            ExecError::Type(msg) => write!(f, "type error: {msg}"),
            ExecError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<StorageError> for ExecError {
    fn from(e: StorageError) -> Self {
        ExecError::Storage(e)
    }
}

impl From<ParseError> for ExecError {
    fn from(e: ParseError) -> Self {
        ExecError::Parse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ExecError::UnknownColumn("x".into()).to_string().contains("`x`"));
        assert!(ExecError::UnionArityMismatch { expected: 2, got: 3 }
            .to_string()
            .contains("2 vs 3"));
    }
}
