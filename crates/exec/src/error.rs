//! Execution and planning errors.

use std::fmt;

use qp_sql::ParseError;
use qp_storage::StorageError;

/// Errors raised while planning or executing a query.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// The SQL text failed to parse (only from `execute_sql`).
    Parse(ParseError),
    /// A catalog lookup failed.
    Storage(StorageError),
    /// A table binding was not found in scope.
    UnknownBinding(String),
    /// A column name was not found in any binding.
    UnknownColumn(String),
    /// A column name matched more than one binding.
    AmbiguousColumn(String),
    /// Two bindings share a name.
    DuplicateBinding(String),
    /// A function name is not registered.
    UnknownFunction(String),
    /// An aggregate appeared where none is allowed, or vice versa.
    MisplacedAggregate(String),
    /// A non-grouped column was referenced in an aggregate query.
    NotGrouped(String),
    /// UNION ALL branches disagree on arity.
    UnionArityMismatch {
        /// Arity of the first branch.
        expected: usize,
        /// Arity of the offending branch.
        got: usize,
    },
    /// An IN sub-query projected more or fewer than one column.
    SubqueryArity(usize),
    /// An IN sub-query referenced bindings of the outer query (only
    /// uncorrelated sub-queries are supported).
    CorrelatedSubquery(String),
    /// ORDER BY expression could not be resolved.
    UnresolvedOrderBy(String),
    /// A type error during evaluation.
    Type(String),
    /// A [`crate::guard::QueryGuard`] budget was exhausted; the query was
    /// stopped before completion.
    ResourceExhausted {
        /// Which budget tripped.
        resource: ResourceKind,
        /// The configured limit (milliseconds for deadlines, rows
        /// otherwise).
        limit: u64,
    },
    /// The query was cancelled through its
    /// [`crate::guard::CancelToken`].
    Cancelled,
    /// An injected fault fired at a [`qp_storage::failpoint`] site (only
    /// under the `failpoints` feature).
    Fault(String),
    /// A [`crate::pool::morsel_map`] worker panicked; the unwind was
    /// caught at the morsel boundary (see [`crate::pool::WorkerPanic`])
    /// so the request degrades instead of the serving thread dying.
    WorkerPanic {
        /// Index of the morsel whose execution panicked.
        morsel: usize,
        /// The panic payload rendered as text.
        message: String,
    },
    /// An internal invariant was violated — a bug in the planner or
    /// engine, surfaced as an error instead of a panic so callers can
    /// degrade gracefully.
    Internal(String),
    /// Anything else.
    Unsupported(String),
}

/// The budget dimension named by [`ExecError::ResourceExhausted`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceKind {
    /// The wall-clock deadline passed.
    Deadline,
    /// The result-row budget was spent.
    OutputRows,
    /// The operator-intermediate-row budget was spent.
    IntermediateRows,
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceKind::Deadline => write!(f, "deadline"),
            ResourceKind::OutputRows => write!(f, "output rows"),
            ResourceKind::IntermediateRows => write!(f, "intermediate rows"),
        }
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Parse(e) => write!(f, "{e}"),
            ExecError::Storage(e) => write!(f, "{e}"),
            ExecError::UnknownBinding(b) => write!(f, "unknown table binding `{b}`"),
            ExecError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            ExecError::AmbiguousColumn(c) => write!(f, "ambiguous column `{c}`"),
            ExecError::DuplicateBinding(b) => write!(f, "duplicate table binding `{b}`"),
            ExecError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            ExecError::MisplacedAggregate(n) => {
                write!(f, "aggregate `{n}` is not allowed in this context")
            }
            ExecError::NotGrouped(c) => {
                write!(f, "column `{c}` must appear in GROUP BY or an aggregate")
            }
            ExecError::UnionArityMismatch { expected, got } => {
                write!(f, "UNION ALL branches have different arities: {expected} vs {got}")
            }
            ExecError::SubqueryArity(n) => {
                write!(f, "IN sub-query must project exactly one column, got {n}")
            }
            ExecError::CorrelatedSubquery(c) => {
                write!(f, "correlated sub-queries are not supported (outer reference `{c}`)")
            }
            ExecError::UnresolvedOrderBy(e) => {
                write!(f, "cannot resolve ORDER BY expression `{e}`")
            }
            ExecError::Type(msg) => write!(f, "type error: {msg}"),
            ExecError::ResourceExhausted { resource, limit } => {
                let unit = if *resource == ResourceKind::Deadline { "ms" } else { "rows" };
                write!(f, "query exceeded its {resource} budget ({limit} {unit})")
            }
            ExecError::Cancelled => write!(f, "query cancelled"),
            ExecError::Fault(msg) => write!(f, "injected fault: {msg}"),
            ExecError::WorkerPanic { morsel, message } => {
                write!(f, "worker for morsel {morsel} panicked: {message}")
            }
            ExecError::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
            ExecError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Parse(e) => Some(e),
            ExecError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<crate::pool::WorkerPanic> for ExecError {
    fn from(p: crate::pool::WorkerPanic) -> Self {
        ExecError::WorkerPanic { morsel: p.morsel, message: p.message }
    }
}

impl From<StorageError> for ExecError {
    fn from(e: StorageError) -> Self {
        ExecError::Storage(e)
    }
}

impl From<ParseError> for ExecError {
    fn from(e: ParseError) -> Self {
        ExecError::Parse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ExecError::UnknownColumn("x".into()).to_string().contains("`x`"));
        assert!(ExecError::UnionArityMismatch { expected: 2, got: 3 }
            .to_string()
            .contains("2 vs 3"));
    }

    #[test]
    fn display_guard_variants() {
        let e = ExecError::ResourceExhausted { resource: ResourceKind::Deadline, limit: 250 };
        assert_eq!(e.to_string(), "query exceeded its deadline budget (250 ms)");
        let e = ExecError::ResourceExhausted { resource: ResourceKind::OutputRows, limit: 10 };
        assert_eq!(e.to_string(), "query exceeded its output rows budget (10 rows)");
        let e =
            ExecError::ResourceExhausted { resource: ResourceKind::IntermediateRows, limit: 99 };
        assert_eq!(e.to_string(), "query exceeded its intermediate rows budget (99 rows)");
        assert_eq!(ExecError::Cancelled.to_string(), "query cancelled");
        assert_eq!(ExecError::Fault("exec.scan".into()).to_string(), "injected fault: exec.scan");
        assert_eq!(
            ExecError::WorkerPanic { morsel: 2, message: "boom".into() }.to_string(),
            "worker for morsel 2 panicked: boom"
        );
        assert_eq!(
            ExecError::Internal("oops".into()).to_string(),
            "internal invariant violated: oops"
        );
    }

    #[test]
    fn source_chains_only_wrapped_errors() {
        use std::error::Error;
        let e = ExecError::Storage(StorageError::UnknownRelation("R".into()));
        let src = e.source().expect("storage errors chain");
        assert!(src.to_string().contains('R'));
        assert!(ExecError::Cancelled.source().is_none());
        assert!(ExecError::ResourceExhausted { resource: ResourceKind::Deadline, limit: 1 }
            .source()
            .is_none());
        assert!(ExecError::Fault("site".into()).source().is_none());
    }
}
