//! `EXPLAIN`-style plan rendering.
//!
//! [`Engine::explain`](crate::Engine::explain) compiles a query and
//! renders the physical plan as an indented tree — scans with pushed
//! predicates and row-id fetches, join strategies and their keys,
//! aggregation, ordering, and limits. Benchmarks and tests use it to
//! assert *how* a query runs, not just what it returns.

use std::fmt::Write;

use qp_storage::Database;

use crate::plan::Plan;
use crate::planner::{CompiledQuery, CompiledSelect, KeySource};

/// Renders a compiled query as an indented plan tree.
pub fn render(db: &Database, compiled: &CompiledQuery) -> String {
    let mut out = String::new();
    if compiled.branches.len() > 1 {
        let _ = writeln!(out, "UnionAll ({} branches)", compiled.branches.len());
        for b in &compiled.branches {
            render_select(db, b, 1, &mut out);
        }
    } else {
        render_select(db, &compiled.branches[0], 0, &mut out);
    }
    if !compiled.order.is_empty() {
        let keys: Vec<String> = compiled
            .order
            .iter()
            .map(|k| match &k.source {
                KeySource::Output(i) => {
                    format!("output[{i}]{}", if k.desc { " desc" } else { "" })
                }
                KeySource::Source(_) => {
                    format!("expr{}", if k.desc { " desc" } else { "" })
                }
            })
            .collect();
        let _ = writeln!(out, "OrderBy [{}]", keys.join(", "));
    }
    if let Some(n) = compiled.limit {
        let _ = writeln!(out, "Limit {n}");
    }
    out
}

fn render_select(db: &Database, select: &CompiledSelect, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    let _ = writeln!(
        out,
        "{pad}Project [{} columns]{}",
        select.project.len(),
        if select.distinct { " distinct" } else { "" }
    );
    if let Some(agg) = &select.agg {
        let _ = writeln!(
            out,
            "{pad}  Aggregate [group: {}, aggregates: {}{}]",
            agg.spec.group.len(),
            agg.spec.aggs.len(),
            if agg.having.is_some() { ", having" } else { "" }
        );
        render_plan(db, &select.plan, depth + 2, out);
    } else {
        render_plan(db, &select.plan, depth + 1, out);
    }
}

fn render_plan(db: &Database, plan: &Plan, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    match plan {
        Plan::Scan { rel, fetch_rowid, index_eq, filter, .. } => {
            let name = &db.catalog().relation(*rel).name;
            let mut extra = String::new();
            match fetch_rowid {
                Some(crate::plan::RowIdFetch::One(id)) => {
                    let _ = write!(extra, " rowid={id}");
                }
                Some(crate::plan::RowIdFetch::Set(ids)) => {
                    let _ = write!(extra, " rowid in ({} ids)", ids.len());
                }
                None => {}
            }
            if let Some((attr, key)) = index_eq {
                let _ = write!(extra, " index {}={}", db.catalog().attr_name(*attr), key);
            }
            if filter.is_some() {
                extra.push_str(" filtered");
            }
            let _ = writeln!(out, "{pad}Scan {name}{extra}");
        }
        Plan::Values => {
            let _ = writeln!(out, "{pad}Values (1 row)");
        }
        Plan::Filter { input, .. } => {
            let _ = writeln!(out, "{pad}Filter");
            render_plan(db, input, depth + 1, out);
        }
        Plan::HashJoin { left, right, .. } => {
            let _ = writeln!(out, "{pad}HashJoin");
            render_plan(db, left, depth + 1, out);
            render_plan(db, right, depth + 1, out);
        }
        Plan::IndexJoin { left, right_attr, residual, .. } => {
            let _ = writeln!(
                out,
                "{pad}IndexJoin probe {}{}",
                db.catalog().attr_name(*right_attr),
                if residual.is_some() { " (residual filter)" } else { "" }
            );
            render_plan(db, left, depth + 1, out);
        }
        Plan::NestedLoop { left, right, predicate } => {
            let _ = writeln!(
                out,
                "{pad}NestedLoop{}",
                if predicate.is_some() { " (filtered)" } else { "" }
            );
            render_plan(db, left, depth + 1, out);
            render_plan(db, right, depth + 1, out);
        }
        Plan::UnionAll { inputs } => {
            let _ = writeln!(out, "{pad}UnionAll");
            for p in inputs {
                render_plan(db, p, depth + 1, out);
            }
        }
        Plan::Derived { query } => {
            let _ = writeln!(out, "{pad}Derived");
            for b in &query.branches {
                render_select(db, b, depth + 1, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::Engine;
    use qp_sql::parse_query;
    use qp_storage::{Attribute, DataType, Database, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_relation(
            "MOVIE",
            vec![
                Attribute::new("mid", DataType::Int),
                Attribute::new("title", DataType::Text),
                Attribute::new("year", DataType::Int),
            ],
            &["mid"],
        )
        .unwrap();
        db.create_relation(
            "GENRE",
            vec![Attribute::new("mid", DataType::Int), Attribute::new("genre", DataType::Text)],
            &["mid", "genre"],
        )
        .unwrap();
        for i in 0..50i64 {
            db.insert_by_name(
                "MOVIE",
                vec![Value::Int(i), Value::str(format!("t{i}")), Value::Int(1980 + i % 20)],
            )
            .unwrap();
            db.insert_by_name("GENRE", vec![Value::Int(i), Value::str("drama")]).unwrap();
        }
        db
    }

    #[test]
    fn explain_selective_join_uses_index() {
        let db = db();
        let e = Engine::new();
        let plan = e
            .explain(
                &db,
                &parse_query(
                    "select M.title from MOVIE M, GENRE G where M.mid = G.mid and G.genre = 'drama'",
                )
                .unwrap(),
            )
            .unwrap();
        assert!(plan.contains("IndexJoin"), "{plan}");
        assert!(plan.contains("Scan"), "{plan}");
    }

    #[test]
    fn explain_rowid_fetch() {
        let db = db();
        let e = Engine::new();
        let plan = e
            .explain(&db, &parse_query("select title from MOVIE M where M.rowid = 7").unwrap())
            .unwrap();
        assert!(plan.contains("rowid=7"), "{plan}");
    }

    #[test]
    fn explain_aggregate_and_order() {
        let db = db();
        let e = Engine::new();
        let plan = e
            .explain(
                &db,
                &parse_query(
                    "select year, count(*) n from MOVIE group by year having count(*) > 1 \
                     order by n desc limit 3",
                )
                .unwrap(),
            )
            .unwrap();
        assert!(plan.contains("Aggregate"), "{plan}");
        assert!(plan.contains("having"), "{plan}");
        assert!(plan.contains("OrderBy"), "{plan}");
        assert!(plan.contains("Limit 3"), "{plan}");
    }

    #[test]
    fn explain_union_and_derived() {
        let db = db();
        let e = Engine::new();
        let plan = e
            .explain(
                &db,
                &parse_query(
                    "select t from (select title t from MOVIE where year > 1990 \
                     union all select title from MOVIE where year < 1985) u",
                )
                .unwrap(),
            )
            .unwrap();
        assert!(plan.contains("Derived"), "{plan}");
        assert!(plan.matches("Scan MOVIE").count() == 2, "{plan}");
    }
}
