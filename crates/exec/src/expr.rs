//! Compiled (physical) expressions.
//!
//! A [`PhysExpr`] is an AST expression with every name resolved to a column
//! offset in the operator's input row, every function resolved against the
//! registry, and every uncorrelated `IN` sub-query pre-executed into a hash
//! set. Evaluation follows SQL three-valued logic: `NULL` comparisons
//! produce `NULL`, filters treat `NULL` as not-satisfied.

use std::collections::HashSet;
use std::sync::Arc;

use qp_sql::{BinaryOp, UnaryOp};
use qp_storage::Value;

use crate::functions::ScalarUdf;

/// A compiled expression, evaluated against a flat row of values.
#[derive(Clone)]
pub enum PhysExpr {
    /// A constant.
    Literal(Value),
    /// Input column by offset.
    Column(usize),
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<PhysExpr>,
    },
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<PhysExpr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<PhysExpr>,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<PhysExpr>,
        /// Negated form.
        negated: bool,
        /// Inclusive lower bound.
        low: Box<PhysExpr>,
        /// Inclusive upper bound.
        high: Box<PhysExpr>,
    },
    /// `expr [NOT] IN (e1, e2, …)` with arbitrary element expressions.
    InList {
        /// Tested expression.
        expr: Box<PhysExpr>,
        /// Negated form.
        negated: bool,
        /// Candidate expressions.
        list: Vec<PhysExpr>,
    },
    /// `expr [NOT] IN (<materialized sub-query>)`.
    InSet {
        /// Tested expression.
        expr: Box<PhysExpr>,
        /// Negated form.
        negated: bool,
        /// Materialized sub-query values (NULLs excluded).
        set: Arc<HashSet<Value>>,
        /// Whether the sub-query produced any NULL (drives 3VL).
        has_null: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<PhysExpr>,
        /// `IS NOT NULL` form.
        negated: bool,
    },
    /// A scalar function call.
    Scalar {
        /// Function name (for diagnostics).
        name: String,
        /// Resolved implementation.
        f: ScalarUdf,
        /// Compiled arguments.
        args: Vec<PhysExpr>,
    },
}

impl std::fmt::Debug for PhysExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PhysExpr::Literal(v) => write!(f, "Literal({v})"),
            PhysExpr::Column(i) => write!(f, "Column({i})"),
            PhysExpr::Unary { op, expr } => write!(f, "Unary({op:?}, {expr:?})"),
            PhysExpr::Binary { left, op, right } => write!(f, "({left:?} {op} {right:?})"),
            PhysExpr::Between { expr, negated, low, high } => {
                write!(f, "Between({expr:?}, not={negated}, {low:?}, {high:?})")
            }
            PhysExpr::InList { expr, negated, list } => {
                write!(f, "InList({expr:?}, not={negated}, {list:?})")
            }
            PhysExpr::InSet { expr, negated, set, has_null } => {
                write!(f, "InSet({expr:?}, not={negated}, |set|={}, null={has_null})", set.len())
            }
            PhysExpr::IsNull { expr, negated } => write!(f, "IsNull({expr:?}, not={negated})"),
            PhysExpr::Scalar { name, args, .. } => write!(f, "{name}({args:?})"),
        }
    }
}

/// Three-valued boolean: `Some(bool)` or unknown.
type Tri = Option<bool>;

fn tri_to_value(t: Tri) -> Value {
    match t {
        Some(b) => Value::Bool(b),
        None => Value::Null,
    }
}

fn value_to_tri(v: &Value) -> Tri {
    match v {
        Value::Bool(b) => Some(*b),
        Value::Null => None,
        // Non-boolean in a boolean position: treat as unknown.
        _ => None,
    }
}

impl PhysExpr {
    /// Evaluates the expression against `row`. Type mismatches in
    /// arithmetic yield `NULL`, mirroring how the planner's lack of full
    /// static typing is resolved at runtime in permissive SQL dialects.
    pub fn eval(&self, row: &[Value]) -> Value {
        match self {
            PhysExpr::Literal(v) => v.clone(),
            PhysExpr::Column(i) => row[*i].clone(),
            PhysExpr::Unary { op, expr } => {
                let v = expr.eval(row);
                match op {
                    UnaryOp::Neg => match v {
                        Value::Int(i) => Value::Int(-i),
                        Value::Float(x) => Value::Float(-x),
                        _ => Value::Null,
                    },
                    UnaryOp::Not => tri_to_value(value_to_tri(&v).map(|b| !b)),
                }
            }
            PhysExpr::Binary { left, op, right } => {
                match op {
                    BinaryOp::And => {
                        // Short-circuit: false AND x = false even when x is
                        // unknown.
                        let l = value_to_tri(&left.eval(row));
                        if l == Some(false) {
                            return Value::Bool(false);
                        }
                        let r = value_to_tri(&right.eval(row));
                        return tri_to_value(match (l, r) {
                            (_, Some(false)) => Some(false),
                            (Some(true), Some(true)) => Some(true),
                            _ => None,
                        });
                    }
                    BinaryOp::Or => {
                        let l = value_to_tri(&left.eval(row));
                        if l == Some(true) {
                            return Value::Bool(true);
                        }
                        let r = value_to_tri(&right.eval(row));
                        return tri_to_value(match (l, r) {
                            (_, Some(true)) => Some(true),
                            (Some(false), Some(false)) => Some(false),
                            _ => None,
                        });
                    }
                    _ => {}
                }
                let l = left.eval(row);
                let r = right.eval(row);
                if op.is_comparison() {
                    return tri_to_value(compare(&l, op, &r));
                }
                arithmetic(&l, *op, &r)
            }
            PhysExpr::Between { expr, negated, low, high } => {
                let v = expr.eval(row);
                let lo = low.eval(row);
                let hi = high.eval(row);
                let ge = compare(&v, &BinaryOp::Ge, &lo);
                let le = compare(&v, &BinaryOp::Le, &hi);
                let t = match (ge, le) {
                    (Some(false), _) | (_, Some(false)) => Some(false),
                    (Some(true), Some(true)) => Some(true),
                    _ => None,
                };
                tri_to_value(apply_negation(t, *negated))
            }
            PhysExpr::InList { expr, negated, list } => {
                let v = expr.eval(row);
                if v.is_null() {
                    return Value::Null;
                }
                let mut saw_null = false;
                for e in list {
                    let c = e.eval(row);
                    match v.sql_eq(&c) {
                        Some(true) => return tri_to_value(apply_negation(Some(true), *negated)),
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                let t = if saw_null { None } else { Some(false) };
                tri_to_value(apply_negation(t, *negated))
            }
            PhysExpr::InSet { expr, negated, set, has_null } => {
                let v = expr.eval(row);
                if v.is_null() {
                    return Value::Null;
                }
                let t = if set.contains(&v) {
                    Some(true)
                } else if *has_null {
                    None
                } else {
                    Some(false)
                };
                tri_to_value(apply_negation(t, *negated))
            }
            PhysExpr::IsNull { expr, negated } => {
                let v = expr.eval(row);
                Value::Bool(v.is_null() != *negated)
            }
            PhysExpr::Scalar { f, args, .. } => {
                let vals: Vec<Value> = args.iter().map(|a| a.eval(row)).collect();
                f(&vals)
            }
        }
    }

    /// Evaluates as a filter predicate: `NULL`/unknown is *not satisfied*.
    pub fn eval_bool(&self, row: &[Value]) -> bool {
        matches!(self.eval(row), Value::Bool(true))
    }
}

fn apply_negation(t: Tri, negated: bool) -> Tri {
    if negated {
        t.map(|b| !b)
    } else {
        t
    }
}

fn compare(l: &Value, op: &BinaryOp, r: &Value) -> Tri {
    let ord = l.sql_cmp(r)?;
    Some(match op {
        BinaryOp::Eq => ord.is_eq(),
        BinaryOp::Neq => ord.is_ne(),
        BinaryOp::Lt => ord.is_lt(),
        BinaryOp::Le => ord.is_le(),
        BinaryOp::Gt => ord.is_gt(),
        BinaryOp::Ge => ord.is_ge(),
        _ => unreachable!("compare called with non-comparison"),
    })
}

fn arithmetic(l: &Value, op: BinaryOp, r: &Value) -> Value {
    // Integer arithmetic stays integral (except division); everything else
    // goes through f64. NULL or non-numeric operands yield NULL.
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => match op {
            BinaryOp::Add => Value::Int(a.wrapping_add(*b)),
            BinaryOp::Sub => Value::Int(a.wrapping_sub(*b)),
            BinaryOp::Mul => Value::Int(a.wrapping_mul(*b)),
            BinaryOp::Div => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Float(*a as f64 / *b as f64)
                }
            }
            _ => Value::Null,
        },
        _ => {
            let (a, b) = match (l.as_f64(), r.as_f64()) {
                (Some(a), Some(b)) => (a, b),
                _ => return Value::Null,
            };
            match op {
                BinaryOp::Add => Value::Float(a + b),
                BinaryOp::Sub => Value::Float(a - b),
                BinaryOp::Mul => Value::Float(a * b),
                BinaryOp::Div => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::Float(a / b)
                    }
                }
                _ => Value::Null,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: impl Into<Value>) -> PhysExpr {
        PhysExpr::Literal(v.into())
    }

    fn bin(l: PhysExpr, op: BinaryOp, r: PhysExpr) -> PhysExpr {
        PhysExpr::Binary { left: Box::new(l), op, right: Box::new(r) }
    }

    #[test]
    fn column_ref() {
        let e = PhysExpr::Column(1);
        assert_eq!(e.eval(&[Value::Int(1), Value::str("x")]), Value::str("x"));
    }

    #[test]
    fn comparison_with_null_is_unknown() {
        let e = bin(lit(Value::Null), BinaryOp::Eq, lit(1i64));
        assert_eq!(e.eval(&[]), Value::Null);
        assert!(!e.eval_bool(&[]));
    }

    #[test]
    fn and_short_circuit_with_null() {
        // false AND NULL = false; true AND NULL = NULL
        let f = bin(lit(false), BinaryOp::And, lit(Value::Null));
        assert_eq!(f.eval(&[]), Value::Bool(false));
        let t = bin(lit(true), BinaryOp::And, lit(Value::Null));
        assert_eq!(t.eval(&[]), Value::Null);
    }

    #[test]
    fn or_three_valued() {
        let t = bin(lit(true), BinaryOp::Or, lit(Value::Null));
        assert_eq!(t.eval(&[]), Value::Bool(true));
        let u = bin(lit(false), BinaryOp::Or, lit(Value::Null));
        assert_eq!(u.eval(&[]), Value::Null);
    }

    #[test]
    fn arithmetic_int_and_float() {
        assert_eq!(bin(lit(2i64), BinaryOp::Add, lit(3i64)).eval(&[]), Value::Int(5));
        assert_eq!(bin(lit(2i64), BinaryOp::Mul, lit(1.5)).eval(&[]), Value::Float(3.0));
        assert_eq!(bin(lit(7i64), BinaryOp::Div, lit(2i64)).eval(&[]), Value::Float(3.5));
    }

    #[test]
    fn division_by_zero_is_null() {
        assert_eq!(bin(lit(1i64), BinaryOp::Div, lit(0i64)).eval(&[]), Value::Null);
        assert_eq!(bin(lit(1.0), BinaryOp::Div, lit(0.0)).eval(&[]), Value::Null);
    }

    #[test]
    fn arithmetic_type_mismatch_is_null() {
        assert_eq!(bin(lit("a"), BinaryOp::Add, lit(1i64)).eval(&[]), Value::Null);
    }

    #[test]
    fn between_semantics() {
        let e = PhysExpr::Between {
            expr: Box::new(lit(5i64)),
            negated: false,
            low: Box::new(lit(1i64)),
            high: Box::new(lit(10i64)),
        };
        assert_eq!(e.eval(&[]), Value::Bool(true));
        let e = PhysExpr::Between {
            expr: Box::new(lit(11i64)),
            negated: true,
            low: Box::new(lit(1i64)),
            high: Box::new(lit(10i64)),
        };
        assert_eq!(e.eval(&[]), Value::Bool(true));
        // NULL bound with a definite miss is still false:
        let e = PhysExpr::Between {
            expr: Box::new(lit(0i64)),
            negated: false,
            low: Box::new(lit(1i64)),
            high: Box::new(lit(Value::Null)),
        };
        assert_eq!(e.eval(&[]), Value::Bool(false));
    }

    #[test]
    fn in_list_three_valued() {
        let e = PhysExpr::InList {
            expr: Box::new(lit(3i64)),
            negated: false,
            list: vec![lit(1i64), lit(Value::Null)],
        };
        // not found, but NULL present -> unknown
        assert_eq!(e.eval(&[]), Value::Null);
        let e = PhysExpr::InList {
            expr: Box::new(lit(1i64)),
            negated: false,
            list: vec![lit(1i64), lit(Value::Null)],
        };
        assert_eq!(e.eval(&[]), Value::Bool(true));
    }

    #[test]
    fn not_in_set_with_null() {
        let mut set = HashSet::new();
        set.insert(Value::Int(1));
        let e = PhysExpr::InSet {
            expr: Box::new(lit(2i64)),
            negated: true,
            set: Arc::new(set.clone()),
            has_null: true,
        };
        // 2 NOT IN {1, NULL} -> unknown -> filter false
        assert_eq!(e.eval(&[]), Value::Null);
        let e = PhysExpr::InSet {
            expr: Box::new(lit(2i64)),
            negated: true,
            set: Arc::new(set),
            has_null: false,
        };
        assert_eq!(e.eval(&[]), Value::Bool(true));
    }

    #[test]
    fn is_null_never_unknown() {
        let e = PhysExpr::IsNull { expr: Box::new(lit(Value::Null)), negated: false };
        assert_eq!(e.eval(&[]), Value::Bool(true));
        let e = PhysExpr::IsNull { expr: Box::new(lit(1i64)), negated: true };
        assert_eq!(e.eval(&[]), Value::Bool(true));
    }

    #[test]
    fn scalar_call() {
        let f: ScalarUdf = Arc::new(|args: &[Value]| {
            args.first().and_then(Value::as_f64).map(|x| Value::Float(x * 2.0)).unwrap_or(Value::Null)
        });
        let e = PhysExpr::Scalar { name: "dbl".into(), f, args: vec![lit(2.5)] };
        assert_eq!(e.eval(&[]), Value::Float(5.0));
    }

    #[test]
    fn neg_and_not() {
        let e = PhysExpr::Unary { op: UnaryOp::Neg, expr: Box::new(lit(3i64)) };
        assert_eq!(e.eval(&[]), Value::Int(-3));
        let e = PhysExpr::Unary { op: UnaryOp::Not, expr: Box::new(lit(Value::Null)) };
        assert_eq!(e.eval(&[]), Value::Null);
    }
}
