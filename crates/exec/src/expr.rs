//! Compiled (physical) expressions.
//!
//! A [`PhysExpr`] is an AST expression with every name resolved to a column
//! offset in the operator's input row, every function resolved against the
//! registry, and every uncorrelated `IN` sub-query pre-executed into a hash
//! set. Evaluation follows SQL three-valued logic: `NULL` comparisons
//! produce `NULL`, filters treat `NULL` as not-satisfied.

use std::collections::HashSet;
use std::sync::Arc;

use qp_sql::{BinaryOp, UnaryOp};
use qp_storage::Value;

use crate::functions::ScalarUdf;

/// A compiled expression, evaluated against a flat row of values.
#[derive(Clone)]
pub enum PhysExpr {
    /// A constant.
    Literal(Value),
    /// Input column by offset.
    Column(usize),
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<PhysExpr>,
    },
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<PhysExpr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<PhysExpr>,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<PhysExpr>,
        /// Negated form.
        negated: bool,
        /// Inclusive lower bound.
        low: Box<PhysExpr>,
        /// Inclusive upper bound.
        high: Box<PhysExpr>,
    },
    /// `expr [NOT] IN (e1, e2, …)` with arbitrary element expressions.
    InList {
        /// Tested expression.
        expr: Box<PhysExpr>,
        /// Negated form.
        negated: bool,
        /// Candidate expressions.
        list: Vec<PhysExpr>,
    },
    /// `expr [NOT] IN (<materialized sub-query>)`.
    InSet {
        /// Tested expression.
        expr: Box<PhysExpr>,
        /// Negated form.
        negated: bool,
        /// Materialized sub-query values (NULLs excluded).
        set: Arc<HashSet<Value>>,
        /// Whether the sub-query produced any NULL (drives 3VL).
        has_null: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<PhysExpr>,
        /// `IS NOT NULL` form.
        negated: bool,
    },
    /// A scalar function call.
    Scalar {
        /// Function name (for diagnostics).
        name: String,
        /// Resolved implementation.
        f: ScalarUdf,
        /// Compiled arguments.
        args: Vec<PhysExpr>,
    },
}

impl std::fmt::Debug for PhysExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PhysExpr::Literal(v) => write!(f, "Literal({v})"),
            PhysExpr::Column(i) => write!(f, "Column({i})"),
            PhysExpr::Unary { op, expr } => write!(f, "Unary({op:?}, {expr:?})"),
            PhysExpr::Binary { left, op, right } => write!(f, "({left:?} {op} {right:?})"),
            PhysExpr::Between { expr, negated, low, high } => {
                write!(f, "Between({expr:?}, not={negated}, {low:?}, {high:?})")
            }
            PhysExpr::InList { expr, negated, list } => {
                write!(f, "InList({expr:?}, not={negated}, {list:?})")
            }
            PhysExpr::InSet { expr, negated, set, has_null } => {
                write!(f, "InSet({expr:?}, not={negated}, |set|={}, null={has_null})", set.len())
            }
            PhysExpr::IsNull { expr, negated } => write!(f, "IsNull({expr:?}, not={negated})"),
            PhysExpr::Scalar { name, args, .. } => write!(f, "{name}({args:?})"),
        }
    }
}

/// Columnar row access for batch evaluation: a *view* exposes `len()`
/// rows whose column values can be borrowed without cloning. The batch
/// engine implements this for its [`crate::batch::Batch`] and for the
/// scan's pre-materialization row view; the row path adapts a single
/// `&[Value]` row through [`RowView`]. One generic evaluator serves all
/// three, so the row and batch engines cannot drift semantically.
pub(crate) trait ColView {
    /// Number of physical rows in the view.
    fn len(&self) -> usize;
    /// Borrow of the value at (`col`, `row`).
    fn value(&self, col: usize, row: usize) -> &Value;
}

/// A single flat row viewed as a one-row [`ColView`].
struct RowView<'a>(&'a [Value]);

impl ColView for RowView<'_> {
    #[inline]
    fn len(&self) -> usize {
        1
    }
    #[inline]
    fn value(&self, col: usize, _row: usize) -> &Value {
        &self.0[col]
    }
}

/// A leaf operand the comparison fast paths can read by reference —
/// a column offset or a literal. Anything else falls back to the
/// generic recursive evaluator.
enum Operand<'e> {
    Col(usize),
    Lit(&'e Value),
}

impl Operand<'_> {
    #[inline]
    fn get<'v, V: ColView>(&'v self, view: &'v V, row: usize) -> &'v Value {
        match self {
            Operand::Col(c) => view.value(*c, row),
            Operand::Lit(v) => v,
        }
    }
}

fn operand(e: &PhysExpr) -> Option<Operand<'_>> {
    match e {
        PhysExpr::Column(i) => Some(Operand::Col(*i)),
        PhysExpr::Literal(v) => Some(Operand::Lit(v)),
        _ => None,
    }
}

/// Applies `keep` to every selected row (`None` = all rows) and collects
/// the surviving positions — the shape of every selection-vector pass.
fn retain_sel<V: ColView>(
    view: &V,
    sel: Option<&[u32]>,
    mut keep: impl FnMut(usize) -> bool,
) -> Vec<u32> {
    match sel {
        Some(s) => {
            let mut out = Vec::with_capacity(s.len());
            for &r in s {
                if keep(r as usize) {
                    out.push(r);
                }
            }
            out
        }
        None => {
            let mut out = Vec::with_capacity(view.len());
            for r in 0..view.len() {
                if keep(r) {
                    out.push(r as u32);
                }
            }
            out
        }
    }
}

/// Union of two ascending selection vectors (for `OR`).
fn merge_sel(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Three-valued boolean: `Some(bool)` or unknown.
type Tri = Option<bool>;

fn tri_to_value(t: Tri) -> Value {
    match t {
        Some(b) => Value::Bool(b),
        None => Value::Null,
    }
}

fn value_to_tri(v: &Value) -> Tri {
    match v {
        Value::Bool(b) => Some(*b),
        Value::Null => None,
        // Non-boolean in a boolean position: treat as unknown.
        _ => None,
    }
}

impl PhysExpr {
    /// Evaluates the expression against `row`. Type mismatches in
    /// arithmetic yield `NULL`, mirroring how the planner's lack of full
    /// static typing is resolved at runtime in permissive SQL dialects.
    pub fn eval(&self, row: &[Value]) -> Value {
        self.eval_at(&RowView(row), 0)
    }

    /// Evaluates the expression against row `row` of a column view. The
    /// single generic evaluator behind both [`PhysExpr::eval`] (via
    /// [`RowView`]) and the batch engine.
    pub(crate) fn eval_at<V: ColView>(&self, view: &V, row: usize) -> Value {
        match self {
            PhysExpr::Literal(v) => v.clone(),
            PhysExpr::Column(i) => view.value(*i, row).clone(),
            PhysExpr::Unary { op, expr } => {
                let v = expr.eval_at(view, row);
                match op {
                    UnaryOp::Neg => match v {
                        Value::Int(i) => Value::Int(-i),
                        Value::Float(x) => Value::Float(-x),
                        _ => Value::Null,
                    },
                    UnaryOp::Not => tri_to_value(value_to_tri(&v).map(|b| !b)),
                }
            }
            PhysExpr::Binary { left, op, right } => {
                match op {
                    BinaryOp::And => {
                        // Short-circuit: false AND x = false even when x is
                        // unknown.
                        let l = value_to_tri(&left.eval_at(view, row));
                        if l == Some(false) {
                            return Value::Bool(false);
                        }
                        let r = value_to_tri(&right.eval_at(view, row));
                        return tri_to_value(match (l, r) {
                            (_, Some(false)) => Some(false),
                            (Some(true), Some(true)) => Some(true),
                            _ => None,
                        });
                    }
                    BinaryOp::Or => {
                        let l = value_to_tri(&left.eval_at(view, row));
                        if l == Some(true) {
                            return Value::Bool(true);
                        }
                        let r = value_to_tri(&right.eval_at(view, row));
                        return tri_to_value(match (l, r) {
                            (_, Some(true)) => Some(true),
                            (Some(false), Some(false)) => Some(false),
                            _ => None,
                        });
                    }
                    _ => {}
                }
                let l = left.eval_at(view, row);
                let r = right.eval_at(view, row);
                if op.is_comparison() {
                    return tri_to_value(compare(&l, op, &r));
                }
                arithmetic(&l, *op, &r)
            }
            PhysExpr::Between { expr, negated, low, high } => {
                let v = expr.eval_at(view, row);
                let lo = low.eval_at(view, row);
                let hi = high.eval_at(view, row);
                let ge = compare(&v, &BinaryOp::Ge, &lo);
                let le = compare(&v, &BinaryOp::Le, &hi);
                let t = match (ge, le) {
                    (Some(false), _) | (_, Some(false)) => Some(false),
                    (Some(true), Some(true)) => Some(true),
                    _ => None,
                };
                tri_to_value(apply_negation(t, *negated))
            }
            PhysExpr::InList { expr, negated, list } => {
                let v = expr.eval_at(view, row);
                if v.is_null() {
                    return Value::Null;
                }
                let mut saw_null = false;
                for e in list {
                    let c = e.eval_at(view, row);
                    match v.sql_eq(&c) {
                        Some(true) => return tri_to_value(apply_negation(Some(true), *negated)),
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                let t = if saw_null { None } else { Some(false) };
                tri_to_value(apply_negation(t, *negated))
            }
            PhysExpr::InSet { expr, negated, set, has_null } => {
                let v = expr.eval_at(view, row);
                if v.is_null() {
                    return Value::Null;
                }
                let t = if set.contains(&v) {
                    Some(true)
                } else if *has_null {
                    None
                } else {
                    Some(false)
                };
                tri_to_value(apply_negation(t, *negated))
            }
            PhysExpr::IsNull { expr, negated } => {
                let v = expr.eval_at(view, row);
                Value::Bool(v.is_null() != *negated)
            }
            PhysExpr::Scalar { f, args, .. } => {
                let vals: Vec<Value> = args.iter().map(|a| a.eval_at(view, row)).collect();
                f(&vals)
            }
        }
    }

    /// Evaluates as a filter predicate: `NULL`/unknown is *not satisfied*.
    pub fn eval_bool(&self, row: &[Value]) -> bool {
        matches!(self.eval(row), Value::Bool(true))
    }

    /// Batch filter: evaluates the predicate over the rows of `view`
    /// selected by `sel` (`None` = all rows) and returns the surviving
    /// positions as an ascending selection vector.
    ///
    /// Filter semantics are "row passes iff the predicate is `true`"
    /// (NULL never passes), so the 3VL connectives decompose exactly:
    /// `AND` is sequential refinement of the selection vector, `OR` is
    /// the union of both sides' vectors. Comparisons over column/literal
    /// operands run by reference without cloning a single `Value`; every
    /// other shape falls back to the generic per-row evaluator.
    pub(crate) fn filter_view<V: ColView>(&self, view: &V, sel: Option<&[u32]>) -> Vec<u32> {
        match self {
            PhysExpr::Binary { left, op: BinaryOp::And, right } => {
                let l = left.filter_view(view, sel);
                right.filter_view(view, Some(&l))
            }
            PhysExpr::Binary { left, op: BinaryOp::Or, right } => {
                let l = left.filter_view(view, sel);
                let r = right.filter_view(view, sel);
                merge_sel(&l, &r)
            }
            PhysExpr::Binary { left, op, right } if op.is_comparison() => {
                match (operand(left), operand(right)) {
                    (Some(a), Some(b)) => retain_sel(view, sel, |r| {
                        compare(a.get(view, r), op, b.get(view, r)) == Some(true)
                    }),
                    _ => self.filter_fallback(view, sel),
                }
            }
            PhysExpr::Between { expr, negated, low, high } => {
                match (operand(expr), operand(low), operand(high)) {
                    (Some(v), Some(lo), Some(hi)) => retain_sel(view, sel, |r| {
                        let val = v.get(view, r);
                        let ge = compare(val, &BinaryOp::Ge, lo.get(view, r));
                        let le = compare(val, &BinaryOp::Le, hi.get(view, r));
                        let t = match (ge, le) {
                            (Some(false), _) | (_, Some(false)) => Some(false),
                            (Some(true), Some(true)) => Some(true),
                            _ => None,
                        };
                        apply_negation(t, *negated) == Some(true)
                    }),
                    _ => self.filter_fallback(view, sel),
                }
            }
            PhysExpr::InSet { expr, negated, set, has_null } => match operand(expr) {
                Some(v) => retain_sel(view, sel, |r| {
                    let val = v.get(view, r);
                    if val.is_null() {
                        return false;
                    }
                    let t = if set.contains(val) {
                        Some(true)
                    } else if *has_null {
                        None
                    } else {
                        Some(false)
                    };
                    apply_negation(t, *negated) == Some(true)
                }),
                None => self.filter_fallback(view, sel),
            },
            PhysExpr::IsNull { expr, negated } => match operand(expr) {
                Some(v) => retain_sel(view, sel, |r| v.get(view, r).is_null() != *negated),
                None => self.filter_fallback(view, sel),
            },
            _ => self.filter_fallback(view, sel),
        }
    }

    fn filter_fallback<V: ColView>(&self, view: &V, sel: Option<&[u32]>) -> Vec<u32> {
        retain_sel(view, sel, |r| matches!(self.eval_at(view, r), Value::Bool(true)))
    }

    /// Batch projection of one expression: appends the value for every
    /// selected row of `view` to `out` (used for join keys and output
    /// columns). `Column` references clone straight out of the view.
    pub(crate) fn eval_view<V: ColView>(&self, view: &V, sel: Option<&[u32]>, out: &mut Vec<Value>) {
        match self {
            PhysExpr::Column(i) => match sel {
                Some(s) => out.extend(s.iter().map(|&r| view.value(*i, r as usize).clone())),
                None => out.extend((0..view.len()).map(|r| view.value(*i, r).clone())),
            },
            _ => match sel {
                Some(s) => out.extend(s.iter().map(|&r| self.eval_at(view, r as usize))),
                None => out.extend((0..view.len()).map(|r| self.eval_at(view, r))),
            },
        }
    }
}

fn apply_negation(t: Tri, negated: bool) -> Tri {
    if negated {
        t.map(|b| !b)
    } else {
        t
    }
}

fn compare(l: &Value, op: &BinaryOp, r: &Value) -> Tri {
    let ord = l.sql_cmp(r)?;
    Some(match op {
        BinaryOp::Eq => ord.is_eq(),
        BinaryOp::Neq => ord.is_ne(),
        BinaryOp::Lt => ord.is_lt(),
        BinaryOp::Le => ord.is_le(),
        BinaryOp::Gt => ord.is_gt(),
        BinaryOp::Ge => ord.is_ge(),
        _ => unreachable!("compare called with non-comparison"),
    })
}

fn arithmetic(l: &Value, op: BinaryOp, r: &Value) -> Value {
    // Integer arithmetic stays integral (except division); everything else
    // goes through f64. NULL or non-numeric operands yield NULL.
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => match op {
            BinaryOp::Add => Value::Int(a.wrapping_add(*b)),
            BinaryOp::Sub => Value::Int(a.wrapping_sub(*b)),
            BinaryOp::Mul => Value::Int(a.wrapping_mul(*b)),
            BinaryOp::Div => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Float(*a as f64 / *b as f64)
                }
            }
            _ => Value::Null,
        },
        _ => {
            let (a, b) = match (l.as_f64(), r.as_f64()) {
                (Some(a), Some(b)) => (a, b),
                _ => return Value::Null,
            };
            match op {
                BinaryOp::Add => Value::Float(a + b),
                BinaryOp::Sub => Value::Float(a - b),
                BinaryOp::Mul => Value::Float(a * b),
                BinaryOp::Div => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::Float(a / b)
                    }
                }
                _ => Value::Null,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: impl Into<Value>) -> PhysExpr {
        PhysExpr::Literal(v.into())
    }

    fn bin(l: PhysExpr, op: BinaryOp, r: PhysExpr) -> PhysExpr {
        PhysExpr::Binary { left: Box::new(l), op, right: Box::new(r) }
    }

    #[test]
    fn column_ref() {
        let e = PhysExpr::Column(1);
        assert_eq!(e.eval(&[Value::Int(1), Value::str("x")]), Value::str("x"));
    }

    #[test]
    fn comparison_with_null_is_unknown() {
        let e = bin(lit(Value::Null), BinaryOp::Eq, lit(1i64));
        assert_eq!(e.eval(&[]), Value::Null);
        assert!(!e.eval_bool(&[]));
    }

    #[test]
    fn and_short_circuit_with_null() {
        // false AND NULL = false; true AND NULL = NULL
        let f = bin(lit(false), BinaryOp::And, lit(Value::Null));
        assert_eq!(f.eval(&[]), Value::Bool(false));
        let t = bin(lit(true), BinaryOp::And, lit(Value::Null));
        assert_eq!(t.eval(&[]), Value::Null);
    }

    #[test]
    fn or_three_valued() {
        let t = bin(lit(true), BinaryOp::Or, lit(Value::Null));
        assert_eq!(t.eval(&[]), Value::Bool(true));
        let u = bin(lit(false), BinaryOp::Or, lit(Value::Null));
        assert_eq!(u.eval(&[]), Value::Null);
    }

    #[test]
    fn arithmetic_int_and_float() {
        assert_eq!(bin(lit(2i64), BinaryOp::Add, lit(3i64)).eval(&[]), Value::Int(5));
        assert_eq!(bin(lit(2i64), BinaryOp::Mul, lit(1.5)).eval(&[]), Value::Float(3.0));
        assert_eq!(bin(lit(7i64), BinaryOp::Div, lit(2i64)).eval(&[]), Value::Float(3.5));
    }

    #[test]
    fn division_by_zero_is_null() {
        assert_eq!(bin(lit(1i64), BinaryOp::Div, lit(0i64)).eval(&[]), Value::Null);
        assert_eq!(bin(lit(1.0), BinaryOp::Div, lit(0.0)).eval(&[]), Value::Null);
    }

    #[test]
    fn arithmetic_type_mismatch_is_null() {
        assert_eq!(bin(lit("a"), BinaryOp::Add, lit(1i64)).eval(&[]), Value::Null);
    }

    #[test]
    fn between_semantics() {
        let e = PhysExpr::Between {
            expr: Box::new(lit(5i64)),
            negated: false,
            low: Box::new(lit(1i64)),
            high: Box::new(lit(10i64)),
        };
        assert_eq!(e.eval(&[]), Value::Bool(true));
        let e = PhysExpr::Between {
            expr: Box::new(lit(11i64)),
            negated: true,
            low: Box::new(lit(1i64)),
            high: Box::new(lit(10i64)),
        };
        assert_eq!(e.eval(&[]), Value::Bool(true));
        // NULL bound with a definite miss is still false:
        let e = PhysExpr::Between {
            expr: Box::new(lit(0i64)),
            negated: false,
            low: Box::new(lit(1i64)),
            high: Box::new(lit(Value::Null)),
        };
        assert_eq!(e.eval(&[]), Value::Bool(false));
    }

    #[test]
    fn in_list_three_valued() {
        let e = PhysExpr::InList {
            expr: Box::new(lit(3i64)),
            negated: false,
            list: vec![lit(1i64), lit(Value::Null)],
        };
        // not found, but NULL present -> unknown
        assert_eq!(e.eval(&[]), Value::Null);
        let e = PhysExpr::InList {
            expr: Box::new(lit(1i64)),
            negated: false,
            list: vec![lit(1i64), lit(Value::Null)],
        };
        assert_eq!(e.eval(&[]), Value::Bool(true));
    }

    #[test]
    fn not_in_set_with_null() {
        let mut set = HashSet::new();
        set.insert(Value::Int(1));
        let e = PhysExpr::InSet {
            expr: Box::new(lit(2i64)),
            negated: true,
            set: Arc::new(set.clone()),
            has_null: true,
        };
        // 2 NOT IN {1, NULL} -> unknown -> filter false
        assert_eq!(e.eval(&[]), Value::Null);
        let e = PhysExpr::InSet {
            expr: Box::new(lit(2i64)),
            negated: true,
            set: Arc::new(set),
            has_null: false,
        };
        assert_eq!(e.eval(&[]), Value::Bool(true));
    }

    #[test]
    fn is_null_never_unknown() {
        let e = PhysExpr::IsNull { expr: Box::new(lit(Value::Null)), negated: false };
        assert_eq!(e.eval(&[]), Value::Bool(true));
        let e = PhysExpr::IsNull { expr: Box::new(lit(1i64)), negated: true };
        assert_eq!(e.eval(&[]), Value::Bool(true));
    }

    #[test]
    fn scalar_call() {
        let f: ScalarUdf = Arc::new(|args: &[Value]| {
            args.first().and_then(Value::as_f64).map(|x| Value::Float(x * 2.0)).unwrap_or(Value::Null)
        });
        let e = PhysExpr::Scalar { name: "dbl".into(), f, args: vec![lit(2.5)] };
        assert_eq!(e.eval(&[]), Value::Float(5.0));
    }

    #[test]
    fn neg_and_not() {
        let e = PhysExpr::Unary { op: UnaryOp::Neg, expr: Box::new(lit(3i64)) };
        assert_eq!(e.eval(&[]), Value::Int(-3));
        let e = PhysExpr::Unary { op: UnaryOp::Not, expr: Box::new(lit(Value::Null)) };
        assert_eq!(e.eval(&[]), Value::Null);
    }
}
