//! Scalar and aggregate function registries.
//!
//! The paper's SPA algorithm relies on the DBMS supporting a *user-defined
//! aggregate* ranking function (`order by r(degree)`, Example 6) and the
//! elastic-preference rewriting embeds per-tuple doi computations, which we
//! expose as *scalar UDFs*. Both registries are ordinary string-keyed maps
//! the planner consults at compile time.

use std::collections::HashMap;
use std::sync::Arc;

use qp_storage::Value;

/// A scalar user-defined function: pure, infallible (return
/// [`Value::Null`] on inapplicable input, mirroring SQL's NULL
/// propagation).
pub type ScalarUdf = Arc<dyn Fn(&[Value]) -> Value + Send + Sync>;

/// Factory for aggregate state. One [`AggregateFunction`] is registered per
/// name; one [`AggState`] is created per group.
pub trait AggregateFunction: Send + Sync {
    /// Creates fresh accumulator state for a new group.
    fn new_state(&self) -> Box<dyn AggState>;
}

/// Per-group accumulator.
pub trait AggState {
    /// Folds one row's argument values into the state.
    fn update(&mut self, args: &[Value]);
    /// Produces the aggregate value for the group.
    fn finish(&mut self) -> Value;
}

impl<F> AggregateFunction for F
where
    F: Fn() -> Box<dyn AggState> + Send + Sync,
{
    fn new_state(&self) -> Box<dyn AggState> {
        self()
    }
}

/// Both registries plus the built-ins.
pub struct FunctionRegistry {
    scalars: HashMap<String, ScalarUdf>,
    aggregates: HashMap<String, Arc<dyn AggregateFunction>>,
}

impl std::fmt::Debug for FunctionRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FunctionRegistry")
            .field("scalars", &self.scalars.keys().collect::<Vec<_>>())
            .field("aggregates", &self.aggregates.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl Default for FunctionRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl FunctionRegistry {
    /// A registry pre-populated with the SQL built-ins: aggregates `count`,
    /// `sum`, `avg`, `min`, `max` and scalars `abs`, `lower`, `upper`.
    pub fn new() -> Self {
        let mut r = FunctionRegistry { scalars: HashMap::new(), aggregates: HashMap::new() };
        r.register_aggregate("count", || Box::new(CountState(0)) as Box<dyn AggState>);
        r.register_aggregate("sum", || Box::new(SumState { sum: 0.0, any: false, int: true }) as _);
        r.register_aggregate("avg", || Box::new(AvgState { sum: 0.0, n: 0 }) as _);
        r.register_aggregate("min", || Box::new(MinMaxState { best: None, is_min: true }) as _);
        r.register_aggregate("max", || Box::new(MinMaxState { best: None, is_min: false }) as _);
        r.register_scalar("abs", |args: &[Value]| match args.first() {
            Some(Value::Int(i)) => Value::Int(i.abs()),
            Some(Value::Float(x)) => Value::Float(x.abs()),
            _ => Value::Null,
        });
        r.register_scalar("lower", |args: &[Value]| match args.first().and_then(Value::as_str) {
            Some(s) => Value::str(s.to_lowercase()),
            None => Value::Null,
        });
        r.register_scalar("upper", |args: &[Value]| match args.first().and_then(Value::as_str) {
            Some(s) => Value::str(s.to_uppercase()),
            None => Value::Null,
        });
        r
    }

    /// Registers (or replaces) a scalar function; names are
    /// case-insensitive.
    pub fn register_scalar(
        &mut self,
        name: &str,
        f: impl Fn(&[Value]) -> Value + Send + Sync + 'static,
    ) {
        self.scalars.insert(name.to_lowercase(), Arc::new(f));
    }

    /// Registers (or replaces) an aggregate function.
    pub fn register_aggregate(
        &mut self,
        name: &str,
        f: impl Fn() -> Box<dyn AggState> + Send + Sync + 'static,
    ) {
        self.aggregates.insert(name.to_lowercase(), Arc::new(f));
    }

    /// Looks up a scalar function.
    pub fn scalar(&self, name: &str) -> Option<ScalarUdf> {
        self.scalars.get(&name.to_lowercase()).cloned()
    }

    /// Looks up an aggregate function.
    pub fn aggregate(&self, name: &str) -> Option<Arc<dyn AggregateFunction>> {
        self.aggregates.get(&name.to_lowercase()).cloned()
    }

    /// Whether `name` names an aggregate (used by the planner to split
    /// aggregate calls from scalar calls).
    pub fn is_aggregate(&self, name: &str) -> bool {
        self.aggregates.contains_key(&name.to_lowercase())
    }
}

struct CountState(i64);

impl AggState for CountState {
    fn update(&mut self, args: &[Value]) {
        // count(*) passes no args; count(x) skips NULLs.
        if args.is_empty() || !args[0].is_null() {
            self.0 += 1;
        }
    }
    fn finish(&mut self) -> Value {
        Value::Int(self.0)
    }
}

struct SumState {
    sum: f64,
    any: bool,
    int: bool,
}

impl AggState for SumState {
    fn update(&mut self, args: &[Value]) {
        match args.first() {
            Some(Value::Int(i)) => {
                self.sum += *i as f64;
                self.any = true;
            }
            Some(Value::Float(x)) => {
                self.sum += x;
                self.any = true;
                self.int = false;
            }
            _ => {}
        }
    }
    fn finish(&mut self) -> Value {
        if !self.any {
            Value::Null
        } else if self.int {
            Value::Int(self.sum as i64)
        } else {
            Value::Float(self.sum)
        }
    }
}

struct AvgState {
    sum: f64,
    n: u64,
}

impl AggState for AvgState {
    fn update(&mut self, args: &[Value]) {
        if let Some(x) = args.first().and_then(Value::as_f64) {
            self.sum += x;
            self.n += 1;
        }
    }
    fn finish(&mut self) -> Value {
        if self.n == 0 {
            Value::Null
        } else {
            Value::Float(self.sum / self.n as f64)
        }
    }
}

struct MinMaxState {
    best: Option<Value>,
    is_min: bool,
}

impl AggState for MinMaxState {
    fn update(&mut self, args: &[Value]) {
        let v = match args.first() {
            Some(v) if !v.is_null() => v.clone(),
            _ => return,
        };
        match &self.best {
            None => self.best = Some(v),
            Some(b) => {
                let take = if self.is_min { v.total_cmp(b).is_lt() } else { v.total_cmp(b).is_gt() };
                if take {
                    self.best = Some(v);
                }
            }
        }
    }
    fn finish(&mut self) -> Value {
        self.best.take().unwrap_or(Value::Null)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_agg(reg: &FunctionRegistry, name: &str, rows: &[Vec<Value>]) -> Value {
        let f = reg.aggregate(name).unwrap();
        let mut st = f.new_state();
        for r in rows {
            st.update(r);
        }
        st.finish()
    }

    #[test]
    fn count_star_and_count_col() {
        let reg = FunctionRegistry::new();
        let star_rows: Vec<Vec<Value>> = vec![vec![], vec![], vec![]];
        assert_eq!(run_agg(&reg, "count", &star_rows), Value::Int(3));
        let col_rows = vec![vec![Value::Int(1)], vec![Value::Null], vec![Value::Int(2)]];
        assert_eq!(run_agg(&reg, "COUNT", &col_rows), Value::Int(2));
    }

    #[test]
    fn sum_int_and_float() {
        let reg = FunctionRegistry::new();
        let rows = vec![vec![Value::Int(1)], vec![Value::Int(2)]];
        assert_eq!(run_agg(&reg, "sum", &rows), Value::Int(3));
        let rows = vec![vec![Value::Int(1)], vec![Value::Float(0.5)]];
        assert_eq!(run_agg(&reg, "sum", &rows), Value::Float(1.5));
        assert_eq!(run_agg(&reg, "sum", &[]), Value::Null);
    }

    #[test]
    fn avg_skips_nulls() {
        let reg = FunctionRegistry::new();
        let rows = vec![vec![Value::Int(2)], vec![Value::Null], vec![Value::Int(4)]];
        assert_eq!(run_agg(&reg, "avg", &rows), Value::Float(3.0));
    }

    #[test]
    fn min_max() {
        let reg = FunctionRegistry::new();
        let rows = vec![vec![Value::Int(5)], vec![Value::Int(2)], vec![Value::Int(9)]];
        assert_eq!(run_agg(&reg, "min", &rows), Value::Int(2));
        assert_eq!(run_agg(&reg, "max", &rows), Value::Int(9));
        assert_eq!(run_agg(&reg, "min", &[]), Value::Null);
    }

    #[test]
    fn scalar_builtins() {
        let reg = FunctionRegistry::new();
        let abs = reg.scalar("ABS").unwrap();
        assert_eq!(abs(&[Value::Int(-3)]), Value::Int(3));
        assert_eq!(abs(&[Value::Null]), Value::Null);
        let lower = reg.scalar("lower").unwrap();
        assert_eq!(lower(&[Value::str("ABC")]), Value::str("abc"));
    }

    #[test]
    fn custom_aggregate_registration() {
        struct First(Option<Value>);
        impl AggState for First {
            fn update(&mut self, args: &[Value]) {
                if self.0.is_none() {
                    self.0 = args.first().cloned();
                }
            }
            fn finish(&mut self) -> Value {
                self.0.take().unwrap_or(Value::Null)
            }
        }
        let mut reg = FunctionRegistry::new();
        reg.register_aggregate("first", || Box::new(First(None)));
        assert!(reg.is_aggregate("FIRST"));
        let rows = vec![vec![Value::Int(9)], vec![Value::Int(1)]];
        assert_eq!(run_agg(&reg, "first", &rows), Value::Int(9));
    }

    #[test]
    fn unknown_lookup() {
        let reg = FunctionRegistry::new();
        assert!(reg.scalar("nope").is_none());
        assert!(!reg.is_aggregate("nope"));
    }
}
