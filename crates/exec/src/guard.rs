//! Query guardrails: deadlines, row budgets, and cooperative cancellation.
//!
//! A [`QueryGuard`] is a cheap, clonable handle threaded through every
//! operator in [`crate::plan`] and [`crate::engine`]. It carries up to
//! four limits:
//!
//! * a **wall-clock deadline** — checked at a sampled stride so the hot
//!   row loops pay (almost) no `Instant::now` cost,
//! * an **output-row budget** — charged against the final result rows of
//!   each statement the guard supervises,
//! * an **intermediate-row budget** — charged for every row an operator
//!   materializes (scans, join outputs, aggregation groups), the knob
//!   that bounds runaway cross products even when the final result is
//!   tiny,
//! * a **cancellation token** — an `Arc<AtomicBool>` another thread (or a
//!   test) can flip; operators poll it every row, so even a nested-loop
//!   join stops within one batch.
//!
//! Counters are shared through an [`Arc`], so clones of a guard draw down
//! the *same* budgets: a personalization run that executes dozens of
//! statements is bounded as a whole, not per statement.
//! [`QueryGuard::fresh_attempt`] derives a guard with the same limits,
//! deadline and token but zeroed counters — the degradation paths use it
//! when falling back to a cheaper query, where the deadline must still
//! bind but the failed attempt's row consumption should not.
//!
//! [`QueryGuard::unlimited`] (also `Default`) never trips and adds one
//! branch per check; every pre-existing engine entry point uses it, so
//! unguarded callers are unaffected.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::{ExecError, ResourceKind};

/// How many rows are processed between wall-clock deadline samples.
/// Cancellation is an atomic load and is polled on every check.
const DEADLINE_STRIDE: u64 = 64;

/// A shareable cancellation flag. Cloning shares the flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation; every guard holding this token trips on its
    /// next check.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[derive(Debug)]
struct GuardState {
    deadline: Option<Instant>,
    deadline_budget: Option<Duration>,
    output_budget: Option<u64>,
    intermediate_budget: Option<u64>,
    cancel: CancelToken,
    output_rows: AtomicU64,
    intermediate_rows: AtomicU64,
    ticks: AtomicU64,
}

/// Execution limits threaded through the engine; see the module docs.
#[derive(Debug, Clone, Default)]
pub struct QueryGuard {
    // `None` means "unlimited": checks reduce to one branch and charges
    // to nothing, so the unguarded engine paths stay at full speed.
    state: Option<Arc<GuardState>>,
}

impl QueryGuard {
    /// A guard that never trips (the default).
    pub fn unlimited() -> Self {
        QueryGuard { state: None }
    }

    /// Starts building a limited guard.
    pub fn builder() -> QueryGuardBuilder {
        QueryGuardBuilder::default()
    }

    /// Whether this guard carries any limit at all.
    pub fn is_limited(&self) -> bool {
        self.state.is_some()
    }

    /// The guard's cancellation token (a fresh inert token when
    /// unlimited, so callers need not special-case it).
    pub fn cancel_token(&self) -> CancelToken {
        match &self.state {
            Some(s) => s.cancel.clone(),
            None => CancelToken::new(),
        }
    }

    /// A guard with the same limits, deadline, and cancellation token but
    /// zeroed row counters — for retrying with a cheaper query after a
    /// budget trip (the wall clock keeps running; budgets restart).
    pub fn fresh_attempt(&self) -> QueryGuard {
        match &self.state {
            None => QueryGuard::unlimited(),
            Some(s) => QueryGuard {
                state: Some(Arc::new(GuardState {
                    deadline: s.deadline,
                    deadline_budget: s.deadline_budget,
                    output_budget: s.output_budget,
                    intermediate_budget: s.intermediate_budget,
                    cancel: s.cancel.clone(),
                    output_rows: AtomicU64::new(0),
                    intermediate_rows: AtomicU64::new(0),
                    ticks: AtomicU64::new(0),
                })),
            },
        }
    }

    /// Rows of intermediate budget consumed so far (0 when unlimited).
    pub fn intermediate_rows(&self) -> u64 {
        self.state.as_ref().map_or(0, |s| s.intermediate_rows.load(Ordering::Relaxed))
    }

    /// Polls cancellation and (at a sampled stride) the deadline. Called
    /// once per processed row in the operator loops.
    #[inline]
    pub fn check(&self) -> Result<(), ExecError> {
        let Some(s) = &self.state else { return Ok(()) };
        if s.cancel.is_cancelled() {
            return Err(ExecError::Cancelled);
        }
        if s.deadline.is_some() {
            let t = s.ticks.fetch_add(1, Ordering::Relaxed);
            if t % DEADLINE_STRIDE == 0 {
                self.check_deadline_now(s)?;
            }
        }
        Ok(())
    }

    /// Polls cancellation and the deadline *unconditionally* (no stride).
    /// Phase boundaries use this so a blown deadline is seen immediately.
    pub fn check_now(&self) -> Result<(), ExecError> {
        let Some(s) = &self.state else { return Ok(()) };
        if s.cancel.is_cancelled() {
            return Err(ExecError::Cancelled);
        }
        if s.deadline.is_some() {
            self.check_deadline_now(s)?;
        }
        Ok(())
    }

    #[cold]
    fn check_deadline_now(&self, s: &GuardState) -> Result<(), ExecError> {
        if let Some(d) = s.deadline {
            if Instant::now() >= d {
                let limit = s.deadline_budget.unwrap_or_default().as_millis() as u64;
                return Err(ExecError::ResourceExhausted { resource: ResourceKind::Deadline, limit });
            }
        }
        Ok(())
    }

    /// Charges `n` materialized intermediate rows and polls the limits.
    #[inline]
    pub fn charge_intermediate(&self, n: u64) -> Result<(), ExecError> {
        let Some(s) = &self.state else { return Ok(()) };
        if let Some(budget) = s.intermediate_budget {
            let total = s.intermediate_rows.fetch_add(n, Ordering::Relaxed) + n;
            if total > budget {
                return Err(ExecError::ResourceExhausted {
                    resource: ResourceKind::IntermediateRows,
                    limit: budget,
                });
            }
        }
        self.check()
    }

    /// Charges `n` result rows of a supervised statement against the
    /// output budget.
    pub fn charge_output(&self, n: u64) -> Result<(), ExecError> {
        let Some(s) = &self.state else { return Ok(()) };
        if let Some(budget) = s.output_budget {
            let total = s.output_rows.fetch_add(n, Ordering::Relaxed) + n;
            if total > budget {
                return Err(ExecError::ResourceExhausted {
                    resource: ResourceKind::OutputRows,
                    limit: budget,
                });
            }
        }
        self.check_now()
    }
}

/// Builder for a limited [`QueryGuard`].
#[derive(Debug, Default)]
pub struct QueryGuardBuilder {
    deadline_budget: Option<Duration>,
    output_budget: Option<u64>,
    intermediate_budget: Option<u64>,
    cancel: Option<CancelToken>,
}

impl QueryGuardBuilder {
    /// Trips the guard `d` after `build()` is called.
    pub fn deadline(mut self, d: Duration) -> Self {
        self.deadline_budget = Some(d);
        self
    }

    /// Caps the number of result rows produced by supervised statements.
    pub fn max_output_rows(mut self, n: u64) -> Self {
        self.output_budget = Some(n);
        self
    }

    /// Caps the total rows materialized by operators.
    pub fn max_intermediate_rows(mut self, n: u64) -> Self {
        self.intermediate_budget = Some(n);
        self
    }

    /// Attaches an externally held cancellation token.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Finishes the guard; the deadline clock starts now.
    pub fn build(self) -> QueryGuard {
        QueryGuard {
            state: Some(Arc::new(GuardState {
                deadline: self.deadline_budget.map(|d| Instant::now() + d),
                deadline_budget: self.deadline_budget,
                output_budget: self.output_budget,
                intermediate_budget: self.intermediate_budget,
                cancel: self.cancel.unwrap_or_default(),
                output_rows: AtomicU64::new(0),
                intermediate_rows: AtomicU64::new(0),
                ticks: AtomicU64::new(0),
            })),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let g = QueryGuard::unlimited();
        assert!(!g.is_limited());
        for _ in 0..10_000 {
            g.charge_intermediate(1_000_000).unwrap();
        }
        g.charge_output(u64::MAX / 2).unwrap();
        g.check_now().unwrap();
    }

    #[test]
    fn intermediate_budget_trips_at_limit() {
        let g = QueryGuard::builder().max_intermediate_rows(10).build();
        g.charge_intermediate(10).unwrap();
        let err = g.charge_intermediate(1).unwrap_err();
        assert_eq!(
            err,
            ExecError::ResourceExhausted { resource: ResourceKind::IntermediateRows, limit: 10 }
        );
    }

    #[test]
    fn output_budget_trips_at_limit() {
        let g = QueryGuard::builder().max_output_rows(3).build();
        g.charge_output(3).unwrap();
        let err = g.charge_output(1).unwrap_err();
        assert_eq!(
            err,
            ExecError::ResourceExhausted { resource: ResourceKind::OutputRows, limit: 3 }
        );
    }

    #[test]
    fn cancellation_trips_every_check() {
        let token = CancelToken::new();
        let g = QueryGuard::builder().cancel_token(token.clone()).build();
        g.check().unwrap();
        token.cancel();
        assert_eq!(g.check(), Err(ExecError::Cancelled));
        assert_eq!(g.check_now(), Err(ExecError::Cancelled));
        assert_eq!(g.charge_intermediate(1), Err(ExecError::Cancelled));
    }

    #[test]
    fn expired_deadline_trips_check_now() {
        let g = QueryGuard::builder().deadline(Duration::ZERO).build();
        // Instant::now() >= deadline immediately.
        let err = g.check_now().unwrap_err();
        assert!(matches!(
            err,
            ExecError::ResourceExhausted { resource: ResourceKind::Deadline, .. }
        ));
        // the strided check also sees it on its first tick
        let g2 = QueryGuard::builder().deadline(Duration::ZERO).build();
        assert!(g2.check().is_err());
    }

    #[test]
    fn clones_share_budgets_fresh_attempt_resets_them() {
        let g = QueryGuard::builder().max_intermediate_rows(10).build();
        let g2 = g.clone();
        g.charge_intermediate(6).unwrap();
        assert!(g2.charge_intermediate(6).is_err(), "clone draws the same budget");
        let fresh = g.fresh_attempt();
        fresh.charge_intermediate(6).unwrap();
        assert_eq!(fresh.intermediate_rows(), 6);
    }

    #[test]
    fn fresh_attempt_keeps_cancel_token() {
        let token = CancelToken::new();
        let g = QueryGuard::builder().cancel_token(token.clone()).build();
        let fresh = g.fresh_attempt();
        token.cancel();
        assert_eq!(fresh.check_now(), Err(ExecError::Cancelled));
    }
}
