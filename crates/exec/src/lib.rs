#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

//! # qp-exec
//!
//! Query execution engine over `qp-storage`, consuming `qp-sql` ASTs.
//!
//! The engine substitutes for the RDBMS (Oracle 9i) underneath the paper's
//! prototype. It executes the SPJ subset plus everything the paper's
//! personalization algorithms generate:
//!
//! * comma joins resolved into an index-nested-loop / hash join tree,
//!   ordered greedily by histogram-estimated cardinalities,
//! * `UNION ALL` bodies and derived tables (SPA's union of per-preference
//!   sub-queries grouped in an outer query),
//! * grouping, `HAVING`, ordering and limits,
//! * uncorrelated `(NOT) IN` sub-queries with three-valued NULL semantics
//!   (the 1–n absence sub-queries of §5),
//! * scalar UDFs (elastic doi functions embedded in sub-queries) and
//!   aggregate UDFs (the ranking function `r(degree)` of Example 6),
//! * a `rowid` pseudo-column per base-table binding — the "tuple id" the
//!   PPA algorithm's parameterized queries bind; `binding.rowid = <k>`
//!   predicates short-circuit into O(1) row fetches.
//!
//! Execution is vectorized: operators exchange fixed-capacity columnar
//! [`batch::Batch`]es with selection vectors, scans materialize only the
//! rows that survive their pushed predicates, and guard budgets are
//! charged per batch. The original row-at-a-time path is retained behind
//! the `QP_ROW_ENGINE=1` toggle as the parity oracle — both paths produce
//! byte-identical results, enforced by property tests.

pub mod analyze;
pub mod batch;
pub mod cache;
pub mod engine;
pub mod explain;
pub mod error;
pub mod expr;
pub mod functions;
pub mod guard;
pub mod plan;
pub mod planner;
pub mod pool;
pub mod result;

pub use analyze::{NodeStats, PlanProfile};
pub use batch::{Batch, BATCH_CAPACITY};
pub use cache::{PlanCache, PlanKey, ShardedCache};
pub use engine::{Engine, ExecStats};
pub use error::{ExecError, ResourceKind};
pub use functions::{AggState, AggregateFunction, ScalarUdf};
pub use guard::{CancelToken, QueryGuard, QueryGuardBuilder};
pub use pool::{
    morsel_map, morsel_map_with, panic_message, parallel_map, MorselStats, WorkerPanic,
    MORSEL_MAX_ITEMS, PARALLEL_THRESHOLD,
};
pub use result::ResultSet;

// Fault-injection sites live in qp-storage so every layer can share one
// registry; re-exported here for the engine's tests and callers.
pub use qp_storage::failpoint;
