//! Physical plan nodes and their (materialized) execution.
//!
//! Row layout convention: every base-table scan emits rows of the shape
//! `[rowid, col_0, …, col_{n-1}]`; joins concatenate the rows of their
//! inputs. The planner records each binding's offset into this flat layout
//! and compiles all expressions against it.

use std::collections::HashMap;

use qp_storage::{AttrId, Database, RelId, Row, RowId, Value};

use crate::engine::ExecStats;
use crate::error::ExecError;
use crate::expr::PhysExpr;
use crate::functions::AggregateFunction;
use crate::guard::QueryGuard;
use std::sync::Arc;

/// Maps an armed failpoint at `site` onto [`ExecError::Fault`]. Compiles
/// to nothing without the `failpoints` feature.
#[inline]
fn fail_point(site: &str) -> Result<(), ExecError> {
    qp_storage::failpoint::check(site).map_err(ExecError::Fault)
}

/// One aggregate call inside an [`AggSpec`].
pub struct AggCall {
    /// Resolved aggregate implementation.
    pub func: Arc<dyn AggregateFunction>,
    /// Compiled argument expressions over the aggregate input row
    /// (empty for `count(*)`).
    pub args: Vec<PhysExpr>,
}

impl std::fmt::Debug for AggCall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AggCall(args={:?})", self.args)
    }
}

/// A physical plan node producing a batch of rows.
#[derive(Debug)]
pub enum Plan {
    /// Scans a base relation, emitting `[rowid, cols…]` rows.
    Scan {
        /// Relation scanned.
        rel: RelId,
        /// O(1) row fetch for `binding.rowid = k` predicates (the PPA
        /// parameterized-query fast path).
        fetch_rowid: Option<u64>,
        /// Pushed-down single-table predicate (over `[rowid, cols…]`).
        filter: Option<PhysExpr>,
    },
    /// A single empty row — the input of a `FROM`-less select.
    Values,
    /// Filters input rows.
    Filter {
        /// Input plan.
        input: Box<Plan>,
        /// Predicate over the input row.
        predicate: PhysExpr,
    },
    /// Builds a hash table over `right` rows keyed by `right_key`, probes
    /// with `left_key`; emits `left ⧺ right` rows.
    HashJoin {
        /// Probe side.
        left: Box<Plan>,
        /// Build side.
        right: Box<Plan>,
        /// Key over a left row.
        left_key: PhysExpr,
        /// Key over a right row.
        right_key: PhysExpr,
    },
    /// Index nested-loop join: for each left row, probes the persistent
    /// hash index of `right_attr` and fetches matching base rows; emits
    /// `left ⧺ [rowid, cols…]` rows, then applies `residual` (compiled over
    /// the concatenated row) if present.
    IndexJoin {
        /// Outer input.
        left: Box<Plan>,
        /// Key over a left row.
        left_key: PhysExpr,
        /// Indexed attribute of the inner relation.
        right_attr: AttrId,
        /// Residual predicate over the concatenated row (e.g. the inner
        /// relation's pushed single-table conditions).
        residual: Option<PhysExpr>,
    },
    /// Cross product with optional predicate (fallback join).
    NestedLoop {
        /// Outer input.
        left: Box<Plan>,
        /// Inner input (materialized once).
        right: Box<Plan>,
        /// Predicate over the concatenated row.
        predicate: Option<PhysExpr>,
    },
    /// Concatenation of same-arity inputs.
    UnionAll {
        /// Input plans.
        inputs: Vec<Plan>,
    },
    /// A derived table: a fully compiled sub-query executed inline.
    Derived {
        /// The compiled sub-query.
        query: Box<crate::planner::CompiledQuery>,
    },
}

impl Plan {
    /// Executes the plan to a materialized batch, accumulating statistics.
    /// Every materialized row is charged against `guard`; the operator
    /// loops poll cancellation per row, so a tripped guard stops even a
    /// cross product mid-batch.
    pub fn run(
        &self,
        db: &Database,
        stats: &mut ExecStats,
        guard: &QueryGuard,
    ) -> Result<Vec<Row>, ExecError> {
        match self {
            Plan::Scan { rel, fetch_rowid, filter } => {
                fail_point("exec.scan")?;
                let table = db.table(*rel);
                let mut out = Vec::new();
                let emit = |rowid: u64,
                            row: &Row,
                            out: &mut Vec<Row>,
                            stats: &mut ExecStats|
                 -> Result<(), ExecError> {
                    stats.rows_scanned += 1;
                    guard.check()?;
                    let mut r = Vec::with_capacity(row.len() + 1);
                    r.push(Value::Int(rowid as i64));
                    r.extend(row.iter().cloned());
                    match filter {
                        Some(p) if !p.eval_bool(&r) => {}
                        _ => {
                            charge(guard, stats, 1)?;
                            out.push(r);
                        }
                    }
                    Ok(())
                };
                match fetch_rowid {
                    Some(id) => {
                        if let Some(row) = table.get(RowId(*id)) {
                            emit(*id, row, &mut out, stats)?;
                        }
                    }
                    None => {
                        for (rid, row) in table.iter() {
                            emit(rid.0, row, &mut out, stats)?;
                        }
                    }
                }
                Ok(out)
            }
            Plan::Values => Ok(vec![vec![]]),
            Plan::Filter { input, predicate } => {
                let rows = input.run(db, stats, guard)?;
                let mut out = Vec::with_capacity(rows.len());
                for r in rows {
                    guard.check()?;
                    if predicate.eval_bool(&r) {
                        charge(guard, stats, 1)?;
                        out.push(r);
                    }
                }
                Ok(out)
            }
            Plan::HashJoin { left, right, left_key, right_key } => {
                fail_point("exec.hash_join.build")?;
                let right_rows = right.run(db, stats, guard)?;
                let mut table: HashMap<Value, Vec<usize>> = HashMap::new();
                for (i, r) in right_rows.iter().enumerate() {
                    guard.check()?;
                    let k = right_key.eval(r);
                    if !k.is_null() {
                        table.entry(k).or_default().push(i);
                    }
                }
                let left_rows = left.run(db, stats, guard)?;
                let mut out = Vec::new();
                for l in left_rows {
                    guard.check()?;
                    let k = left_key.eval(&l);
                    if k.is_null() {
                        continue;
                    }
                    if let Some(matches) = table.get(&k) {
                        for &i in matches {
                            charge(guard, stats, 1)?;
                            let mut row = l.clone();
                            row.extend(right_rows[i].iter().cloned());
                            out.push(row);
                        }
                    }
                }
                Ok(out)
            }
            Plan::IndexJoin { left, left_key, right_attr, residual } => {
                fail_point("exec.index_join")?;
                let index = db.index(*right_attr);
                let table = db.table(right_attr.rel);
                let left_rows = left.run(db, stats, guard)?;
                let mut out = Vec::new();
                for l in left_rows {
                    guard.check()?;
                    let k = left_key.eval(&l);
                    if k.is_null() {
                        continue;
                    }
                    stats.index_probes += 1;
                    for rid in index.lookup(&k) {
                        let right = table.get(*rid).ok_or_else(|| {
                            ExecError::Internal(format!(
                                "index of {right_attr:?} points at missing row {rid:?}"
                            ))
                        })?;
                        let mut row = Vec::with_capacity(l.len() + right.len() + 1);
                        row.extend(l.iter().cloned());
                        row.push(Value::Int(rid.0 as i64));
                        row.extend(right.iter().cloned());
                        match residual {
                            Some(p) if !p.eval_bool(&row) => {}
                            _ => {
                                charge(guard, stats, 1)?;
                                out.push(row);
                            }
                        }
                    }
                }
                Ok(out)
            }
            Plan::NestedLoop { left, right, predicate } => {
                fail_point("exec.nested_loop")?;
                let right_rows = right.run(db, stats, guard)?;
                let left_rows = left.run(db, stats, guard)?;
                let mut out = Vec::new();
                for l in &left_rows {
                    for r in &right_rows {
                        // polled per pair: cancellation must stop the
                        // cross product inside a single batch
                        guard.check()?;
                        let mut row = Vec::with_capacity(l.len() + r.len());
                        row.extend(l.iter().cloned());
                        row.extend(r.iter().cloned());
                        match predicate {
                            Some(p) if !p.eval_bool(&row) => {}
                            _ => {
                                charge(guard, stats, 1)?;
                                out.push(row);
                            }
                        }
                    }
                }
                Ok(out)
            }
            Plan::UnionAll { inputs } => {
                let mut out = Vec::new();
                for p in inputs {
                    out.extend(p.run(db, stats, guard)?);
                }
                Ok(out)
            }
            Plan::Derived { query } => crate::engine::run_compiled(db, query, stats, guard),
        }
    }
}

/// Charges one operator-output row against the guard and mirrors the
/// count into the stats record.
#[inline]
fn charge(guard: &QueryGuard, stats: &mut ExecStats, n: u64) -> Result<(), ExecError> {
    stats.rows_intermediate += n;
    guard.charge_intermediate(n)
}

/// Grouping/aggregation spec applied to a plan's output.
#[derive(Debug)]
pub struct AggSpec {
    /// Group-key expressions over the input row.
    pub group: Vec<PhysExpr>,
    /// Aggregate calls; outputs are appended after the group keys in the
    /// intermediate row `[group…, agg…]`.
    pub aggs: Vec<AggCall>,
}

impl AggSpec {
    /// Runs the aggregation, producing intermediate rows `[group…, agg…]`.
    /// With no group keys the entire input forms one group (even when
    /// empty, matching SQL's scalar-aggregate semantics).
    pub fn run(&self, input: Vec<Row>) -> Vec<Row> {
        let mut groups: Vec<(Row, Vec<Box<dyn crate::functions::AggState>>)> = Vec::new();
        let mut lookup: HashMap<Row, usize> = HashMap::new();
        if self.group.is_empty() {
            groups.push((vec![], self.aggs.iter().map(|a| a.func.new_state()).collect()));
        }
        for row in &input {
            let key: Row = self.group.iter().map(|g| g.eval(row)).collect();
            let idx = if self.group.is_empty() {
                0
            } else {
                match lookup.get(&key) {
                    Some(i) => *i,
                    None => {
                        let i = groups.len();
                        groups.push((
                            key.clone(),
                            self.aggs.iter().map(|a| a.func.new_state()).collect(),
                        ));
                        lookup.insert(key, i);
                        i
                    }
                }
            };
            for (call, state) in self.aggs.iter().zip(groups[idx].1.iter_mut()) {
                let args: Vec<Value> = call.args.iter().map(|a| a.eval(row)).collect();
                state.update(&args);
            }
        }
        groups
            .into_iter()
            .map(|(mut key, mut states)| {
                key.extend(states.iter_mut().map(|s| s.finish()));
                key
            })
            .collect()
    }
}
