//! Physical plan nodes and their (materialized) execution.
//!
//! Row layout convention: every base-table scan emits rows of the shape
//! `[rowid, col_0, …, col_{n-1}]`; joins concatenate the rows of their
//! inputs. The planner records each binding's offset into this flat layout
//! and compiles all expressions against it.

use std::collections::HashMap;

use qp_storage::{AttrId, Database, RelId, Row, RowId, Value};

use crate::engine::ExecStats;
use crate::error::ExecError;
use crate::expr::PhysExpr;
use crate::functions::AggregateFunction;
use crate::guard::QueryGuard;
use std::sync::Arc;

/// Maps an armed failpoint at `site` onto [`ExecError::Fault`]. Compiles
/// to nothing without the `failpoints` feature.
#[inline]
pub(crate) fn fail_point(site: &str) -> Result<(), ExecError> {
    qp_storage::failpoint::check(site).map_err(ExecError::Fault)
}

/// Rows per work item handed to the morsel pool by the row path's
/// parallel hash join — the row-engine analogue of a batch. Items this
/// size group into 1–4-item morsels, matching the batch path's steal
/// granularity.
const ROW_MORSEL: usize = 256;

/// Row-id fetch attached to a scan — the short-circuit path for
/// `binding.rowid = k` predicates (the PPA parameterized-query fast
/// path).
#[derive(Debug, Clone)]
pub enum RowIdFetch {
    /// Fetch a single row by id (classic per-tuple point probe).
    One(u64),
    /// Fetch every listed row id in list order, skipping missing ids —
    /// the batched PPA probe's tuple-id IN-set: one execution evaluates
    /// the prepared probe for a whole round of fresh tuples at once.
    Set(Arc<Vec<u64>>),
}

/// One aggregate call inside an [`AggSpec`].
#[derive(Clone)]
pub struct AggCall {
    /// Resolved aggregate implementation.
    pub func: Arc<dyn AggregateFunction>,
    /// Compiled argument expressions over the aggregate input row
    /// (empty for `count(*)`).
    pub args: Vec<PhysExpr>,
}

impl std::fmt::Debug for AggCall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AggCall(args={:?})", self.args)
    }
}

/// Planner-time cardinality estimate attached to a scan, kept on the plan
/// so `EXPLAIN ANALYZE` can print estimated vs. observed selectivity —
/// the feedback loop PPA's subquery ordering is judged by.
#[derive(Debug, Clone, Copy)]
pub struct ScanEstimate {
    /// Estimated output rows (table cardinality × selectivity).
    pub rows: f64,
    /// Estimated fraction of the table surviving the pushed predicates.
    pub selectivity: f64,
}

/// Execution context threaded through the operator tree: statistics,
/// the resource guard, and (when profiling) the per-node stats sink.
pub(crate) struct ExecCtx<'a> {
    /// Work counters, accumulated across the whole query.
    pub stats: &'a mut ExecStats,
    /// Resource guard polled per materialized row.
    pub guard: &'a QueryGuard,
    /// Per-node profile, present only under `EXPLAIN ANALYZE` /
    /// [`Engine::execute_profiled`](crate::Engine::execute_profiled).
    pub profile: Option<&'a crate::analyze::PlanProfile>,
    /// Worker threads data-parallel operators may fan out to (1 = serial).
    /// Flows into derived sub-queries; guard budgets stay global because
    /// workers share the guard's atomics.
    pub parallelism: usize,
    /// Batches produced by the vectorized path this execution (0 on the
    /// row path). Folded into the engine's `exec.batch.count` counter;
    /// kept out of [`ExecStats`] because batch boundaries legitimately
    /// differ between serial and parallel runs of the same query.
    pub batch_count: u64,
    /// Live rows carried by those batches (`exec.batch.rows`).
    pub batch_rows: u64,
    /// Morsels dispatched by the work-stealing pool during this
    /// execution (`pool.morsel`). Like the batch counts, scheduling
    /// counters live here rather than in [`ExecStats`] because they
    /// legitimately differ between serial and parallel runs.
    pub pool_morsels: u64,
    /// Morsels executed by a worker other than the one they were dealt
    /// to (`pool.steal`).
    pub pool_steals: u64,
}

impl ExecCtx<'_> {
    /// Folds one parallel run's scheduling counters into the context.
    pub(crate) fn note_pool(&mut self, stats: crate::pool::MorselStats) {
        self.pool_morsels += stats.morsels;
        self.pool_steals += stats.steals;
    }
}

/// A physical plan node producing a batch of rows.
#[derive(Debug, Clone)]
pub enum Plan {
    /// Scans a base relation, emitting `[rowid, cols…]` rows.
    Scan {
        /// Relation scanned.
        rel: RelId,
        /// O(1) row fetch(es) for `binding.rowid = k` predicates (the PPA
        /// parameterized-query fast path); see [`RowIdFetch`].
        fetch_rowid: Option<RowIdFetch>,
        /// Point lookup via the persistent hash index for a selective
        /// `attr = literal` predicate: only the matching rows are fetched
        /// instead of iterating the whole table. The predicate also stays
        /// in `filter`, so the residual check keeps scan semantics exact.
        index_eq: Option<(AttrId, Value)>,
        /// Pushed-down single-table predicate (over `[rowid, cols…]`).
        filter: Option<PhysExpr>,
        /// Planner-time cardinality estimate (None for synthesized scans).
        est: Option<ScanEstimate>,
    },
    /// A single empty row — the input of a `FROM`-less select.
    Values,
    /// Filters input rows.
    Filter {
        /// Input plan.
        input: Box<Plan>,
        /// Predicate over the input row.
        predicate: PhysExpr,
    },
    /// Builds a hash table over `right` rows keyed by `right_key`, probes
    /// with `left_key`; emits `left ⧺ right` rows.
    HashJoin {
        /// Probe side.
        left: Box<Plan>,
        /// Build side.
        right: Box<Plan>,
        /// Key over a left row.
        left_key: PhysExpr,
        /// Key over a right row.
        right_key: PhysExpr,
    },
    /// Index nested-loop join: for each left row, probes the persistent
    /// hash index of `right_attr` and fetches matching base rows; emits
    /// `left ⧺ [rowid, cols…]` rows, then applies `residual` (compiled over
    /// the concatenated row) if present.
    IndexJoin {
        /// Outer input.
        left: Box<Plan>,
        /// Key over a left row.
        left_key: PhysExpr,
        /// Indexed attribute of the inner relation.
        right_attr: AttrId,
        /// Residual predicate over the concatenated row (e.g. the inner
        /// relation's pushed single-table conditions).
        residual: Option<PhysExpr>,
    },
    /// Cross product with optional predicate (fallback join).
    NestedLoop {
        /// Outer input.
        left: Box<Plan>,
        /// Inner input (materialized once).
        right: Box<Plan>,
        /// Predicate over the concatenated row.
        predicate: Option<PhysExpr>,
    },
    /// Concatenation of same-arity inputs.
    UnionAll {
        /// Input plans.
        inputs: Vec<Plan>,
    },
    /// A derived table: a fully compiled sub-query executed inline.
    Derived {
        /// The compiled sub-query.
        query: Box<crate::planner::CompiledQuery>,
    },
}

impl Plan {
    /// Number of plan nodes in this subtree (this node included), with
    /// derived sub-queries counted through. Node ids used by
    /// [`crate::analyze::PlanProfile`] are pre-order positions derived
    /// from these counts, so they depend only on plan *shape*, never on
    /// execution order (a hash join runs its build side first but its
    /// probe side still gets the lower id).
    pub fn node_count(&self) -> usize {
        match self {
            Plan::Scan { .. } | Plan::Values => 1,
            Plan::Filter { input, .. } => 1 + input.node_count(),
            Plan::HashJoin { left, right, .. } | Plan::NestedLoop { left, right, .. } => {
                1 + left.node_count() + right.node_count()
            }
            Plan::IndexJoin { left, .. } => 1 + left.node_count(),
            Plan::UnionAll { inputs } => {
                1 + inputs.iter().map(Plan::node_count).sum::<usize>()
            }
            Plan::Derived { query } => 1 + query.plan_node_count(),
        }
    }

    /// Executes the plan to a materialized batch, accumulating statistics.
    /// Every materialized row is charged against `guard`; the operator
    /// loops poll cancellation per row, so a tripped guard stops even a
    /// cross product mid-batch.
    pub fn run(
        &self,
        db: &Database,
        stats: &mut ExecStats,
        guard: &QueryGuard,
    ) -> Result<Vec<Row>, ExecError> {
        let mut ctx =
            ExecCtx {
                stats,
                guard,
                profile: None,
                parallelism: 1,
                batch_count: 0,
                batch_rows: 0,
                pool_morsels: 0,
                pool_steals: 0,
            };
        self.run_node(db, &mut ctx, 0)
    }

    /// Executes this node as node `node` of the enclosing profile (a
    /// pre-order position, see [`Plan::node_count`]). Timing is taken
    /// only when a profile is attached, so the unprofiled path pays a
    /// single branch per node.
    pub(crate) fn run_node(
        &self,
        db: &Database,
        ctx: &mut ExecCtx<'_>,
        node: usize,
    ) -> Result<Vec<Row>, ExecError> {
        let t0 = ctx.profile.map(|_| std::time::Instant::now());
        let out = self.run_inner(db, ctx, node)?;
        if let (Some(profile), Some(t0)) = (ctx.profile, t0) {
            profile.node(node).observe(out.len() as u64, t0.elapsed());
        }
        Ok(out)
    }

    fn run_inner(
        &self,
        db: &Database,
        ctx: &mut ExecCtx<'_>,
        node: usize,
    ) -> Result<Vec<Row>, ExecError> {
        match self {
            Plan::Scan { rel, fetch_rowid, index_eq, filter, .. } => {
                fail_point("exec.scan")?;
                let table = db.table(*rel);
                let mut out = Vec::new();
                let mut scanned = 0u64;
                let mut emit = |rowid: u64,
                                row: &Row,
                                out: &mut Vec<Row>,
                                ctx: &mut ExecCtx<'_>|
                 -> Result<(), ExecError> {
                    ctx.stats.rows_scanned += 1;
                    scanned += 1;
                    ctx.guard.check()?;
                    let mut r = Vec::with_capacity(row.len() + 1);
                    r.push(Value::Int(rowid as i64));
                    r.extend(row.iter().cloned());
                    match filter {
                        Some(p) if !p.eval_bool(&r) => {}
                        _ => {
                            charge(ctx, 1)?;
                            out.push(r);
                        }
                    }
                    Ok(())
                };
                match (fetch_rowid, index_eq) {
                    (Some(RowIdFetch::One(id)), _) => {
                        if let Some(row) = table.get(RowId(*id)) {
                            emit(*id, row, &mut out, ctx)?;
                        }
                    }
                    (Some(RowIdFetch::Set(ids)), _) => {
                        for &id in ids.iter() {
                            if let Some(row) = table.get(RowId(id)) {
                                emit(id, row, &mut out, ctx)?;
                            }
                        }
                    }
                    (None, Some((attr, key))) => {
                        let index = db.index(*attr);
                        ctx.stats.index_probes += 1;
                        for rid in index.lookup(key) {
                            let row = table.get(*rid).ok_or_else(|| {
                                ExecError::Internal(format!(
                                    "index of {attr:?} points at missing row {rid:?}"
                                ))
                            })?;
                            emit(rid.0, row, &mut out, ctx)?;
                        }
                    }
                    (None, None) => {
                        for (rid, row) in table.iter() {
                            emit(rid.0, row, &mut out, ctx)?;
                        }
                    }
                }
                if let Some(profile) = ctx.profile {
                    profile.node(node).add_scanned(scanned);
                }
                Ok(out)
            }
            Plan::Values => Ok(vec![vec![]]),
            Plan::Filter { input, predicate } => {
                let rows = input.run_node(db, ctx, node + 1)?;
                let mut out = Vec::with_capacity(rows.len());
                for r in rows {
                    ctx.guard.check()?;
                    if predicate.eval_bool(&r) {
                        charge(ctx, 1)?;
                        out.push(r);
                    }
                }
                Ok(out)
            }
            Plan::HashJoin { left, right, left_key, right_key } => {
                fail_point("exec.hash_join.build")?;
                let left_node = node + 1;
                let right_node = left_node + left.node_count();
                let right_rows = right.run_node(db, ctx, right_node)?;
                let parallel = ctx.parallelism > 1;

                // --- build --------------------------------------------
                // The parallel build morselizes the build side into
                // row-chunks; per-chunk maps merge in chunk order, so
                // each key's match list stays in ascending row order —
                // the same order the serial loop produces.
                let table: HashMap<Value, Vec<usize>> = if parallel
                    && right_rows.len() >= crate::pool::PARALLEL_THRESHOLD
                {
                    let chunk = ROW_MORSEL;
                    let guard = ctx.guard;
                    let (partials, pstats) = crate::pool::morsel_map(
                        right_rows.chunks(chunk).collect::<Vec<_>>(),
                        ctx.parallelism,
                        |ci, rows| {
                            let base = ci * chunk;
                            let mut m: HashMap<Value, Vec<usize>> = HashMap::new();
                            for (i, r) in rows.iter().enumerate() {
                                guard.check()?;
                                let k = right_key.eval(r);
                                if !k.is_null() {
                                    m.entry(k).or_default().push(base + i);
                                }
                            }
                            Ok::<_, ExecError>(m)
                        },
                    );
                    ctx.note_pool(pstats);
                    let mut table: HashMap<Value, Vec<usize>> = HashMap::new();
                    for m in partials? {
                        for (k, v) in m {
                            table.entry(k).or_default().extend(v);
                        }
                    }
                    table
                } else {
                    let mut table: HashMap<Value, Vec<usize>> = HashMap::new();
                    for (i, r) in right_rows.iter().enumerate() {
                        ctx.guard.check()?;
                        let k = right_key.eval(r);
                        if !k.is_null() {
                            table.entry(k).or_default().push(i);
                        }
                    }
                    table
                };

                // --- probe --------------------------------------------
                let left_rows = left.run_node(db, ctx, left_node)?;
                if parallel && left_rows.len() >= crate::pool::PARALLEL_THRESHOLD {
                    // Workers charge the *shared* guard per emitted row
                    // (global intermediate-row budget) while counting into
                    // local stats merged deterministically afterwards.
                    let guard = ctx.guard;
                    let (parts, pstats) = crate::pool::morsel_map(
                        left_rows.chunks(ROW_MORSEL).collect::<Vec<_>>(),
                        ctx.parallelism,
                        |_, rows| {
                            let mut out = Vec::new();
                            let mut emitted = 0u64;
                            for l in rows {
                                guard.check()?;
                                let k = left_key.eval(l);
                                if k.is_null() {
                                    continue;
                                }
                                if let Some(matches) = table.get(&k) {
                                    for &i in matches {
                                        guard.charge_intermediate(1)?;
                                        emitted += 1;
                                        let mut row = l.clone();
                                        row.extend(right_rows[i].iter().cloned());
                                        out.push(row);
                                    }
                                }
                            }
                            Ok::<_, ExecError>((out, emitted))
                        },
                    );
                    ctx.note_pool(pstats);
                    let mut out = Vec::new();
                    for (rows, emitted) in parts? {
                        ctx.stats.rows_intermediate += emitted;
                        out.extend(rows);
                    }
                    return Ok(out);
                }
                let mut out = Vec::new();
                for l in left_rows {
                    ctx.guard.check()?;
                    let k = left_key.eval(&l);
                    if k.is_null() {
                        continue;
                    }
                    if let Some(matches) = table.get(&k) {
                        for &i in matches {
                            charge(ctx, 1)?;
                            let mut row = l.clone();
                            row.extend(right_rows[i].iter().cloned());
                            out.push(row);
                        }
                    }
                }
                Ok(out)
            }
            Plan::IndexJoin { left, left_key, right_attr, residual } => {
                fail_point("exec.index_join")?;
                let index = db.index(*right_attr);
                let table = db.table(right_attr.rel);
                let left_rows = left.run_node(db, ctx, node + 1)?;
                let mut out = Vec::new();
                let mut probes = 0u64;
                for l in left_rows {
                    ctx.guard.check()?;
                    let k = left_key.eval(&l);
                    if k.is_null() {
                        continue;
                    }
                    ctx.stats.index_probes += 1;
                    probes += 1;
                    for rid in index.lookup(&k) {
                        let right = table.get(*rid).ok_or_else(|| {
                            ExecError::Internal(format!(
                                "index of {right_attr:?} points at missing row {rid:?}"
                            ))
                        })?;
                        let mut row = Vec::with_capacity(l.len() + right.len() + 1);
                        row.extend(l.iter().cloned());
                        row.push(Value::Int(rid.0 as i64));
                        row.extend(right.iter().cloned());
                        match residual {
                            Some(p) if !p.eval_bool(&row) => {}
                            _ => {
                                charge(ctx, 1)?;
                                out.push(row);
                            }
                        }
                    }
                }
                if let Some(profile) = ctx.profile {
                    profile.node(node).add_probes(probes);
                }
                Ok(out)
            }
            Plan::NestedLoop { left, right, predicate } => {
                fail_point("exec.nested_loop")?;
                let left_node = node + 1;
                let right_node = left_node + left.node_count();
                let right_rows = right.run_node(db, ctx, right_node)?;
                let left_rows = left.run_node(db, ctx, left_node)?;
                let mut out = Vec::new();
                for l in &left_rows {
                    for r in &right_rows {
                        // polled per pair: cancellation must stop the
                        // cross product inside a single batch
                        ctx.guard.check()?;
                        let mut row = Vec::with_capacity(l.len() + r.len());
                        row.extend(l.iter().cloned());
                        row.extend(r.iter().cloned());
                        match predicate {
                            Some(p) if !p.eval_bool(&row) => {}
                            _ => {
                                charge(ctx, 1)?;
                                out.push(row);
                            }
                        }
                    }
                }
                Ok(out)
            }
            Plan::UnionAll { inputs } => {
                let mut out = Vec::new();
                let mut child = node + 1;
                for p in inputs {
                    out.extend(p.run_node(db, ctx, child)?);
                    child += p.node_count();
                }
                Ok(out)
            }
            Plan::Derived { query } => crate::engine::run_compiled_at(db, query, ctx, node + 1),
        }
    }
}

/// Charges one operator-output row against the guard and mirrors the
/// count into the stats record.
#[inline]
pub(crate) fn charge(ctx: &mut ExecCtx<'_>, n: u64) -> Result<(), ExecError> {
    ctx.stats.rows_intermediate += n;
    ctx.guard.charge_intermediate(n)
}

/// Grouping/aggregation spec applied to a plan's output.
#[derive(Debug, Clone)]
pub struct AggSpec {
    /// Group-key expressions over the input row.
    pub group: Vec<PhysExpr>,
    /// Aggregate calls; outputs are appended after the group keys in the
    /// intermediate row `[group…, agg…]`.
    pub aggs: Vec<AggCall>,
}

impl AggSpec {
    /// Runs the aggregation, producing intermediate rows `[group…, agg…]`.
    /// With no group keys the entire input forms one group (even when
    /// empty, matching SQL's scalar-aggregate semantics).
    pub fn run(&self, input: Vec<Row>) -> Vec<Row> {
        let mut groups: Vec<(Row, Vec<Box<dyn crate::functions::AggState>>)> = Vec::new();
        let mut lookup: HashMap<Row, usize> = HashMap::new();
        if self.group.is_empty() {
            groups.push((vec![], self.aggs.iter().map(|a| a.func.new_state()).collect()));
        }
        for row in &input {
            let key: Row = self.group.iter().map(|g| g.eval(row)).collect();
            let idx = if self.group.is_empty() {
                0
            } else {
                match lookup.get(&key) {
                    Some(i) => *i,
                    None => {
                        let i = groups.len();
                        groups.push((
                            key.clone(),
                            self.aggs.iter().map(|a| a.func.new_state()).collect(),
                        ));
                        lookup.insert(key, i);
                        i
                    }
                }
            };
            for (call, state) in self.aggs.iter().zip(groups[idx].1.iter_mut()) {
                let args: Vec<Value> = call.args.iter().map(|a| a.eval(row)).collect();
                state.update(&args);
            }
        }
        groups
            .into_iter()
            .map(|(mut key, mut states)| {
                key.extend(states.iter_mut().map(|s| s.finish()));
                key
            })
            .collect()
    }
}
