//! AST → physical plan compilation.
//!
//! The planner resolves names against the catalog, pushes single-table
//! predicates into scans, picks a join order greedily by
//! histogram-estimated cardinalities (smallest estimated input first,
//! then connected tables via their join predicates), chooses index
//! nested-loop joins for base relations and hash joins for derived tables,
//! and compiles grouping, `HAVING`, projection, `ORDER BY` and `LIMIT`.
//!
//! The `rowid` pseudo-column of a base-table binding resolves to the hidden
//! first slot of the scan row; a `binding.rowid = <int>` predicate turns
//! the scan into an O(1) fetch — this is how the PPA algorithm's
//! parameterized queries `Qiˢ(t)` / `Qiᴬ(t)` become cheap.

use std::collections::HashSet;
use std::sync::Arc;

use qp_sql::{BinaryOp, Expr, Literal, OrderByItem, Query, Select, SelectItem, TableRef};
use qp_storage::{Database, RelId, Value};

use crate::engine::{run_compiled, ExecStats};
use crate::error::ExecError;
use crate::expr::PhysExpr;
use crate::functions::FunctionRegistry;
use crate::guard::QueryGuard;
use crate::plan::{AggCall, AggSpec, Plan, RowIdFetch, ScanEstimate};

/// A fully compiled query, ready to execute against the database it was
/// planned for.
///
/// `Clone` is cheap relative to planning (expression trees are copied;
/// materialized `IN`-sets and UDF handles are `Arc`-shared): the plan
/// cache hands out [`std::sync::Arc<CompiledQuery>`]s and callers that
/// need mutation (PPA's `rebind_rowid`) clone a private copy — one clone
/// per worker also makes the per-round probes data-parallel.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    /// One compiled select per `UNION ALL` branch.
    pub branches: Vec<CompiledSelect>,
    /// Order keys.
    pub order: Vec<OrderKey>,
    /// Row limit.
    pub limit: Option<u64>,
    /// Output column names (taken from the first branch).
    pub columns: Vec<String>,
}

impl CompiledQuery {
    /// Rebinds every row-id fetch on scans of `rel` to a new row id.
    /// This turns a query compiled with a placeholder `binding.rowid = k`
    /// predicate into a reusable *prepared parameterized query* — the PPA
    /// algorithm's `Qiˢ(t)` / `Qiᴬ(t)` rebind instead of recompiling.
    /// Returns the number of scans rebound.
    pub fn rebind_rowid(&mut self, rel: RelId, rowid: u64) -> usize {
        let mut n = 0;
        for b in &mut self.branches {
            n += rebind_plan(&mut b.plan, rel, &RowIdFetch::One(rowid));
        }
        n
    }

    /// Rebinds every row-id fetch on scans of `rel` to a *set* of row
    /// ids — the batched PPA probe. One execution then evaluates the
    /// prepared probe for every listed tuple at once (a hash semi-join
    /// against the id set): the fetch scan emits the listed rows in set
    /// order, so the result is the concatenation of the per-tuple
    /// results in that order. Returns the number of scans rebound.
    pub fn rebind_rowid_set(&mut self, rel: RelId, rowids: &Arc<Vec<u64>>) -> usize {
        let mut n = 0;
        for b in &mut self.branches {
            n += rebind_plan(&mut b.plan, rel, &RowIdFetch::Set(Arc::clone(rowids)));
        }
        n
    }

    /// Total number of plan nodes across all branches (derived sub-queries
    /// counted through) — the size of a matching
    /// [`crate::analyze::PlanProfile`].
    pub fn plan_node_count(&self) -> usize {
        self.branches.iter().map(|b| b.plan.node_count()).sum()
    }
}

fn rebind_plan(plan: &mut Plan, rel: RelId, fetch: &RowIdFetch) -> usize {
    match plan {
        Plan::Scan { rel: r, fetch_rowid: Some(f), .. } if *r == rel => {
            *f = fetch.clone();
            1
        }
        Plan::Scan { .. } | Plan::Values => 0,
        Plan::Filter { input, .. } => rebind_plan(input, rel, fetch),
        Plan::HashJoin { left, right, .. } | Plan::NestedLoop { left, right, .. } => {
            rebind_plan(left, rel, fetch) + rebind_plan(right, rel, fetch)
        }
        Plan::IndexJoin { left, .. } => rebind_plan(left, rel, fetch),
        Plan::UnionAll { inputs } => inputs.iter_mut().map(|p| rebind_plan(p, rel, fetch)).sum(),
        Plan::Derived { query } => {
            let mut n = 0;
            for b in &mut query.branches {
                n += rebind_plan(&mut b.plan, rel, fetch);
            }
            n
        }
    }
}

/// One compiled `SELECT` block.
#[derive(Debug, Clone)]
pub struct CompiledSelect {
    /// The join/filter tree.
    pub plan: Plan,
    /// Grouping spec; when present, projection runs over the intermediate
    /// `[group…, agg…]` rows.
    pub agg: Option<CompiledAgg>,
    /// Projection expressions.
    pub project: Vec<PhysExpr>,
    /// `SELECT DISTINCT`.
    pub distinct: bool,
}

/// Compiled grouping/aggregation.
#[derive(Debug, Clone)]
pub struct CompiledAgg {
    /// Group keys and aggregate calls.
    pub spec: AggSpec,
    /// `HAVING` predicate over the intermediate row.
    pub having: Option<PhysExpr>,
}

/// A compiled `ORDER BY` key.
#[derive(Debug, Clone)]
pub struct OrderKey {
    /// Where the key value comes from.
    pub source: KeySource,
    /// Descending order.
    pub desc: bool,
}

/// Where an order key is evaluated.
#[derive(Debug, Clone)]
pub enum KeySource {
    /// An output column (by index).
    Output(usize),
    /// An expression over the branch's source rows (single-branch queries
    /// only; for aggregates the source is the intermediate row).
    Source(PhysExpr),
}

/// Name-resolution scope: the bindings of a `FROM` list.
struct Scope {
    bindings: Vec<Binding>,
}

struct Binding {
    name: String,
    columns: Vec<String>,
    /// `Some(rel)` for base relations (which carry a hidden rowid slot).
    rel: Option<RelId>,
    /// Width in the flat row layout (including the rowid slot if any).
    width: usize,
    /// Start offset in the flat row; fixed once the join order is chosen.
    offset: usize,
}

impl Binding {
    /// Offset of named column within the binding, in flat-row coordinates
    /// relative to the binding start.
    fn column_slot(&self, name: &str) -> Option<usize> {
        let base = if self.rel.is_some() { 1 } else { 0 };
        if let Some(i) = self.columns.iter().position(|c| c.eq_ignore_ascii_case(name)) {
            return Some(base + i);
        }
        if self.rel.is_some() && name.eq_ignore_ascii_case("rowid") {
            return Some(0);
        }
        None
    }
}

impl Scope {
    /// Resolves a column to `(binding index, slot within binding)`.
    fn resolve(&self, table: Option<&str>, name: &str) -> Result<(usize, usize), ExecError> {
        match table {
            Some(t) => {
                let (i, b) = self
                    .bindings
                    .iter()
                    .enumerate()
                    .find(|(_, b)| b.name.eq_ignore_ascii_case(t))
                    .ok_or_else(|| ExecError::UnknownBinding(t.to_string()))?;
                let slot = b
                    .column_slot(name)
                    .ok_or_else(|| ExecError::UnknownColumn(format!("{t}.{name}")))?;
                Ok((i, slot))
            }
            None => {
                let mut hits = Vec::new();
                for (i, b) in self.bindings.iter().enumerate() {
                    if let Some(slot) = b.column_slot(name) {
                        // bare `rowid` only resolves when unambiguous like
                        // any other column
                        hits.push((i, slot));
                    }
                }
                match hits.len() {
                    0 => Err(ExecError::UnknownColumn(name.to_string())),
                    1 => Ok(hits[0]),
                    _ => Err(ExecError::AmbiguousColumn(name.to_string())),
                }
            }
        }
    }
}

/// The planner. Holds the database (for catalog access, statistics, and
/// compile-time execution of uncorrelated `IN` sub-queries) and the
/// function registry.
pub struct Planner<'a> {
    db: &'a Database,
    registry: &'a FunctionRegistry,
    stats: ExecStats,
    guard: QueryGuard,
}

impl<'a> Planner<'a> {
    /// Creates a planner.
    pub fn new(db: &'a Database, registry: &'a FunctionRegistry) -> Self {
        Planner { db, registry, stats: ExecStats::default(), guard: QueryGuard::unlimited() }
    }

    /// Attaches a [`QueryGuard`] so plan-time work (materializing
    /// uncorrelated `IN` sub-queries) is bounded too.
    pub fn with_guard(mut self, guard: QueryGuard) -> Self {
        self.guard = guard;
        self
    }

    /// Statistics accumulated during planning (sub-query executions).
    pub fn take_stats(&mut self) -> ExecStats {
        std::mem::take(&mut self.stats)
    }

    /// Compiles a query.
    pub fn compile(&mut self, query: &Query) -> Result<CompiledQuery, ExecError> {
        let selects = query.selects();
        let mut branches = Vec::with_capacity(selects.len());
        let mut columns: Vec<String> = Vec::new();
        let mut scopes = Vec::new();
        for (i, select) in selects.iter().enumerate() {
            let (branch, names, scope) = self.compile_select(select)?;
            if i == 0 {
                columns = names;
            } else if branch.project.len() != columns.len() {
                return Err(ExecError::UnionArityMismatch {
                    expected: columns.len(),
                    got: branch.project.len(),
                });
            }
            branches.push(branch);
            scopes.push(scope);
        }
        let order = self.compile_order(query, &selects, &branches, &scopes, &columns)?;
        Ok(CompiledQuery { branches, order, limit: query.limit, columns })
    }

    /// Compiles one select; returns the branch, its output column names,
    /// and its scope (kept for ORDER BY source-expression resolution).
    fn compile_select(
        &mut self,
        select: &Select,
    ) -> Result<(CompiledSelect, Vec<String>, Scope), ExecError> {
        // --- scope ---------------------------------------------------
        let mut scope = Scope { bindings: Vec::new() };
        let mut derived_plans: Vec<Option<Plan>> = Vec::new();
        for tref in &select.from {
            let binding_name = tref.binding().to_string();
            if scope.bindings.iter().any(|b| b.name.eq_ignore_ascii_case(&binding_name)) {
                return Err(ExecError::DuplicateBinding(binding_name));
            }
            match tref {
                TableRef::Relation { name, .. } => {
                    let rel = self.db.catalog().relation_by_name(name)?;
                    scope.bindings.push(Binding {
                        name: binding_name,
                        columns: rel.attributes.iter().map(|a| a.name.clone()).collect(),
                        rel: Some(rel.id),
                        width: rel.arity() + 1,
                        offset: 0,
                    });
                    derived_plans.push(None);
                }
                TableRef::Derived { query, .. } => {
                    let compiled = self.compile(query)?;
                    scope.bindings.push(Binding {
                        name: binding_name,
                        columns: compiled.columns.clone(),
                        rel: None,
                        width: compiled.columns.len(),
                        offset: 0,
                    });
                    derived_plans.push(Some(Plan::Derived { query: Box::new(compiled) }));
                }
            }
        }

        // --- classify WHERE conjuncts --------------------------------
        let conjuncts: Vec<&Expr> = select
            .where_clause
            .as_ref()
            .map(|w| w.conjuncts())
            .unwrap_or_default();
        let mut pushed: Vec<Vec<&Expr>> = vec![Vec::new(); scope.bindings.len()];
        let mut join_edges: Vec<(usize, usize, &Expr, &Expr)> = Vec::new(); // (left binding, right binding, left col expr, right col expr)
        let mut residual: Vec<&Expr> = Vec::new();
        for c in conjuncts {
            let mut refs = HashSet::new();
            collect_binding_refs(c, &scope, &mut refs)?;
            match refs.len() {
                0 => residual.push(c),
                1 => {
                    if let Some(&b) = refs.iter().next() {
                        pushed[b].push(c);
                    }
                }
                2 => {
                    if let Expr::Binary { left, op: BinaryOp::Eq, right } = c {
                        let lb = single_binding_of(left, &scope)?;
                        let rb = single_binding_of(right, &scope)?;
                        match (lb, rb) {
                            (Some(l), Some(r)) if l != r => {
                                join_edges.push((l, r, left, right));
                                continue;
                            }
                            _ => {}
                        }
                    }
                    residual.push(c);
                }
                _ => residual.push(c),
            }
        }

        // --- join order (greedy, smallest estimate first) -------------
        let plan = if scope.bindings.is_empty() {
            Plan::Values
        } else {
            self.build_join_tree(&mut scope, derived_plans, &pushed, &join_edges)?
        };

        // apply residual predicates
        let plan = match PhysExprList::compile_all(self, &residual, &scope, None)? {
            Some(pred) => Plan::Filter { input: Box::new(plan), predicate: pred },
            None => plan,
        };

        // --- aggregation ----------------------------------------------
        let mut agg_calls: Vec<&Expr> = Vec::new();
        for item in &select.items {
            if let SelectItem::Expr { expr, .. } = item {
                collect_aggregates(expr, self.registry, &mut agg_calls)?;
            }
        }
        if let Some(h) = &select.having {
            collect_aggregates(h, self.registry, &mut agg_calls)?;
        }
        let is_agg = !select.group_by.is_empty() || !agg_calls.is_empty() || select.having.is_some();

        // --- projection -----------------------------------------------
        let mut names: Vec<String> = Vec::new();
        let mut items: Vec<&Expr> = Vec::new();
        for item in &select.items {
            match item {
                SelectItem::Wildcard => {
                    if is_agg {
                        return Err(ExecError::Unsupported(
                            "SELECT * in an aggregate query".to_string(),
                        ));
                    }
                    for b in &scope.bindings {
                        for c in &b.columns {
                            names.push(c.clone());
                        }
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    names.push(alias.clone().unwrap_or_else(|| derive_name(expr, names.len())));
                    items.push(expr);
                }
            }
        }

        let branch = if is_agg {
            let group: Vec<PhysExpr> = select
                .group_by
                .iter()
                .map(|g| self.compile_expr(g, &scope, None))
                .collect::<Result<_, _>>()?;
            let aggs: Vec<AggCall> = agg_calls
                .iter()
                .map(|call| self.compile_agg_call(call, &scope))
                .collect::<Result<_, _>>()?;
            let inter = Intermediate { group_exprs: &select.group_by, agg_exprs: &agg_calls };
            let project: Vec<PhysExpr> = items
                .iter()
                .map(|e| self.compile_over_intermediate(e, &inter))
                .collect::<Result<_, _>>()?;
            let having = select
                .having
                .as_ref()
                .map(|h| self.compile_over_intermediate(h, &inter))
                .transpose()?;
            CompiledSelect {
                plan,
                agg: Some(CompiledAgg { spec: AggSpec { group, aggs }, having }),
                project,
                distinct: select.distinct,
            }
        } else {
            let mut project = Vec::new();
            let mut item_iter = items.iter();
            for item in &select.items {
                match item {
                    SelectItem::Wildcard => {
                        for b in &scope.bindings {
                            let base = if b.rel.is_some() { 1 } else { 0 };
                            for i in 0..b.columns.len() {
                                project.push(PhysExpr::Column(b.offset + base + i));
                            }
                        }
                    }
                    SelectItem::Expr { .. } => {
                        let e = item_iter.next().ok_or_else(|| {
                            ExecError::Internal("projection item list desynchronized".into())
                        })?;
                        project.push(self.compile_expr(e, &scope, None)?);
                    }
                }
            }
            CompiledSelect { plan, agg: None, project, distinct: select.distinct }
        };
        Ok((branch, names, scope))
    }

    /// Greedy join-tree construction. Mutates binding offsets in `scope`.
    fn build_join_tree(
        &mut self,
        scope: &mut Scope,
        mut derived_plans: Vec<Option<Plan>>,
        pushed: &[Vec<&Expr>],
        join_edges: &[(usize, usize, &Expr, &Expr)],
    ) -> Result<Plan, ExecError> {
        let n = scope.bindings.len();
        // cardinality estimates
        let mut estimates: Vec<f64> = Vec::with_capacity(n);
        for (i, b) in scope.bindings.iter().enumerate() {
            let est = match b.rel {
                Some(rel) => {
                    let rows = self.db.table(rel).live_len() as f64;
                    let mut sel = 1.0;
                    for p in &pushed[i] {
                        sel *= self.estimate_selectivity(rel, p, &b.name);
                    }
                    rows * sel
                }
                None => 1000.0,
            };
            estimates.push(est);
        }

        let start = (0..n)
            .min_by(|&a, &b| estimates[a].total_cmp(&estimates[b]))
            .ok_or_else(|| ExecError::Internal("join ordering over empty FROM".into()))?;

        let mut joined: Vec<usize> = vec![start];
        let mut used_edges: HashSet<usize> = HashSet::new();

        // Start plan: scan/derived with pushed predicates applied locally.
        let mut plan = self.source_plan(scope, start, &mut derived_plans, &pushed[start])?;
        scope.bindings[start].offset = 0;
        let mut width = scope.bindings[start].width;

        while joined.len() < n {
            // candidate: an unused edge touching the joined set and one new
            // binding; choose the one whose new binding has the smallest
            // estimate.
            let mut best: Option<(usize, usize)> = None; // (edge idx, new binding)
            for (ei, (l, r, _, _)) in join_edges.iter().enumerate() {
                if used_edges.contains(&ei) {
                    continue;
                }
                let (inside, outside) = if joined.contains(l) && !joined.contains(r) {
                    (*l, *r)
                } else if joined.contains(r) && !joined.contains(l) {
                    (*r, *l)
                } else {
                    continue;
                };
                let _ = inside;
                if best.is_none_or(|(_, b)| estimates[outside] < estimates[b]) {
                    best = Some((ei, outside));
                }
            }
            match best {
                Some((ei, new_b)) => {
                    used_edges.insert(ei);
                    let (l, r, le, re) = join_edges[ei];
                    // expression on the already-joined side / the new side
                    let (outer_expr, inner_expr) =
                        if joined.contains(&l) { (le, re) } else { (re, le) };
                    let _ = r;
                    joined.push(new_b);
                    scope.bindings[new_b].offset = width;
                    width += scope.bindings[new_b].width;

                    // gather residuals for this join: other unused edges now
                    // fully inside the joined set + pushed predicates of the
                    // new binding (for index joins).
                    let mut extra: Vec<&Expr> = Vec::new();
                    for (ej, (l2, r2, le2, re2)) in join_edges.iter().enumerate() {
                        if used_edges.contains(&ej) {
                            continue;
                        }
                        if joined.contains(l2) && joined.contains(r2) {
                            used_edges.insert(ej);
                            extra.push(le2); // recombine as equality below
                            extra.push(re2);
                        }
                    }

                    // Index joins need a base relation *and* a bare column
                    // on the inner side; anything else (derived tables,
                    // computed join keys like `M.x = N.y + 1`) hash-joins.
                    let base_col = scope.bindings[new_b]
                        .rel
                        .and_then(|rel| column_of(inner_expr).map(|col| (rel, col)));
                    if let Some((rel, col)) = base_col {
                        // index nested-loop join on the inner column
                        let attr_idx = self
                            .db
                            .catalog()
                            .relation(rel)
                            .attr_index(&col.1)
                            .ok_or_else(|| ExecError::UnknownColumn(col.1.clone()))?;
                        let left_key = self.compile_expr(outer_expr, scope, None)?;
                        let mut residual_parts: Vec<PhysExpr> = Vec::new();
                        for p in &pushed[new_b] {
                            residual_parts.push(self.compile_expr(p, scope, None)?);
                        }
                        let mut extra_it = extra.iter();
                        while let (Some(a), Some(b)) = (extra_it.next(), extra_it.next()) {
                            let pa = self.compile_expr(a, scope, None)?;
                            let pb = self.compile_expr(b, scope, None)?;
                            residual_parts.push(PhysExpr::Binary {
                                left: Box::new(pa),
                                op: BinaryOp::Eq,
                                right: Box::new(pb),
                            });
                        }
                        let residual_pred = combine_and(residual_parts);
                        plan = Plan::IndexJoin {
                            left: Box::new(plan),
                            left_key,
                            right_attr: qp_storage::AttrId::new(rel, attr_idx as u32),
                            residual: residual_pred,
                        };
                    } else {
                        // hash join against the inner source
                        let inner_plan =
                            self.source_plan(scope, new_b, &mut derived_plans, &pushed[new_b])?;
                        // inner key compiled against the source's own
                        // local layout (keeping `rel` so base-relation
                        // bindings resolve past their hidden rowid slot)
                        let local_scope = Scope {
                            bindings: vec![Binding {
                                name: scope.bindings[new_b].name.clone(),
                                columns: scope.bindings[new_b].columns.clone(),
                                rel: scope.bindings[new_b].rel,
                                width: scope.bindings[new_b].width,
                                offset: 0,
                            }],
                        };
                        let right_key = self.compile_expr(inner_expr, &local_scope, None)?;
                        let left_key = self.compile_expr(outer_expr, scope, None)?;
                        plan = Plan::HashJoin {
                            left: Box::new(plan),
                            right: Box::new(inner_plan),
                            left_key,
                            right_key,
                        };
                        let mut extra_it = extra.iter();
                        let mut parts = Vec::new();
                        while let (Some(a), Some(b)) = (extra_it.next(), extra_it.next()) {
                            let pa = self.compile_expr(a, scope, None)?;
                            let pb = self.compile_expr(b, scope, None)?;
                            parts.push(PhysExpr::Binary {
                                left: Box::new(pa),
                                op: BinaryOp::Eq,
                                right: Box::new(pb),
                            });
                        }
                        if let Some(p) = combine_and(parts) {
                            plan = Plan::Filter { input: Box::new(plan), predicate: p };
                        }
                    }
                }
                None => {
                    // no connecting edge: cross join with the smallest
                    // remaining source
                    let new_b = (0..n)
                        .filter(|i| !joined.contains(i))
                        .min_by(|&a, &b| estimates[a].total_cmp(&estimates[b]))
                        .ok_or_else(|| {
                            ExecError::Internal("cross-join candidate set empty".into())
                        })?;
                    let inner_plan =
                        self.source_plan(scope, new_b, &mut derived_plans, &pushed[new_b])?;
                    joined.push(new_b);
                    scope.bindings[new_b].offset = width;
                    width += scope.bindings[new_b].width;
                    plan = Plan::NestedLoop {
                        left: Box::new(plan),
                        right: Box::new(inner_plan),
                        predicate: None,
                    };
                }
            }
        }
        // Any join edges never consumed (e.g. both endpoints were joined
        // through other paths) become equality filters on top.
        let mut eq_filters = Vec::new();
        for (ei, (_, _, le, re)) in join_edges.iter().enumerate() {
            if !used_edges.contains(&ei) {
                let pa = self.compile_expr(le, scope, None)?;
                let pb = self.compile_expr(re, scope, None)?;
                eq_filters.push(PhysExpr::Binary {
                    left: Box::new(pa),
                    op: BinaryOp::Eq,
                    right: Box::new(pb),
                });
            }
        }
        if let Some(p) = combine_and(eq_filters) {
            return Ok(Plan::Filter { input: Box::new(plan), predicate: p });
        }
        Ok(plan)
    }

    /// Builds the standalone plan for one source with its pushed
    /// predicates applied, compiled against a local scope where the
    /// binding starts at offset 0.
    fn source_plan(
        &mut self,
        scope: &Scope,
        idx: usize,
        derived_plans: &mut [Option<Plan>],
        pushed: &[&Expr],
    ) -> Result<Plan, ExecError> {
        let b = &scope.bindings[idx];
        let local_scope = Scope {
            bindings: vec![Binding {
                name: b.name.clone(),
                columns: b.columns.clone(),
                rel: b.rel,
                width: b.width,
                offset: 0,
            }],
        };
        match b.rel {
            Some(rel) => {
                // split out `rowid = <int>` fetches
                let mut fetch_rowid = None;
                let mut rest: Vec<&Expr> = Vec::new();
                for p in pushed {
                    match rowid_eq_literal(p, &b.name) {
                        Some(id) if fetch_rowid.is_none() => fetch_rowid = Some(id),
                        _ => rest.push(p),
                    }
                }
                // Record the planner's cardinality estimate on the scan so
                // EXPLAIN ANALYZE can report estimated vs. observed
                // selectivity — the same per-predicate estimates that drive
                // join ordering and PPA's subquery ordering.
                let selectivity: f64 = pushed
                    .iter()
                    .map(|p| self.estimate_selectivity(rel, p, &b.name))
                    .product();
                let est = ScanEstimate {
                    rows: self.db.table(rel).live_len() as f64 * selectivity,
                    selectivity,
                };
                let index_eq = if fetch_rowid.is_none() {
                    self.pick_index_eq(rel, &b.name, &rest)
                } else {
                    None
                };
                let filter = PhysExprList::compile_all(self, &rest, &local_scope, None)?;
                Ok(Plan::Scan {
                    rel,
                    fetch_rowid: fetch_rowid.map(RowIdFetch::One),
                    index_eq,
                    filter,
                    est: Some(est),
                })
            }
            None => {
                let plan = derived_plans[idx].take().ok_or_else(|| {
                    ExecError::Internal("derived plan consumed twice".into())
                })?;
                match PhysExprList::compile_all(self, pushed, &local_scope, None)? {
                    Some(p) => Ok(Plan::Filter { input: Box::new(plan), predicate: p }),
                    None => Ok(plan),
                }
            }
        }
    }

    /// Chooses a selective `attr = literal` predicate the scan can serve
    /// through the persistent hash index instead of iterating the whole
    /// table. Returns the most selective candidate, or `None` when every
    /// equality is too unselective (fetching most of the table through
    /// the index is slower than the straight scan) or the table is small
    /// enough that a scan is already cheap. The chosen predicate is *not*
    /// removed from the residual filter — the index only narrows which
    /// rows are fetched, so scan semantics stay exact.
    fn pick_index_eq(
        &self,
        rel: RelId,
        binding: &str,
        pushed: &[&Expr],
    ) -> Option<(qp_storage::AttrId, Value)> {
        use qp_storage::histogram::CmpOp;
        const MIN_ROWS: usize = 64;
        const MAX_SELECTIVITY: f64 = 0.2;
        if self.db.table(rel).live_len() < MIN_ROWS {
            return None;
        }
        let relation = self.db.catalog().relation(rel);
        let mut best: Option<(qp_storage::AttrId, Value, f64)> = None;
        for p in pushed {
            let Expr::Binary { left, op: BinaryOp::Eq, right } = *p else {
                continue;
            };
            let (col, lit) = match (column_of(left), literal_value(right)) {
                (Some(c), Some(v)) => (c, v),
                _ => match (column_of(right), literal_value(left)) {
                    (Some(c), Some(v)) => (c, v),
                    _ => continue,
                },
            };
            if col.0.as_deref().is_some_and(|t| !t.eq_ignore_ascii_case(binding)) {
                continue;
            }
            let Some(attr_idx) = relation.attr_index(&col.1) else {
                continue;
            };
            let attr = qp_storage::AttrId::new(rel, attr_idx as u32);
            let sel = self.db.histogram(attr).selectivity(CmpOp::Eq, &lit);
            if sel <= MAX_SELECTIVITY && best.as_ref().is_none_or(|(_, _, s)| sel < *s) {
                best = Some((attr, lit, sel));
            }
        }
        best.map(|(attr, lit, _)| (attr, lit))
    }

    /// Histogram-based selectivity estimate of a single-table predicate.
    fn estimate_selectivity(&self, rel: RelId, pred: &Expr, binding: &str) -> f64 {
        use qp_storage::histogram::CmpOp;
        // rowid fetch → 1 row regardless of table size
        if rowid_eq_literal(pred, binding).is_some() {
            let rows = self.db.table(rel).live_len().max(1) as f64;
            return 1.0 / rows;
        }
        match pred {
            Expr::Binary { left, op, right } if op.is_comparison() => {
                let (col, lit, op) = match (column_of(left), literal_value(right)) {
                    (Some(c), Some(v)) => (c, v, *op),
                    _ => match (column_of(right), literal_value(left)) {
                        (Some(c), Some(v)) => (c, v, op.flip()),
                        _ => return 0.5,
                    },
                };
                let relation = self.db.catalog().relation(rel);
                let Some(attr_idx) = relation.attr_index(&col.1) else {
                    return 0.5;
                };
                let attr = qp_storage::AttrId::new(rel, attr_idx as u32);
                let hist = self.db.histogram(attr);
                let cmp = match op {
                    BinaryOp::Eq => CmpOp::Eq,
                    BinaryOp::Neq => CmpOp::Ne,
                    BinaryOp::Lt => CmpOp::Lt,
                    BinaryOp::Le => CmpOp::Le,
                    BinaryOp::Gt => CmpOp::Gt,
                    BinaryOp::Ge => CmpOp::Ge,
                    _ => return 0.5,
                };
                hist.selectivity(cmp, &lit)
            }
            Expr::Between { expr, negated, low, high } => {
                let (Some(col), Some(lo), Some(hi)) =
                    (column_of(expr), literal_value(low), literal_value(high))
                else {
                    return 0.25;
                };
                let relation = self.db.catalog().relation(rel);
                let Some(attr_idx) = relation.attr_index(&col.1) else {
                    return 0.25;
                };
                let attr = qp_storage::AttrId::new(rel, attr_idx as u32);
                let sel = self.db.histogram(attr).selectivity_between(&lo, &hi);
                if *negated {
                    1.0 - sel
                } else {
                    sel
                }
            }
            _ => 0.5,
        }
    }

    /// Compiles an AST expression against a scope. `intermediate` is `None`
    /// outside aggregate contexts.
    fn compile_expr(
        &mut self,
        expr: &Expr,
        scope: &Scope,
        _reserved: Option<()>,
    ) -> Result<PhysExpr, ExecError> {
        Ok(match expr {
            Expr::Literal(l) => PhysExpr::Literal(literal_to_value(l)),
            Expr::Column { table, name } => {
                let (b, slot) = scope.resolve(table.as_deref(), name)?;
                PhysExpr::Column(scope.bindings[b].offset + slot)
            }
            Expr::Unary { op, expr } => PhysExpr::Unary {
                op: *op,
                expr: Box::new(self.compile_expr(expr, scope, None)?),
            },
            Expr::Binary { left, op, right } => PhysExpr::Binary {
                left: Box::new(self.compile_expr(left, scope, None)?),
                op: *op,
                right: Box::new(self.compile_expr(right, scope, None)?),
            },
            Expr::Between { expr, negated, low, high } => PhysExpr::Between {
                expr: Box::new(self.compile_expr(expr, scope, None)?),
                negated: *negated,
                low: Box::new(self.compile_expr(low, scope, None)?),
                high: Box::new(self.compile_expr(high, scope, None)?),
            },
            Expr::InList { expr, negated, list } => PhysExpr::InList {
                expr: Box::new(self.compile_expr(expr, scope, None)?),
                negated: *negated,
                list: list
                    .iter()
                    .map(|e| self.compile_expr(e, scope, None))
                    .collect::<Result<_, _>>()?,
            },
            Expr::InSubquery { expr, negated, subquery } => {
                let compiled = self.compile(subquery).map_err(|e| match e {
                    ExecError::UnknownColumn(c) | ExecError::UnknownBinding(c) => {
                        ExecError::CorrelatedSubquery(c)
                    }
                    other => other,
                })?;
                if compiled.columns.len() != 1 {
                    return Err(ExecError::SubqueryArity(compiled.columns.len()));
                }
                self.stats.subqueries += 1;
                let rows = run_compiled(self.db, &compiled, &mut self.stats, &self.guard)?;
                let mut set = HashSet::with_capacity(rows.len());
                let mut has_null = false;
                for mut r in rows {
                    let v = r.pop().expect("arity checked");
                    if v.is_null() {
                        has_null = true;
                    } else {
                        set.insert(v);
                    }
                }
                PhysExpr::InSet {
                    expr: Box::new(self.compile_expr(expr, scope, None)?),
                    negated: *negated,
                    set: Arc::new(set),
                    has_null,
                }
            }
            Expr::IsNull { expr, negated } => PhysExpr::IsNull {
                expr: Box::new(self.compile_expr(expr, scope, None)?),
                negated: *negated,
            },
            Expr::Function { name, args, star } => {
                if *star || self.registry.is_aggregate(name) {
                    return Err(ExecError::MisplacedAggregate(name.clone()));
                }
                let f = self
                    .registry
                    .scalar(name)
                    .ok_or_else(|| ExecError::UnknownFunction(name.clone()))?;
                PhysExpr::Scalar {
                    name: name.clone(),
                    f,
                    args: args
                        .iter()
                        .map(|a| self.compile_expr(a, scope, None))
                        .collect::<Result<_, _>>()?,
                }
            }
        })
    }

    fn compile_agg_call(&mut self, call: &Expr, scope: &Scope) -> Result<AggCall, ExecError> {
        let Expr::Function { name, args, star } = call else {
            unreachable!("collected aggregate is a function call");
        };
        let func = self
            .registry
            .aggregate(name)
            .ok_or_else(|| ExecError::UnknownFunction(name.clone()))?;
        let args = if *star {
            vec![]
        } else {
            args.iter()
                .map(|a| self.compile_expr(a, scope, None))
                .collect::<Result<_, _>>()?
        };
        Ok(AggCall { func, args })
    }

    /// Compiles an expression over the intermediate `[group…, agg…]` row of
    /// an aggregate query, replacing group-key sub-expressions and
    /// aggregate calls with column references.
    fn compile_over_intermediate(
        &mut self,
        expr: &Expr,
        inter: &Intermediate<'_>,
    ) -> Result<PhysExpr, ExecError> {
        if let Some(i) = inter.group_exprs.iter().position(|g| *g == *expr) {
            return Ok(PhysExpr::Column(i));
        }
        if let Some(j) = inter.agg_exprs.iter().position(|a| **a == *expr) {
            return Ok(PhysExpr::Column(inter.group_exprs.len() + j));
        }
        Ok(match expr {
            Expr::Literal(l) => PhysExpr::Literal(literal_to_value(l)),
            Expr::Column { table, name } => {
                let full = match table {
                    Some(t) => format!("{t}.{name}"),
                    None => name.clone(),
                };
                return Err(ExecError::NotGrouped(full));
            }
            Expr::Unary { op, expr } => PhysExpr::Unary {
                op: *op,
                expr: Box::new(self.compile_over_intermediate(expr, inter)?),
            },
            Expr::Binary { left, op, right } => PhysExpr::Binary {
                left: Box::new(self.compile_over_intermediate(left, inter)?),
                op: *op,
                right: Box::new(self.compile_over_intermediate(right, inter)?),
            },
            Expr::Between { expr, negated, low, high } => PhysExpr::Between {
                expr: Box::new(self.compile_over_intermediate(expr, inter)?),
                negated: *negated,
                low: Box::new(self.compile_over_intermediate(low, inter)?),
                high: Box::new(self.compile_over_intermediate(high, inter)?),
            },
            Expr::InList { expr, negated, list } => PhysExpr::InList {
                expr: Box::new(self.compile_over_intermediate(expr, inter)?),
                negated: *negated,
                list: list
                    .iter()
                    .map(|e| self.compile_over_intermediate(e, inter))
                    .collect::<Result<_, _>>()?,
            },
            Expr::IsNull { expr, negated } => PhysExpr::IsNull {
                expr: Box::new(self.compile_over_intermediate(expr, inter)?),
                negated: *negated,
            },
            Expr::Function { name, args, star } => {
                if *star || self.registry.is_aggregate(name) {
                    // an aggregate call that was not collected can only
                    // happen for nested aggregates
                    return Err(ExecError::MisplacedAggregate(name.clone()));
                }
                let f = self
                    .registry
                    .scalar(name)
                    .ok_or_else(|| ExecError::UnknownFunction(name.clone()))?;
                PhysExpr::Scalar {
                    name: name.clone(),
                    f,
                    args: args
                        .iter()
                        .map(|a| self.compile_over_intermediate(a, inter))
                        .collect::<Result<_, _>>()?,
                }
            }
            Expr::InSubquery { .. } => {
                return Err(ExecError::Unsupported(
                    "IN sub-query over aggregate output".to_string(),
                ))
            }
        })
    }

    /// Resolves `ORDER BY` keys. Priority: positional integer → output
    /// column name → structural match with a projected expression → (single
    /// branch only) expression over the branch's source rows.
    fn compile_order(
        &mut self,
        query: &Query,
        selects: &[&Select],
        branches: &[CompiledSelect],
        scopes: &[Scope],
        columns: &[String],
    ) -> Result<Vec<OrderKey>, ExecError> {
        let mut keys = Vec::with_capacity(query.order_by.len());
        for OrderByItem { expr, desc } in &query.order_by {
            // positional
            if let Expr::Literal(Literal::Int(k)) = expr {
                let idx = *k as usize;
                if idx == 0 || idx > columns.len() {
                    return Err(ExecError::UnresolvedOrderBy(format!("position {k}")));
                }
                keys.push(OrderKey { source: KeySource::Output(idx - 1), desc: *desc });
                continue;
            }
            // output column name
            if let Expr::Column { table: None, name } = expr {
                if let Some(i) = columns.iter().position(|c| c.eq_ignore_ascii_case(name)) {
                    keys.push(OrderKey { source: KeySource::Output(i), desc: *desc });
                    continue;
                }
            }
            // structural match against first branch's items
            let first_items: Vec<&Expr> = selects[0]
                .items
                .iter()
                .filter_map(|i| match i {
                    SelectItem::Expr { expr, .. } => Some(expr),
                    SelectItem::Wildcard => None,
                })
                .collect();
            if selects[0].items.iter().all(|i| matches!(i, SelectItem::Expr { .. })) {
                if let Some(i) = first_items.iter().position(|e| **e == *expr) {
                    keys.push(OrderKey { source: KeySource::Output(i), desc: *desc });
                    continue;
                }
            }
            // source expression (single branch only)
            if branches.len() == 1 {
                if branches[0].distinct {
                    return Err(ExecError::UnresolvedOrderBy(format!(
                        "{expr} (not an output column of a DISTINCT query)"
                    )));
                }
                let compiled = match &selects[0].having {
                    _ if branches[0].agg.is_some() => {
                        let mut agg_calls: Vec<&Expr> = Vec::new();
                        for item in &selects[0].items {
                            if let SelectItem::Expr { expr, .. } = item {
                                collect_aggregates(expr, self.registry, &mut agg_calls)?;
                            }
                        }
                        if let Some(h) = &selects[0].having {
                            collect_aggregates(h, self.registry, &mut agg_calls)?;
                        }
                        let inter = Intermediate {
                            group_exprs: &selects[0].group_by,
                            agg_exprs: &agg_calls,
                        };
                        self.compile_over_intermediate(expr, &inter)
                    }
                    _ => self.compile_expr(expr, &scopes[0], None),
                };
                match compiled {
                    Ok(p) => {
                        keys.push(OrderKey { source: KeySource::Source(p), desc: *desc });
                        continue;
                    }
                    Err(e) => return Err(e),
                }
            }
            return Err(ExecError::UnresolvedOrderBy(expr.to_string()));
        }
        Ok(keys)
    }
}

/// Shared context for intermediate-row compilation.
struct Intermediate<'a> {
    group_exprs: &'a [Expr],
    agg_exprs: &'a [&'a Expr],
}

/// Helper to compile a conjunct list into one predicate.
struct PhysExprList;

impl PhysExprList {
    fn compile_all(
        planner: &mut Planner<'_>,
        exprs: &[&Expr],
        scope: &Scope,
        _reserved: Option<()>,
    ) -> Result<Option<PhysExpr>, ExecError> {
        let mut parts = Vec::with_capacity(exprs.len());
        for e in exprs {
            parts.push(planner.compile_expr(e, scope, None)?);
        }
        Ok(combine_and(parts))
    }
}

fn combine_and(parts: Vec<PhysExpr>) -> Option<PhysExpr> {
    parts.into_iter().reduce(|a, b| PhysExpr::Binary {
        left: Box::new(a),
        op: BinaryOp::And,
        right: Box::new(b),
    })
}

fn literal_to_value(l: &Literal) -> Value {
    match l {
        Literal::Null => Value::Null,
        Literal::Int(i) => Value::Int(*i),
        Literal::Float(x) => Value::Float(*x),
        Literal::Str(s) => Value::str(s.clone()),
        Literal::Bool(b) => Value::Bool(*b),
    }
}

/// If `e` is a column ref, returns `(table, name)`.
fn column_of(e: &Expr) -> Option<(Option<String>, String)> {
    match e {
        Expr::Column { table, name } => Some((table.clone(), name.clone())),
        _ => None,
    }
}

/// If `e` is a literal (possibly negated), returns its value.
fn literal_value(e: &Expr) -> Option<Value> {
    match e {
        Expr::Literal(l) => Some(literal_to_value(l)),
        Expr::Unary { op: qp_sql::UnaryOp::Neg, expr } => match literal_value(expr)? {
            Value::Int(i) => Some(Value::Int(-i)),
            Value::Float(x) => Some(Value::Float(-x)),
            _ => None,
        },
        _ => None,
    }
}

/// Matches `binding.rowid = <int literal>` (either side) and returns the id.
fn rowid_eq_literal(e: &Expr, binding: &str) -> Option<u64> {
    let Expr::Binary { left, op: BinaryOp::Eq, right } = e else {
        return None;
    };
    let matches_rowid = |c: &Expr| match c {
        Expr::Column { table, name } if name.eq_ignore_ascii_case("rowid") => match table {
            Some(t) => t.eq_ignore_ascii_case(binding),
            None => true,
        },
        _ => false,
    };
    let lit = |e: &Expr| match literal_value(e) {
        Some(Value::Int(i)) if i >= 0 => Some(i as u64),
        _ => None,
    };
    if matches_rowid(left) {
        return lit(right);
    }
    if matches_rowid(right) {
        return lit(left);
    }
    None
}

/// Collects the binding indexes an expression references.
fn collect_binding_refs(
    e: &Expr,
    scope: &Scope,
    out: &mut HashSet<usize>,
) -> Result<(), ExecError> {
    match e {
        Expr::Column { table, name } => {
            let (b, _) = scope.resolve(table.as_deref(), name)?;
            out.insert(b);
        }
        Expr::Literal(_) => {}
        Expr::Unary { expr, .. } => collect_binding_refs(expr, scope, out)?,
        Expr::Binary { left, right, .. } => {
            collect_binding_refs(left, scope, out)?;
            collect_binding_refs(right, scope, out)?;
        }
        Expr::Between { expr, low, high, .. } => {
            collect_binding_refs(expr, scope, out)?;
            collect_binding_refs(low, scope, out)?;
            collect_binding_refs(high, scope, out)?;
        }
        Expr::InList { expr, list, .. } => {
            collect_binding_refs(expr, scope, out)?;
            for l in list {
                collect_binding_refs(l, scope, out)?;
            }
        }
        Expr::InSubquery { expr, .. } => {
            // the sub-query itself is uncorrelated (checked at compile);
            // only the probe expression references this scope
            collect_binding_refs(expr, scope, out)?;
        }
        Expr::IsNull { expr, .. } => collect_binding_refs(expr, scope, out)?,
        Expr::Function { args, .. } => {
            for a in args {
                collect_binding_refs(a, scope, out)?;
            }
        }
    }
    Ok(())
}

/// If the expression references exactly one binding and is a plain column,
/// returns that binding.
fn single_binding_of(e: &Expr, scope: &Scope) -> Result<Option<usize>, ExecError> {
    match e {
        Expr::Column { table, name } => {
            let (b, _) = scope.resolve(table.as_deref(), name)?;
            Ok(Some(b))
        }
        _ => Ok(None),
    }
}

/// Collects top-level aggregate calls (deduplicated structurally).
fn collect_aggregates<'e>(
    e: &'e Expr,
    registry: &FunctionRegistry,
    out: &mut Vec<&'e Expr>,
) -> Result<(), ExecError> {
    match e {
        Expr::Function { name, args, star } => {
            if *star || registry.is_aggregate(name) {
                // nested aggregates are rejected
                for a in args {
                    let mut nested = Vec::new();
                    collect_aggregates(a, registry, &mut nested)?;
                    if !nested.is_empty() {
                        return Err(ExecError::MisplacedAggregate(name.clone()));
                    }
                }
                if !out.iter().any(|x| **x == *e) {
                    out.push(e);
                }
            } else {
                for a in args {
                    collect_aggregates(a, registry, out)?;
                }
            }
        }
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => {
            collect_aggregates(expr, registry, out)?
        }
        Expr::Binary { left, right, .. } => {
            collect_aggregates(left, registry, out)?;
            collect_aggregates(right, registry, out)?;
        }
        Expr::Between { expr, low, high, .. } => {
            collect_aggregates(expr, registry, out)?;
            collect_aggregates(low, registry, out)?;
            collect_aggregates(high, registry, out)?;
        }
        Expr::InList { expr, list, .. } => {
            collect_aggregates(expr, registry, out)?;
            for l in list {
                collect_aggregates(l, registry, out)?;
            }
        }
        Expr::InSubquery { expr, .. } => collect_aggregates(expr, registry, out)?,
        Expr::Literal(_) | Expr::Column { .. } => {}
    }
    Ok(())
}

/// Derives an output column name from an expression.
fn derive_name(e: &Expr, position: usize) -> String {
    match e {
        Expr::Column { name, .. } => name.clone(),
        Expr::Function { name, .. } => name.clone(),
        _ => format!("col{position}"),
    }
}
