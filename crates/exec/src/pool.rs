//! Zero-dependency data-parallel execution over scoped OS threads.
//!
//! [`parallel_map`] fans a batch of independent work items out across up
//! to `parallelism` worker threads and reassembles the results **in input
//! order**, so a parallel run is byte-identical to the serial one. Threads
//! come from [`std::thread::scope`], which lets workers borrow from the
//! caller's stack (the database, compiled plans, a shared
//! [`crate::guard::QueryGuard`]) without `'static` bounds or a persistent
//! pool — there is no queue, no channels, and nothing to shut down.
//!
//! Error handling is deterministic too: every worker maps its own chunk
//! and stops at its first error; the caller receives the error of the
//! **lowest-indexed chunk** that failed. Guard trips (deadline, budget)
//! are the one sanctioned source of nondeterminism — budget counters are
//! shared atomics, so *which* row trips the budget depends on thread
//! interleaving, but whether the budget trips at all does not.
//!
//! Panics are isolated, not propagated: each worker (and the serial
//! fallback) runs under [`std::panic::catch_unwind`], and a panicking
//! chunk surfaces as a typed [`WorkerPanic`] error converted into the
//! caller's error type. One poisoned tuple therefore degrades the request
//! it belongs to instead of aborting the serving thread; guard budgets
//! live in shared atomics, so everything charged before the panic stays
//! settled. Chunk ordering still applies — a plain error in chunk 0 beats
//! a panic in chunk 2, and vice versa.
//!
//! Callers decide when parallelism pays: pass `parallelism <= 1` (or a
//! single item) and the whole thing degrades to a plain serial loop with
//! no thread spawned. [`PARALLEL_THRESHOLD`] is the shared heuristic for
//! row-granularity work (hash-join build/probe); coarser work like PPA's
//! per-tuple probe queries parallelizes profitably at much smaller batch
//! sizes.

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Minimum number of *row-granularity* items before operators fan out.
/// Below this, thread spawn overhead dwarfs the per-row work.
pub const PARALLEL_THRESHOLD: usize = 256;

/// A worker closure panicked while mapping its chunk.
///
/// [`parallel_map`] catches the unwind at the chunk boundary and converts
/// it into the caller's error type via `From<WorkerPanic>`, so a panic in
/// one request's worker cannot take down the thread (or process) serving
/// other requests. The original panic payload is rendered into `message`
/// when it is a `&str` or `String` (the overwhelmingly common cases);
/// other payload types are reported generically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Index of the chunk whose worker panicked (0 on the serial path).
    pub chunk: usize,
    /// The panic payload rendered as text.
    pub message: String,
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker for chunk {} panicked: {}", self.chunk, self.message)
    }
}

impl std::error::Error for WorkerPanic {}

/// Convenience conversion so plain-`String` error types (tests, ad-hoc
/// tools) satisfy [`parallel_map`]'s `E: From<WorkerPanic>` bound.
impl From<WorkerPanic> for String {
    fn from(p: WorkerPanic) -> Self {
        p.to_string()
    }
}

/// Renders a caught panic payload as text: `&str` and `String` payloads
/// (everything `panic!` with a message produces) are preserved verbatim,
/// anything else is reported generically.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Maps `f` over `items` using up to `parallelism` scoped worker threads,
/// returning results in input order. `f` receives the item's original
/// index alongside the item. With `parallelism <= 1` or fewer than two
/// items this runs serially on the calling thread.
///
/// On error, the error from the lowest-indexed chunk that failed is
/// returned (later chunks' work is discarded). A panicking worker does
/// **not** propagate its panic: the unwind is caught at the chunk
/// boundary and surfaces as a [`WorkerPanic`] converted into `E`, ranked
/// against other chunks' errors by the same lowest-chunk-wins rule. The
/// closures are asserted unwind-safe ([`AssertUnwindSafe`]): the shared
/// state they touch in this codebase (guard atomics, metrics counters,
/// poison-recovering cache shards) stays coherent across an unwind.
pub fn parallel_map<T, R, E, F>(items: Vec<T>, parallelism: usize, f: F) -> Result<Vec<R>, E>
where
    T: Send,
    R: Send,
    E: Send + From<WorkerPanic>,
    F: Fn(usize, T) -> Result<R, E> + Sync,
{
    let n = items.len();
    let workers = parallelism.min(n);
    if workers <= 1 {
        return catch_unwind(AssertUnwindSafe(|| {
            items.into_iter().enumerate().map(|(i, t)| f(i, t)).collect()
        }))
        .unwrap_or_else(|payload| {
            Err(E::from(WorkerPanic { chunk: 0, message: panic_message(&*payload) }))
        });
    }

    // Contiguous chunks whose sizes differ by at most one; chunk order ==
    // input order, which is what makes reassembly deterministic.
    let base = n / workers;
    let extra = n % workers;
    let mut iter = items.into_iter();
    let mut chunks: Vec<(usize, Vec<T>)> = Vec::with_capacity(workers);
    let mut start = 0usize;
    for w in 0..workers {
        let len = base + usize::from(w < extra);
        chunks.push((start, iter.by_ref().take(len).collect()));
        start += len;
    }

    let f = &f;
    let results: Vec<Result<Vec<R>, E>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|(start, chunk)| {
                scope.spawn(move || {
                    // `exec.pool.spawn` models infrastructure failure at
                    // worker startup; it has no typed error channel of its
                    // own, so any armed action surfaces as a worker panic.
                    #[cfg(feature = "failpoints")]
                    if let Err(msg) = qp_storage::failpoint::check("exec.pool.spawn") {
                        std::panic::panic_any(format!("injected fault: {msg}"));
                    }
                    catch_unwind(AssertUnwindSafe(|| {
                        chunk
                            .into_iter()
                            .enumerate()
                            .map(|(j, t)| f(start + j, t))
                            .collect::<Result<Vec<R>, E>>()
                    }))
                })
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(idx, h)| match h.join() {
                Ok(Ok(res)) => res,
                // Inner Err: the closure panicked and `catch_unwind`
                // caught it. Outer Err: the unwind escaped the catch
                // (possible only for panics-in-drop); same treatment.
                Ok(Err(payload)) | Err(payload) => {
                    Err(E::from(WorkerPanic { chunk: idx, message: panic_message(&*payload) }))
                }
            })
            .collect()
    });

    let mut out = Vec::with_capacity(n);
    for chunk in results {
        out.extend(chunk?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order() {
        for par in [1, 2, 3, 8, 64] {
            let items: Vec<usize> = (0..100).collect();
            let out: Vec<usize> =
                parallel_map(items, par, |i, x| Ok::<_, String>(i * 1000 + x * 3)).unwrap();
            let expect: Vec<usize> = (0..100).map(|x| x * 1000 + x * 3).collect();
            assert_eq!(out, expect, "parallelism={par}");
        }
    }

    #[test]
    fn serial_path_spawns_no_threads() {
        // With parallelism 1 the closure runs on the calling thread.
        let caller = std::thread::current().id();
        let out = parallel_map(vec![1, 2, 3], 1, |_, x| {
            assert_eq!(std::thread::current().id(), caller);
            Ok::<_, String>(x * 2)
        })
        .unwrap();
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn empty_and_single_item() {
        let out: Vec<i32> =
            parallel_map(Vec::<i32>::new(), 8, |_, x| Ok::<_, String>(x)).unwrap();
        assert!(out.is_empty());
        let out = parallel_map(vec![7], 8, |_, x| Ok::<_, String>(x + 1)).unwrap();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn first_chunk_error_wins() {
        // Chunks: with 4 workers over 8 items, item 1 is in chunk 0 and
        // item 7 in chunk 3; both fail, chunk 0's error must win.
        let items: Vec<usize> = (0..8).collect();
        let err = parallel_map(items, 4, |_, x| {
            if x == 1 || x == 7 {
                Err(format!("boom {x}"))
            } else {
                Ok(x)
            }
        })
        .unwrap_err();
        assert_eq!(err, "boom 1");
    }

    #[test]
    fn all_items_visited_exactly_once() {
        let count = AtomicUsize::new(0);
        let items: Vec<usize> = (0..1000).collect();
        let out = parallel_map(items, 7, |_, x| {
            count.fetch_add(1, Ordering::Relaxed);
            Ok::<_, String>(x)
        })
        .unwrap();
        assert_eq!(count.load(Ordering::Relaxed), 1000);
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn workers_can_borrow_caller_state() {
        let shared = [10, 20, 30];
        let out = parallel_map(vec![0usize, 1, 2], 3, |_, i| Ok::<_, String>(shared[i])).unwrap();
        assert_eq!(out, vec![10, 20, 30]);
    }

    /// Panics are confined to their chunk and reported as typed errors —
    /// the caller's thread keeps running.
    #[test]
    fn panicking_worker_surfaces_typed_error() {
        let items: Vec<usize> = (0..8).collect();
        let err: WorkerPanicProbe = parallel_map(items, 4, |_, x| {
            if x == 7 {
                panic!("poisoned tuple {x}");
            }
            Ok::<_, WorkerPanicProbe>(x)
        })
        .unwrap_err();
        assert_eq!(err.0.chunk, 3, "item 7 lives in chunk 3 of 4");
        assert_eq!(err.0.message, "poisoned tuple 7");
    }

    #[test]
    fn serial_path_catches_panics_identically() {
        let err: WorkerPanicProbe =
            parallel_map(vec![1, 2, 3], 1, |_, x: i32| -> Result<i32, WorkerPanicProbe> {
                if x == 2 {
                    panic!("serial boom");
                }
                Ok(x)
            })
            .unwrap_err();
        assert_eq!(err.0, WorkerPanic { chunk: 0, message: "serial boom".into() });
    }

    #[test]
    fn plain_error_in_earlier_chunk_beats_panic_in_later_chunk() {
        let items: Vec<usize> = (0..8).collect();
        let err = parallel_map(items, 4, |_, x| {
            if x == 0 {
                return Err("typed error".to_string());
            }
            if x == 7 {
                panic!("later panic");
            }
            Ok(x)
        })
        .unwrap_err();
        assert_eq!(err, "typed error");

        // And symmetrically: a panic in chunk 0 beats an error in chunk 3.
        let items: Vec<usize> = (0..8).collect();
        let err = parallel_map(items, 4, |_, x| {
            if x == 0 {
                panic!("early panic");
            }
            if x == 7 {
                return Err("late error".to_string());
            }
            Ok(x)
        })
        .unwrap_err();
        assert!(err.contains("early panic"), "got: {err}");
    }

    /// Work charged to shared state before the panic is not rolled back —
    /// the same property that keeps guard budgets settled.
    #[test]
    fn shared_state_charged_before_panic_stays_settled() {
        let charged = AtomicUsize::new(0);
        let items: Vec<usize> = (0..100).collect();
        let res: Result<Vec<usize>, WorkerPanicProbe> = parallel_map(items, 4, |_, x| {
            charged.fetch_add(1, Ordering::Relaxed);
            if x == 99 {
                panic!("late panic");
            }
            Ok(x)
        });
        assert!(res.is_err());
        let seen = charged.load(Ordering::Relaxed);
        assert!(seen >= 76, "chunks 0-2 fully charged before chunk 3's panic: {seen}");
    }

    /// Wrapper proving the `E: From<WorkerPanic>` bound carries the full
    /// structured payload, not just a rendered string.
    #[derive(Debug, PartialEq)]
    struct WorkerPanicProbe(WorkerPanic);

    impl From<WorkerPanic> for WorkerPanicProbe {
        fn from(p: WorkerPanic) -> Self {
            WorkerPanicProbe(p)
        }
    }
}
