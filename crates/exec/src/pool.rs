//! Zero-dependency data-parallel execution over scoped OS threads.
//!
//! [`parallel_map`] fans a batch of independent work items out across up
//! to `parallelism` worker threads and reassembles the results **in input
//! order**, so a parallel run is byte-identical to the serial one. Threads
//! come from [`std::thread::scope`], which lets workers borrow from the
//! caller's stack (the database, compiled plans, a shared
//! [`crate::guard::QueryGuard`]) without `'static` bounds or a persistent
//! pool — there is no queue, no channels, and nothing to shut down.
//!
//! Error handling is deterministic too: every worker maps its own chunk
//! and stops at its first error; the caller receives the error of the
//! **lowest-indexed chunk** that failed. Guard trips (deadline, budget)
//! are the one sanctioned source of nondeterminism — budget counters are
//! shared atomics, so *which* row trips the budget depends on thread
//! interleaving, but whether the budget trips at all does not.
//!
//! Callers decide when parallelism pays: pass `parallelism <= 1` (or a
//! single item) and the whole thing degrades to a plain serial loop with
//! no thread spawned. [`PARALLEL_THRESHOLD`] is the shared heuristic for
//! row-granularity work (hash-join build/probe); coarser work like PPA's
//! per-tuple probe queries parallelizes profitably at much smaller batch
//! sizes.

/// Minimum number of *row-granularity* items before operators fan out.
/// Below this, thread spawn overhead dwarfs the per-row work.
pub const PARALLEL_THRESHOLD: usize = 256;

/// Maps `f` over `items` using up to `parallelism` scoped worker threads,
/// returning results in input order. `f` receives the item's original
/// index alongside the item. With `parallelism <= 1` or fewer than two
/// items this runs serially on the calling thread.
///
/// On error, the error from the lowest-indexed chunk that failed is
/// returned (later chunks' work is discarded). A panicking worker
/// propagates its panic to the caller.
pub fn parallel_map<T, R, E, F>(items: Vec<T>, parallelism: usize, f: F) -> Result<Vec<R>, E>
where
    T: Send,
    R: Send,
    E: Send,
    F: Fn(usize, T) -> Result<R, E> + Sync,
{
    let n = items.len();
    let workers = parallelism.min(n);
    if workers <= 1 {
        return items.into_iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    // Contiguous chunks whose sizes differ by at most one; chunk order ==
    // input order, which is what makes reassembly deterministic.
    let base = n / workers;
    let extra = n % workers;
    let mut iter = items.into_iter();
    let mut chunks: Vec<(usize, Vec<T>)> = Vec::with_capacity(workers);
    let mut start = 0usize;
    for w in 0..workers {
        let len = base + usize::from(w < extra);
        chunks.push((start, iter.by_ref().take(len).collect()));
        start += len;
    }

    let f = &f;
    let results: Vec<Result<Vec<R>, E>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|(start, chunk)| {
                scope.spawn(move || {
                    chunk
                        .into_iter()
                        .enumerate()
                        .map(|(j, t)| f(start + j, t))
                        .collect::<Result<Vec<R>, E>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|panic| std::panic::resume_unwind(panic)))
            .collect()
    });

    let mut out = Vec::with_capacity(n);
    for chunk in results {
        out.extend(chunk?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order() {
        for par in [1, 2, 3, 8, 64] {
            let items: Vec<usize> = (0..100).collect();
            let out: Vec<usize> =
                parallel_map(items, par, |i, x| Ok::<_, ()>(i * 1000 + x * 3)).unwrap();
            let expect: Vec<usize> = (0..100).map(|x| x * 1000 + x * 3).collect();
            assert_eq!(out, expect, "parallelism={par}");
        }
    }

    #[test]
    fn serial_path_spawns_no_threads() {
        // With parallelism 1 the closure runs on the calling thread.
        let caller = std::thread::current().id();
        let out = parallel_map(vec![1, 2, 3], 1, |_, x| {
            assert_eq!(std::thread::current().id(), caller);
            Ok::<_, ()>(x * 2)
        })
        .unwrap();
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn empty_and_single_item() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), 8, |_, x| Ok::<_, ()>(x)).unwrap();
        assert!(out.is_empty());
        let out = parallel_map(vec![7], 8, |_, x| Ok::<_, ()>(x + 1)).unwrap();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn first_chunk_error_wins() {
        // Chunks: with 4 workers over 8 items, item 1 is in chunk 0 and
        // item 7 in chunk 3; both fail, chunk 0's error must win.
        let items: Vec<usize> = (0..8).collect();
        let err = parallel_map(items, 4, |_, x| {
            if x == 1 || x == 7 {
                Err(format!("boom {x}"))
            } else {
                Ok(x)
            }
        })
        .unwrap_err();
        assert_eq!(err, "boom 1");
    }

    #[test]
    fn all_items_visited_exactly_once() {
        let count = AtomicUsize::new(0);
        let items: Vec<usize> = (0..1000).collect();
        let out = parallel_map(items, 7, |_, x| {
            count.fetch_add(1, Ordering::Relaxed);
            Ok::<_, ()>(x)
        })
        .unwrap();
        assert_eq!(count.load(Ordering::Relaxed), 1000);
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn workers_can_borrow_caller_state() {
        let shared = [10, 20, 30];
        let out = parallel_map(vec![0usize, 1, 2], 3, |_, i| Ok::<_, ()>(shared[i])).unwrap();
        assert_eq!(out, vec![10, 20, 30]);
    }
}
