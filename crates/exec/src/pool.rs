//! Zero-dependency morsel-driven data parallelism over scoped OS threads.
//!
//! Work is split into **morsels** — small runs of consecutive items (at
//! most [`MORSEL_MAX_ITEMS`] each) — and scheduled by work stealing:
//! every worker owns a deque of morsel ids, pops from the front of its
//! own deque, and when that runs dry steals from the *back* of a
//! neighbour's. Skewed items therefore no longer serialize a run the way
//! the original contiguous pre-chunking did: a worker stuck on one
//! expensive morsel keeps exactly that morsel, and the rest of its block
//! is drained by its peers. Results are reassembled **in input order**,
//! so a parallel run stays byte-identical to the serial one.
//!
//! Threads come from [`std::thread::scope`], which lets workers borrow
//! from the caller's stack (the database, compiled plans, a shared
//! [`crate::guard::QueryGuard`]) without `'static` bounds or a
//! persistent pool — there is no global queue, no channels, and nothing
//! to shut down.
//!
//! Error handling is deterministic: every morsel stops at its own first
//! error, all queued morsels still run to a recorded outcome, and the
//! caller receives the error of the **lowest-indexed morsel** that
//! failed — exactly the error the serial loop would have hit first,
//! regardless of which worker ran the morsel or in what order. Guard
//! trips (deadline, budget) are the one sanctioned source of
//! nondeterminism — budget counters are shared atomics, so *which* row
//! trips the budget depends on thread interleaving, but whether the
//! budget trips at all does not.
//!
//! Panics are isolated, not propagated: each morsel (and the serial
//! fallback) runs under [`std::panic::catch_unwind`], and a panicking
//! morsel surfaces as a typed [`WorkerPanic`] error converted into the
//! caller's error type. One poisoned tuple therefore degrades the
//! request it belongs to instead of aborting the serving thread; guard
//! budgets live in shared atomics, so everything charged before the
//! panic stays settled. Morsel ordering still applies — a plain error in
//! morsel 0 beats a panic in morsel 2, and vice versa. A panic that
//! kills a whole worker *before* it claims work (the `exec.pool.spawn`
//! failpoint models infrastructure failure at thread startup) is
//! absorbed when the surviving workers steal the dead worker's entire
//! deque; only morsels that end without any recorded outcome surface it.
//!
//! Callers decide when parallelism pays: pass `parallelism <= 1` (or a
//! single item) and the whole thing degrades to a plain serial loop with
//! no thread spawned. [`PARALLEL_THRESHOLD`] is the shared heuristic for
//! row-granularity work (hash-join build/probe); coarser work like PPA's
//! preference-query materializations parallelizes profitably at much
//! smaller batch sizes.
//!
//! Scheduling is observable: every parallel run returns a
//! [`MorselStats`] (morsels dispatched, steals performed), the engine
//! folds these into the `pool.morsel` / `pool.steal` counters, and
//! [`totals`] exposes monotonic process-wide sums for benchmark
//! auditing (`repro --bench-parallel` records them).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Minimum number of *row-granularity* items before operators fan out.
/// Below this, thread spawn overhead dwarfs the per-row work.
pub const PARALLEL_THRESHOLD: usize = 256;

/// Upper bound on items per morsel. Work units handed to the pool are
/// already coarse (a 1024-row [`crate::batch::Batch`], a preference-query
/// materialization, a row-chunk), so morsels of 1–4 items keep the steal
/// granularity fine enough to absorb skew while the per-morsel locking
/// overhead stays invisible next to the work itself.
pub const MORSEL_MAX_ITEMS: usize = 4;

/// Scheduling statistics from one [`morsel_map`] / [`morsel_map_with`]
/// run. The serial fallback reports zeros — no scheduler was engaged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MorselStats {
    /// Morsels dispatched (0 on the serial path).
    pub morsels: u64,
    /// Morsels executed by a worker other than the one whose deque they
    /// were dealt to. High steal counts mean the schedule was skewed and
    /// stealing is earning its keep; zero means the initial block deal
    /// was already balanced.
    pub steals: u64,
}

impl MorselStats {
    /// Accumulates another run's counts into this one.
    pub fn merge(&mut self, other: MorselStats) {
        self.morsels += other.morsels;
        self.steals += other.steals;
    }
}

static TOTAL_MORSELS: AtomicU64 = AtomicU64::new(0);
static TOTAL_STEALS: AtomicU64 = AtomicU64::new(0);

/// Monotonic process-wide totals across every parallel pool run since
/// startup. Benchmarks diff this around a measured region to report how
/// many morsels were dispatched and how many were stolen (serial
/// fallbacks contribute nothing).
pub fn totals() -> MorselStats {
    MorselStats {
        morsels: TOTAL_MORSELS.load(Ordering::Relaxed),
        steals: TOTAL_STEALS.load(Ordering::Relaxed),
    }
}

/// A worker closure panicked while mapping a morsel.
///
/// The pool catches the unwind at the morsel boundary and converts it
/// into the caller's error type via `From<WorkerPanic>`, so a panic in
/// one request's worker cannot take down the thread (or process) serving
/// other requests. The original panic payload is rendered into `message`
/// when it is a `&str` or `String` (the overwhelmingly common cases);
/// other payload types are reported generically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Index of the morsel whose execution panicked (0 on the serial
    /// path).
    pub morsel: usize,
    /// The panic payload rendered as text.
    pub message: String,
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker for morsel {} panicked: {}", self.morsel, self.message)
    }
}

impl std::error::Error for WorkerPanic {}

/// Convenience conversion so plain-`String` error types (tests, ad-hoc
/// tools) satisfy the pool's `E: From<WorkerPanic>` bound.
impl From<WorkerPanic> for String {
    fn from(p: WorkerPanic) -> Self {
        p.to_string()
    }
}

/// Renders a caught panic payload as text: `&str` and `String` payloads
/// (everything `panic!` with a message produces) are preserved verbatim,
/// anything else is reported generically.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Items per morsel: aim for roughly four morsels per worker so a stuck
/// worker's block always has slack worth stealing, capped at
/// [`MORSEL_MAX_ITEMS`].
fn morsel_len(n: usize, workers: usize) -> usize {
    (n / (workers * 4)).clamp(1, MORSEL_MAX_ITEMS)
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // Deque and result-slot locks are held only around a pop or a store —
    // no user code runs under them — so a poisoned lock means another
    // worker died *between* critical sections and the protected value is
    // still coherent.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Maps `f` over `items` with morsel-driven work stealing, returning
/// results in input order plus the run's [`MorselStats`]. `f` receives
/// the item's original index alongside the item. With `parallelism <= 1`
/// or fewer than two items this runs serially on the calling thread and
/// reports zero morsels.
///
/// On error, the error of the lowest-indexed morsel that failed is
/// returned (other morsels' work is discarded) — the same error the
/// serial loop would surface first. A panicking morsel does **not**
/// propagate its panic: the unwind is caught at the morsel boundary and
/// surfaces as a [`WorkerPanic`] converted into `E`, ranked against
/// other morsels' errors by the same lowest-morsel-wins rule. The
/// closures are asserted unwind-safe ([`AssertUnwindSafe`]): the shared
/// state they touch in this codebase (guard atomics, metrics counters,
/// poison-recovering cache shards) stays coherent across an unwind.
pub fn morsel_map<T, R, E, F>(
    items: Vec<T>,
    parallelism: usize,
    f: F,
) -> (Result<Vec<R>, E>, MorselStats)
where
    T: Send,
    R: Send,
    E: Send + From<WorkerPanic>,
    F: Fn(usize, T) -> Result<R, E> + Sync,
{
    morsel_map_with(items, parallelism, || (), move |_, i, t| f(i, t))
}

/// A claimable morsel slot: the morsel's starting input index plus its
/// items, `take`n exactly once by whichever worker claims the id.
type MorselSlot<T> = Mutex<Option<(usize, Vec<T>)>>;

/// A morsel's recorded outcome, `None` until a worker settles it; slots
/// still `None` after the scope closes belonged to a worker that died
/// outside any morsel.
type OutcomeSlot<R, E> = Mutex<Option<Result<Vec<R>, E>>>;

/// [`morsel_map`] with per-worker scratch state: `init` runs once on
/// each worker thread (and once on the serial path) and the resulting
/// state is threaded through every morsel that worker executes. This is
/// how call sites amortize per-thread setup — e.g. the row-engine PPA
/// probe clones its prepared queries once per worker instead of once per
/// tuple. If a morsel panics, that worker's state is rebuilt with `init`
/// before it claims its next morsel, since the unwound closure may have
/// left it mid-mutation.
pub fn morsel_map_with<T, R, E, S, I, F>(
    items: Vec<T>,
    parallelism: usize,
    init: I,
    f: F,
) -> (Result<Vec<R>, E>, MorselStats)
where
    T: Send,
    R: Send,
    E: Send + From<WorkerPanic>,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, T) -> Result<R, E> + Sync,
{
    let n = items.len();
    let workers = parallelism.min(n);
    if workers <= 1 {
        let res = catch_unwind(AssertUnwindSafe(|| {
            let mut state = init();
            items.into_iter().enumerate().map(|(i, t)| f(&mut state, i, t)).collect()
        }))
        .unwrap_or_else(|payload| {
            Err(E::from(WorkerPanic { morsel: 0, message: panic_message(&*payload) }))
        });
        return (res, MorselStats::default());
    }

    // Slice the input into morsels of consecutive items; morsel order ==
    // input order, which is what makes reassembly deterministic.
    let mlen = morsel_len(n, workers);
    let mut iter = items.into_iter();
    let mut morsels: Vec<MorselSlot<T>> = Vec::with_capacity(n.div_ceil(mlen));
    let mut start = 0usize;
    while start < n {
        let len = mlen.min(n - start);
        morsels.push(Mutex::new(Some((start, iter.by_ref().take(len).collect()))));
        start += len;
    }
    let m = morsels.len();

    // Deal morsel ids to per-worker deques in contiguous blocks — worker
    // w starts on the same region the old contiguous pre-chunking gave
    // it (good locality), and a thief takes from the *back* of a
    // victim's deque, the region the victim would reach last.
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w * m / workers..(w + 1) * m / workers).collect()))
        .collect();
    let results: Vec<OutcomeSlot<R, E>> = (0..m).map(|_| Mutex::new(None)).collect();
    let steals = AtomicU64::new(0);

    let (init, f) = (&init, &f);
    let (morsels, deques, results, steals) = (&morsels, &deques, &results, &steals);
    // Panic payloads from workers that died *outside* a morsel (thread
    // startup, `init`): attributed below to any morsel left outcome-less.
    let escaped: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    // `exec.pool.spawn` models infrastructure failure at
                    // worker startup; it has no typed error channel of its
                    // own, so any armed action surfaces as a worker panic.
                    #[cfg(feature = "failpoints")]
                    if let Err(msg) = qp_storage::failpoint::check("exec.pool.spawn") {
                        std::panic::panic_any(format!("injected fault: {msg}"));
                    }
                    let mut state = init();
                    loop {
                        // Claim: own deque front first, then scan the
                        // others and steal from the back. Deques only
                        // drain, so finding every deque empty means all
                        // remaining morsels are already claimed — exit.
                        // One deque lock at a time: the own-deque guard
                        // must drop before any victim lock is taken, or
                        // two mutually-stealing workers deadlock ABBA.
                        let own = lock(&deques[w]).pop_front();
                        let claimed = own.or_else(|| {
                            (1..workers).find_map(|off| {
                                let stolen = lock(&deques[(w + off) % workers]).pop_back();
                                if stolen.is_some() {
                                    steals.fetch_add(1, Ordering::Relaxed);
                                }
                                stolen
                            })
                        });
                        let Some(mi) = claimed else { break };
                        // `exec.pool.morsel` fires once per claimed
                        // morsel: Error actions fail exactly this morsel
                        // (typed, lowest-morsel-wins like any other
                        // error), Delay actions skew the schedule to
                        // force steal-heavy interleavings in tests.
                        #[cfg(feature = "failpoints")]
                        if let Err(msg) = qp_storage::failpoint::check("exec.pool.morsel") {
                            *lock(&results[mi]) = Some(Err(E::from(WorkerPanic {
                                morsel: mi,
                                message: format!("injected fault: {msg}"),
                            })));
                            continue;
                        }
                        let Some((base, chunk)) = lock(&morsels[mi]).take() else { continue };
                        let out = {
                            let state = &mut state;
                            catch_unwind(AssertUnwindSafe(move || {
                                chunk
                                    .into_iter()
                                    .enumerate()
                                    .map(|(j, t)| f(state, base + j, t))
                                    .collect::<Result<Vec<R>, E>>()
                            }))
                        };
                        let (out, poisoned) = match out {
                            Ok(r) => (r, false),
                            Err(payload) => (
                                Err(E::from(WorkerPanic {
                                    morsel: mi,
                                    message: panic_message(&*payload),
                                })),
                                true,
                            ),
                        };
                        *lock(&results[mi]) = Some(out);
                        if poisoned {
                            // The unwound closure may have left the
                            // per-worker state mid-mutation; rebuild it.
                            state = init();
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .filter_map(|h| h.join().err())
            .map(|payload| panic_message(&*payload))
            .collect()
    });

    let stolen = steals.load(Ordering::Relaxed);
    TOTAL_MORSELS.fetch_add(m as u64, Ordering::Relaxed);
    TOTAL_STEALS.fetch_add(stolen, Ordering::Relaxed);
    let stats = MorselStats { morsels: m as u64, steals: stolen };

    let mut out = Vec::with_capacity(n);
    for (mi, slot) in results.iter().enumerate() {
        match lock(slot).take() {
            Some(Ok(rs)) => out.extend(rs),
            Some(Err(e)) => return (Err(e), stats),
            // No recorded outcome: every worker that could have claimed
            // this morsel died to a panic that escaped the morsel catch
            // (thread startup or `init`). Attribute the escaped payload.
            None => {
                let message = escaped
                    .first()
                    .cloned()
                    .unwrap_or_else(|| "morsel lost without a recorded outcome".to_string());
                return (Err(E::from(WorkerPanic { morsel: mi, message })), stats);
            }
        }
    }
    (Ok(out), stats)
}

/// Maps `f` over `items` using up to `parallelism` workers, returning
/// results in input order — [`morsel_map`] minus the [`MorselStats`],
/// for call sites that don't track scheduling counters. Semantics
/// (ordering, lowest-morsel-error-wins, panic isolation, serial
/// fallback) are identical.
pub fn parallel_map<T, R, E, F>(items: Vec<T>, parallelism: usize, f: F) -> Result<Vec<R>, E>
where
    T: Send,
    R: Send,
    E: Send + From<WorkerPanic>,
    F: Fn(usize, T) -> Result<R, E> + Sync,
{
    morsel_map(items, parallelism, f).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order() {
        for par in [1, 2, 3, 8, 64] {
            let items: Vec<usize> = (0..100).collect();
            let out: Vec<usize> =
                parallel_map(items, par, |i, x| Ok::<_, String>(i * 1000 + x * 3)).unwrap();
            let expect: Vec<usize> = (0..100).map(|x| x * 1000 + x * 3).collect();
            assert_eq!(out, expect, "parallelism={par}");
        }
    }

    #[test]
    fn serial_path_spawns_no_threads() {
        // With parallelism 1 the closure runs on the calling thread.
        let caller = std::thread::current().id();
        let out = parallel_map(vec![1, 2, 3], 1, |_, x| {
            assert_eq!(std::thread::current().id(), caller);
            Ok::<_, String>(x * 2)
        })
        .unwrap();
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn empty_and_single_item() {
        let out: Vec<i32> =
            parallel_map(Vec::<i32>::new(), 8, |_, x| Ok::<_, String>(x)).unwrap();
        assert!(out.is_empty());
        let out = parallel_map(vec![7], 8, |_, x| Ok::<_, String>(x + 1)).unwrap();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn lowest_morsel_error_wins() {
        // Items 1 and 7 both fail; the error of the lower item index (=
        // lower morsel index) must win, matching the serial loop.
        let items: Vec<usize> = (0..8).collect();
        let err = parallel_map(items, 4, |_, x| {
            if x == 1 || x == 7 {
                Err(format!("boom {x}"))
            } else {
                Ok(x)
            }
        })
        .unwrap_err();
        assert_eq!(err, "boom 1");
    }

    #[test]
    fn all_items_visited_exactly_once() {
        let count = AtomicUsize::new(0);
        let items: Vec<usize> = (0..1000).collect();
        let out = parallel_map(items, 7, |_, x| {
            count.fetch_add(1, Ordering::Relaxed);
            Ok::<_, String>(x)
        })
        .unwrap();
        assert_eq!(count.load(Ordering::Relaxed), 1000);
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn workers_can_borrow_caller_state() {
        let shared = [10, 20, 30];
        let out = parallel_map(vec![0usize, 1, 2], 3, |_, i| Ok::<_, String>(shared[i])).unwrap();
        assert_eq!(out, vec![10, 20, 30]);
    }

    /// Panics are confined to their morsel and reported as typed errors —
    /// the caller's thread keeps running.
    #[test]
    fn panicking_worker_surfaces_typed_error() {
        let items: Vec<usize> = (0..8).collect();
        let err: WorkerPanicProbe = parallel_map(items, 4, |_, x| {
            if x == 7 {
                panic!("poisoned tuple {x}");
            }
            Ok::<_, WorkerPanicProbe>(x)
        })
        .unwrap_err();
        assert_eq!(err.0.morsel, 7, "8 items over 4 workers -> one-item morsels");
        assert_eq!(err.0.message, "poisoned tuple 7");
    }

    #[test]
    fn serial_path_catches_panics_identically() {
        let err: WorkerPanicProbe =
            parallel_map(vec![1, 2, 3], 1, |_, x: i32| -> Result<i32, WorkerPanicProbe> {
                if x == 2 {
                    panic!("serial boom");
                }
                Ok(x)
            })
            .unwrap_err();
        assert_eq!(err.0, WorkerPanic { morsel: 0, message: "serial boom".into() });
    }

    #[test]
    fn plain_error_in_earlier_morsel_beats_panic_in_later_morsel() {
        let items: Vec<usize> = (0..8).collect();
        let err = parallel_map(items, 4, |_, x| {
            if x == 0 {
                return Err("typed error".to_string());
            }
            if x == 7 {
                panic!("later panic");
            }
            Ok(x)
        })
        .unwrap_err();
        assert_eq!(err, "typed error");

        // And symmetrically: a panic at item 0 beats an error at item 7.
        let items: Vec<usize> = (0..8).collect();
        let err = parallel_map(items, 4, |_, x| {
            if x == 0 {
                panic!("early panic");
            }
            if x == 7 {
                return Err("late error".to_string());
            }
            Ok(x)
        })
        .unwrap_err();
        assert!(err.contains("early panic"), "got: {err}");
    }

    /// Work charged to shared state before the panic is not rolled back —
    /// the same property that keeps guard budgets settled. All morsels
    /// other than the panicking one still run to completion (the
    /// scheduler drains the queue rather than aborting), so at least
    /// `len - 1` charges land.
    #[test]
    fn shared_state_charged_before_panic_stays_settled() {
        let charged = AtomicUsize::new(0);
        let items: Vec<usize> = (0..100).collect();
        let res: Result<Vec<usize>, WorkerPanicProbe> = parallel_map(items, 4, |_, x| {
            charged.fetch_add(1, Ordering::Relaxed);
            if x == 99 {
                panic!("late panic");
            }
            Ok(x)
        });
        assert!(res.is_err());
        let seen = charged.load(Ordering::Relaxed);
        assert!(seen >= 99, "every non-panicking item still charged: {seen}");
    }

    #[test]
    fn stats_count_morsels_and_serial_reports_zero() {
        let items: Vec<usize> = (0..100).collect();
        let (out, stats) = morsel_map(items, 4, |_, x| Ok::<_, String>(x));
        assert_eq!(out.unwrap().len(), 100);
        // 100 items, 4 workers: morsel_len = (100/16).clamp(1,4) = 4.
        assert_eq!(stats.morsels, 25);

        let (_, stats) = morsel_map((0..100).collect::<Vec<usize>>(), 1, |_, x| {
            Ok::<_, String>(x)
        });
        assert_eq!(stats, MorselStats::default(), "serial path engages no scheduler");
    }

    #[test]
    fn totals_are_monotonic_and_fold_in_runs() {
        let before = totals();
        let (out, stats) = morsel_map((0..64).collect::<Vec<usize>>(), 4, |_, x| {
            Ok::<_, String>(x)
        });
        assert_eq!(out.unwrap().len(), 64);
        let after = totals();
        assert!(after.morsels >= before.morsels + stats.morsels);
        assert!(after.steals >= before.steals);
    }

    /// Per-worker state: `init` runs at most once per worker on the
    /// happy path, and every item sees a state its own thread built.
    #[test]
    fn per_worker_state_initialized_once_per_worker() {
        let inits = AtomicUsize::new(0);
        let (out, _) = morsel_map_with(
            (0..200).collect::<Vec<usize>>(),
            4,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0usize
            },
            |seen, _, x| {
                *seen += 1;
                Ok::<_, String>(x)
            },
        );
        assert_eq!(out.unwrap().len(), 200);
        let n = inits.load(Ordering::Relaxed);
        assert!((1..=4).contains(&n), "one init per live worker, got {n}");
    }

    /// A panicking morsel poisons only itself: the worker rebuilds its
    /// state and later morsels still complete.
    #[test]
    fn state_rebuilt_after_morsel_panic() {
        let inits = AtomicUsize::new(0);
        let (out, _) = morsel_map_with(
            (0..40).collect::<Vec<usize>>(),
            2,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                Vec::<usize>::new()
            },
            |scratch, _, x| {
                scratch.push(x);
                if x == 0 {
                    panic!("poison first morsel");
                }
                Ok::<_, WorkerPanicProbe>(x)
            },
        );
        let err = out.unwrap_err();
        assert_eq!(err.0.morsel, 0);
        assert!(
            inits.load(Ordering::Relaxed) >= 3,
            "the worker that caught the panic re-ran init"
        );
    }

    /// Wrapper proving the `E: From<WorkerPanic>` bound carries the full
    /// structured payload, not just a rendered string.
    #[derive(Debug, PartialEq)]
    struct WorkerPanicProbe(WorkerPanic);

    impl From<WorkerPanic> for WorkerPanicProbe {
        fn from(p: WorkerPanic) -> Self {
            WorkerPanicProbe(p)
        }
    }
}
