//! Query results.

use std::fmt;

use qp_storage::{Row, Value};

/// The materialized result of a query: column names plus rows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResultSet {
    /// Output column names, in projection order.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Row>,
}

impl ResultSet {
    /// Creates a result set.
    pub fn new(columns: Vec<String>, rows: Vec<Row>) -> Self {
        ResultSet { columns, rows }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of a column by case-insensitive name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.eq_ignore_ascii_case(name))
    }

    /// Values of one column by name, in row order.
    pub fn column(&self, name: &str) -> Option<Vec<&Value>> {
        let i = self.column_index(name)?;
        Some(self.rows.iter().map(|r| &r[i]).collect())
    }

    /// The single value of a single-row, single-column result.
    pub fn scalar(&self) -> Option<&Value> {
        if self.rows.len() == 1 && self.rows[0].len() == 1 {
            Some(&self.rows[0][0])
        } else {
            None
        }
    }
}

impl fmt::Display for ResultSet {
    /// Renders an aligned ASCII table, handy in examples and tests.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Value::to_string).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{c:<w$}", w = widths[i])?;
        }
        writeln!(f)?;
        for (i, w) in widths.iter().enumerate() {
            if i > 0 {
                write!(f, "-+-")?;
            }
            write!(f, "{}", "-".repeat(*w))?;
        }
        writeln!(f)?;
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                write!(f, "{cell:<w$}", w = widths.get(i).copied().unwrap_or(0))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs() -> ResultSet {
        ResultSet::new(
            vec!["title".into(), "degree".into()],
            vec![
                vec![Value::str("Annie Hall"), Value::Float(0.72)],
                vec![Value::str("Zelig"), Value::Float(0.5)],
            ],
        )
    }

    #[test]
    fn column_access() {
        let r = rs();
        assert_eq!(r.column_index("DEGREE"), Some(1));
        let titles = r.column("title").unwrap();
        assert_eq!(titles[1], &Value::str("Zelig"));
        assert!(r.column("nope").is_none());
    }

    #[test]
    fn scalar() {
        let r = ResultSet::new(vec!["n".into()], vec![vec![Value::Int(7)]]);
        assert_eq!(r.scalar(), Some(&Value::Int(7)));
        assert_eq!(rs().scalar(), None);
    }

    #[test]
    fn display_renders_table() {
        let s = rs().to_string();
        assert!(s.contains("title"));
        assert!(s.contains("Annie Hall"));
        assert!(s.lines().count() >= 4);
    }
}
