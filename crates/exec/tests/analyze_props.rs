//! Property tests for plan profiling: in a guard-free run the profiled
//! root operator of each branch accounts for every result row — the
//! `rows=` numbers EXPLAIN ANALYZE prints are the true result
//! cardinality, not a sample.

use proptest::prelude::*;
use qp_exec::{Engine, QueryGuard};
use qp_sql::parse_query;
use qp_storage::{Attribute, DataType, Database, Value};

fn build_db(rows: &[(Option<i64>, i64)]) -> Database {
    let mut db = Database::new();
    db.create_relation(
        "T",
        vec![Attribute::new("a", DataType::Int), Attribute::new("b", DataType::Int)],
        &[],
    )
    .unwrap();
    for (a, b) in rows {
        db.insert_by_name(
            "T",
            vec![a.map(Value::Int).unwrap_or(Value::Null), Value::Int(*b)],
        )
        .unwrap();
    }
    db.warm_statistics();
    db
}

fn pred_strategy() -> impl Strategy<Value = String> {
    let col = prop_oneof![Just("a"), Just("b")];
    let op = prop_oneof![Just("="), Just("<"), Just("<="), Just(">"), Just(">="), Just("<>")];
    (col, op, -5i64..15).prop_map(|(c, o, v)| format!("{c} {o} {v}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Single-branch select: the root plan node's `rows_out` equals the
    /// final cardinality (projection drops no rows, and there is no
    /// distinct / limit / aggregation to shrink the batch afterwards).
    #[test]
    fn root_rows_out_equals_result_cardinality(
        rows in prop::collection::vec((prop::option::of(-5i64..15), -5i64..15), 0..40),
        pred in pred_strategy(),
    ) {
        let db = build_db(&rows);
        let e = Engine::new();
        let q = parse_query(&format!("select a, b from T where {pred}")).unwrap();
        let (rs, _stats, profile) =
            e.execute_profiled(&db, &q, &QueryGuard::unlimited()).unwrap();
        prop_assert_eq!(profile.node(0).rows_out(), rs.rows.len() as u64);
        prop_assert_eq!(profile.result_rows(), rs.rows.len() as u64);
        // The scan never reads more than the table holds, and never
        // produces more than it reads.
        prop_assert!(profile.node(0).rows_scanned() <= rows.len() as u64);
        prop_assert!(profile.node(0).rows_out() <= profile.node(0).rows_scanned().max(rows.len() as u64));
    }

    /// UNION ALL: per-branch root `rows_out` values sum to the final
    /// cardinality.
    #[test]
    fn union_branch_rows_sum_to_result(
        rows in prop::collection::vec((prop::option::of(-5i64..15), -5i64..15), 0..40),
        p1 in pred_strategy(),
        p2 in pred_strategy(),
    ) {
        let db = build_db(&rows);
        let e = Engine::new();
        let q = parse_query(&format!(
            "select a from T where {p1} union all select b from T where {p2}"
        ))
        .unwrap();
        let (rs, _stats, profile) =
            e.execute_profiled(&db, &q, &QueryGuard::unlimited()).unwrap();
        prop_assert_eq!(profile.node_count(), 2);
        prop_assert_eq!(
            profile.node(0).rows_out() + profile.node(1).rows_out(),
            rs.rows.len() as u64
        );
    }
}
