//! `EXPLAIN ANALYZE` and [`qp_exec::PlanProfile`] tests: profiled runs
//! report exact per-operator row counts for a fixed seeded database, and
//! the rendered tree carries rows / selectivity / estimate annotations.

use qp_exec::{Engine, QueryGuard};
use qp_sql::parse_query;
use qp_storage::{Attribute, DataType, Database, Value};

/// 60 movies across 3 genres; one cast row per movie for two actors.
fn db() -> Database {
    let mut db = Database::new();
    db.create_relation(
        "MOVIE",
        vec![
            Attribute::new("mid", DataType::Int),
            Attribute::new("title", DataType::Text),
            Attribute::new("year", DataType::Int),
        ],
        &["mid"],
    )
    .unwrap();
    db.create_relation(
        "GENRE",
        vec![Attribute::new("mid", DataType::Int), Attribute::new("genre", DataType::Text)],
        &["mid", "genre"],
    )
    .unwrap();
    db.create_relation(
        "CAST",
        vec![Attribute::new("mid", DataType::Int), Attribute::new("aid", DataType::Int)],
        &["mid", "aid"],
    )
    .unwrap();
    for i in 0..60i64 {
        db.insert_by_name(
            "MOVIE",
            vec![Value::Int(i), Value::str(format!("m{i}")), Value::Int(1980 + i % 30)],
        )
        .unwrap();
        let g = ["drama", "comedy", "noir"][(i % 3) as usize];
        db.insert_by_name("GENRE", vec![Value::Int(i), Value::str(g)]).unwrap();
        db.insert_by_name("CAST", vec![Value::Int(i), Value::Int(i % 2)]).unwrap();
    }
    db.warm_statistics();
    db
}

#[test]
fn explain_analyze_three_way_join_reports_per_operator_stats() {
    let db = db();
    let e = Engine::new();
    let q = parse_query(
        "select M.title from MOVIE M, GENRE G, CAST C \
         where M.mid = G.mid and M.mid = C.mid and G.genre = 'drama'",
    )
    .unwrap();
    let out = e.explain_analyze(&db, &q).unwrap();

    // 20 drama movies, each with exactly one cast row.
    assert!(out.starts_with("Output: 20 rows in "), "{out}");
    // The driving scan reports what it read and both selectivities.
    assert!(out.contains("Scan GENRE filtered (rows=20, scanned=60, sel=0.333"), "{out}");
    assert!(out.contains("est_sel=0.333"), "{out}");
    // Both index joins report probe counts and output rows.
    assert_eq!(out.matches("IndexJoin probe").count(), 2, "{out}");
    assert!(out.contains("(rows=20, probes=20"), "{out}");
    // Every annotated operator line ends with an elapsed time.
    for line in out.lines().filter(|l| l.contains("(rows=")) {
        assert!(
            line.ends_with("s)") || line.ends_with("µs)") || line.ends_with("ns)"),
            "no elapsed time on: {line}"
        );
    }
}

#[test]
fn profiled_run_counts_rows_exactly() {
    let db = db();
    let e = Engine::new();
    let q = parse_query("select title from MOVIE where year < 1990").unwrap();
    let (rs, stats, profile) =
        e.execute_profiled(&db, &q, &QueryGuard::unlimited()).unwrap();

    // year in 1980..2010, 30 distinct values repeated twice: 20 qualify.
    assert_eq!(rs.rows.len(), 20);
    assert_eq!(profile.result_rows(), 20);
    // Node 0 is the single scan; the pushed predicate filters in-scan.
    assert_eq!(profile.node_count(), 1);
    assert_eq!(profile.node(0).rows_out(), 20);
    assert_eq!(profile.node(0).rows_scanned(), 60);
    assert_eq!(profile.node(0).invocations(), 1);
    assert_eq!(stats.rows_scanned, 60);
}

#[test]
fn profiled_union_all_numbers_branches_consecutively() {
    let db = db();
    let e = Engine::new();
    let q = parse_query(
        "select title from MOVIE where year < 1985 \
         union all select title from MOVIE where year >= 2005",
    )
    .unwrap();
    let (rs, _stats, profile) =
        e.execute_profiled(&db, &q, &QueryGuard::unlimited()).unwrap();

    assert_eq!(profile.node_count(), 2, "one scan per branch");
    let b0 = profile.node(0).rows_out();
    let b1 = profile.node(1).rows_out();
    assert_eq!(b0 + b1, rs.rows.len() as u64, "branch outputs sum to the result");
    assert_eq!(b0, 10, "years 1980..1985, two movies each");
    assert_eq!(b1, 10, "years 2005..2010, two movies each");
}

#[test]
fn explain_analyze_observed_vs_estimated_divergence_is_visible() {
    // A predicate the histogram estimates well vs one where the observed
    // share comes from actual execution: both numbers must be printed so
    // a reader can compare them.
    let db = db();
    let e = Engine::new();
    let q = parse_query("select title from MOVIE where year = 1980").unwrap();
    let out = e.explain_analyze(&db, &q).unwrap();
    assert!(out.contains("sel="), "{out}");
    assert!(out.contains("est_sel="), "{out}");
    assert!(out.contains("rows=2"), "{out}");
}
