//! Property tests for the execution engine: random predicates and
//! aggregations are checked against a naive in-Rust reference evaluation
//! over the same data.

use proptest::prelude::*;
use qp_exec::Engine;
use qp_storage::{Attribute, DataType, Database, Value};

/// A small table of integers with some NULLs: T(a, b, c).
fn build_db(rows: &[(Option<i64>, i64, i64)]) -> Database {
    let mut db = Database::new();
    db.create_relation(
        "T",
        vec![
            Attribute::new("a", DataType::Int),
            Attribute::new("b", DataType::Int),
            Attribute::new("c", DataType::Int),
        ],
        &[],
    )
    .unwrap();
    for (a, b, c) in rows {
        db.insert_by_name(
            "T",
            vec![
                a.map(Value::Int).unwrap_or(Value::Null),
                Value::Int(*b),
                Value::Int(*c),
            ],
        )
        .unwrap();
    }
    db
}

#[derive(Debug, Clone)]
enum Pred {
    Cmp(&'static str, &'static str, i64), // col op lit
    Between(&'static str, i64, i64, bool),
    InList(&'static str, Vec<i64>, bool),
    IsNull(&'static str, bool),
    And(Box<Pred>, Box<Pred>),
    Or(Box<Pred>, Box<Pred>),
    Not(Box<Pred>),
}

impl Pred {
    fn to_sql(&self) -> String {
        match self {
            Pred::Cmp(c, op, v) => format!("{c} {op} {v}"),
            Pred::Between(c, lo, hi, neg) => {
                format!("{c} {}BETWEEN {lo} AND {hi}", if *neg { "NOT " } else { "" })
            }
            Pred::InList(c, vs, neg) => format!(
                "{c} {}IN ({})",
                if *neg { "NOT " } else { "" },
                vs.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", ")
            ),
            Pred::IsNull(c, neg) => {
                format!("{c} IS {}NULL", if *neg { "NOT " } else { "" })
            }
            Pred::And(l, r) => format!("({}) AND ({})", l.to_sql(), r.to_sql()),
            Pred::Or(l, r) => format!("({}) OR ({})", l.to_sql(), r.to_sql()),
            Pred::Not(p) => format!("NOT ({})", p.to_sql()),
        }
    }

    /// Three-valued reference evaluation.
    fn eval(&self, row: &(Option<i64>, i64, i64)) -> Option<bool> {
        let col = |c: &str| -> Option<i64> {
            match c {
                "a" => row.0,
                "b" => Some(row.1),
                _ => Some(row.2),
            }
        };
        match self {
            Pred::Cmp(c, op, v) => {
                let x = col(c)?;
                Some(match *op {
                    "=" => x == *v,
                    "<>" => x != *v,
                    "<" => x < *v,
                    "<=" => x <= *v,
                    ">" => x > *v,
                    _ => x >= *v,
                })
            }
            Pred::Between(c, lo, hi, neg) => {
                let x = col(c)?;
                let r = x >= *lo && x <= *hi;
                Some(r != *neg)
            }
            Pred::InList(c, vs, neg) => {
                let x = col(c)?;
                let r = vs.contains(&x);
                Some(r != *neg)
            }
            Pred::IsNull(c, neg) => Some((col(c).is_none()) != *neg),
            Pred::And(l, r) => match (l.eval(row), r.eval(row)) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            },
            Pred::Or(l, r) => match (l.eval(row), r.eval(row)) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            },
            Pred::Not(p) => p.eval(row).map(|b| !b),
        }
    }
}

fn arb_col() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("a"), Just("b"), Just("c")]
}

fn arb_pred() -> impl Strategy<Value = Pred> {
    let leaf = prop_oneof![
        (arb_col(), prop_oneof![Just("="), Just("<>"), Just("<"), Just("<="), Just(">"), Just(">=")], -10i64..10)
            .prop_map(|(c, op, v)| Pred::Cmp(c, op, v)),
        (arb_col(), -10i64..10, 0i64..10, any::<bool>())
            .prop_map(|(c, lo, w, neg)| Pred::Between(c, lo, lo + w, neg)),
        (arb_col(), prop::collection::vec(-10i64..10, 1..4), any::<bool>())
            .prop_map(|(c, vs, neg)| Pred::InList(c, vs, neg)),
        (arb_col(), any::<bool>()).prop_map(|(c, neg)| Pred::IsNull(c, neg)),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| Pred::And(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| Pred::Or(Box::new(l), Box::new(r))),
            inner.prop_map(|p| Pred::Not(Box::new(p))),
        ]
    })
}

fn arb_rows() -> impl Strategy<Value = Vec<(Option<i64>, i64, i64)>> {
    prop::collection::vec(
        (proptest::option::weighted(0.85, -10i64..10), -10i64..10, -10i64..10),
        0..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn filters_match_reference(rows in arb_rows(), pred in arb_pred()) {
        let db = build_db(&rows);
        let engine = Engine::new();
        let sql = format!("select b from T where {}", pred.to_sql());
        let rs = engine.execute_sql(&db, &sql)
            .unwrap_or_else(|e| panic!("{sql}: {e}"));
        let mut got: Vec<i64> = rs.rows.iter().filter_map(|r| r[0].as_i64()).collect();
        let mut expect: Vec<i64> = rows
            .iter()
            .filter(|r| pred.eval(r) == Some(true))
            .map(|r| r.1)
            .collect();
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect, "sql: {}", sql);
    }

    #[test]
    fn aggregates_match_reference(rows in arb_rows()) {
        let db = build_db(&rows);
        let engine = Engine::new();
        let rs = engine
            .execute_sql(&db, "select count(*), count(a), sum(b), min(c), max(c) from T")
            .unwrap();
        let row = &rs.rows[0];
        prop_assert_eq!(row[0].as_i64().unwrap(), rows.len() as i64);
        prop_assert_eq!(row[1].as_i64().unwrap(), rows.iter().filter(|r| r.0.is_some()).count() as i64);
        if rows.is_empty() {
            prop_assert!(row[2].is_null());
            prop_assert!(row[3].is_null());
        } else {
            prop_assert_eq!(row[2].as_i64().unwrap(), rows.iter().map(|r| r.1).sum::<i64>());
            prop_assert_eq!(row[3].as_i64().unwrap(), rows.iter().map(|r| r.2).min().unwrap());
            prop_assert_eq!(row[4].as_i64().unwrap(), rows.iter().map(|r| r.2).max().unwrap());
        }
    }

    #[test]
    fn group_by_matches_reference(rows in arb_rows()) {
        let db = build_db(&rows);
        let engine = Engine::new();
        let rs = engine
            .execute_sql(&db, "select b, count(*) from T group by b order by b")
            .unwrap();
        let mut expect: std::collections::BTreeMap<i64, i64> = Default::default();
        for r in &rows {
            *expect.entry(r.1).or_insert(0) += 1;
        }
        let got: Vec<(i64, i64)> = rs
            .rows
            .iter()
            .map(|r| (r[0].as_i64().unwrap(), r[1].as_i64().unwrap()))
            .collect();
        let expect: Vec<(i64, i64)> = expect.into_iter().collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn order_by_sorts(rows in arb_rows()) {
        let db = build_db(&rows);
        let engine = Engine::new();
        let rs = engine.execute_sql(&db, "select b from T order by b desc").unwrap();
        let got: Vec<i64> = rs.rows.iter().filter_map(|r| r[0].as_i64()).collect();
        let mut expect: Vec<i64> = rows.iter().map(|r| r.1).collect();
        expect.sort_unstable_by(|a, b| b.cmp(a));
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn distinct_and_limit(rows in arb_rows(), n in 0u64..20) {
        let db = build_db(&rows);
        let engine = Engine::new();
        let rs = engine
            .execute_sql(&db, &format!("select distinct b from T order by b limit {n}"))
            .unwrap();
        let mut expect: Vec<i64> = rows.iter().map(|r| r.1).collect();
        expect.sort_unstable();
        expect.dedup();
        expect.truncate(n as usize);
        let got: Vec<i64> = rs.rows.iter().filter_map(|r| r[0].as_i64()).collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn tombstoned_rows_invisible_row_and_batch(
        rows in arb_rows(),
        pred in arb_pred(),
        dead_mask in prop::collection::vec(any::<bool>(), 0..60),
    ) {
        let mut db = build_db(&rows);
        let rel = db.catalog().relation_by_name("T").unwrap().id;
        let mut live: Vec<(Option<i64>, i64, i64)> = Vec::new();
        for (i, r) in rows.iter().enumerate() {
            if dead_mask.get(i).copied().unwrap_or(false) {
                let tuple = vec![
                    r.0.map(Value::Int).unwrap_or(Value::Null),
                    Value::Int(r.1),
                    Value::Int(r.2),
                ];
                db.delete(rel, &tuple).unwrap();
            }
        }
        // `delete` is value-addressed: with duplicate tuples it may
        // tombstone a different slot than `i`, so recompute the live
        // multiset from the table itself.
        for (_, row) in db.table(rel).iter() {
            live.push((row[0].as_i64(), row[1].as_i64().unwrap(), row[2].as_i64().unwrap()));
        }
        let sql = format!("select b from T where {}", pred.to_sql());
        let mut batch_engine = Engine::new();
        batch_engine.set_row_engine(false);
        let mut row_engine = Engine::new();
        row_engine.set_row_engine(true);
        let batch = batch_engine.execute_sql(&db, &sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        let row = row_engine.execute_sql(&db, &sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        let got_batch: Vec<i64> = batch.rows.iter().filter_map(|r| r[0].as_i64()).collect();
        let got_row: Vec<i64> = row.rows.iter().filter_map(|r| r[0].as_i64()).collect();
        prop_assert_eq!(&got_batch, &got_row, "row/batch parity under tombstones: {}", sql);
        let mut got = got_batch;
        let mut expect: Vec<i64> = live
            .iter()
            .filter(|r| pred.eval(r) == Some(true))
            .map(|r| r.1)
            .collect();
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect, "sql: {}", sql);
    }

    #[test]
    fn not_in_subquery_matches_reference(
        rows in arb_rows(),
        threshold in -10i64..10,
    ) {
        let db = build_db(&rows);
        let engine = Engine::new();
        let sql = format!(
            "select b from T where b not in (select b from T where c > {threshold})"
        );
        let rs = engine.execute_sql(&db, &sql).unwrap();
        let excluded: std::collections::HashSet<i64> =
            rows.iter().filter(|r| r.2 > threshold).map(|r| r.1).collect();
        let mut expect: Vec<i64> =
            rows.iter().map(|r| r.1).filter(|b| !excluded.contains(b)).collect();
        let mut got: Vec<i64> = rs.rows.iter().filter_map(|r| r[0].as_i64()).collect();
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }
}
