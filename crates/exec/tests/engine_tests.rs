//! End-to-end tests for the execution engine on a small movies database
//! shaped like the paper's schema (§3).

use qp_exec::{AggState, Engine};
use qp_storage::{Attribute, DataType, Database, Value};

/// Builds the paper's schema with a small, fully known data set.
fn movies_db() -> Database {
    let mut db = Database::new();
    db.create_relation(
        "MOVIE",
        vec![
            Attribute::new("mid", DataType::Int),
            Attribute::new("title", DataType::Text),
            Attribute::new("year", DataType::Int),
            Attribute::new("duration", DataType::Int),
        ],
        &["mid"],
    )
    .unwrap();
    db.create_relation(
        "GENRE",
        vec![Attribute::new("mid", DataType::Int), Attribute::new("genre", DataType::Text)],
        &["mid", "genre"],
    )
    .unwrap();
    db.create_relation(
        "DIRECTED",
        vec![Attribute::new("mid", DataType::Int), Attribute::new("did", DataType::Int)],
        &["mid", "did"],
    )
    .unwrap();
    db.create_relation(
        "DIRECTOR",
        vec![Attribute::new("did", DataType::Int), Attribute::new("name", DataType::Text)],
        &["did"],
    )
    .unwrap();
    db.create_relation(
        "THEATRE",
        vec![
            Attribute::new("tid", DataType::Int),
            Attribute::new("name", DataType::Text),
            Attribute::new("region", DataType::Text),
            Attribute::new("ticket", DataType::Float),
        ],
        &["tid"],
    )
    .unwrap();
    db.create_relation(
        "PLAY",
        vec![Attribute::new("tid", DataType::Int), Attribute::new("mid", DataType::Int)],
        &["tid", "mid"],
    )
    .unwrap();

    // movies: (mid, title, year, duration)
    let movies = [
        (1, "Annie Hall", 1977, 93),
        (2, "Manhattan", 1979, 96),
        (3, "Zelig", 1983, 79),
        (4, "Heat", 1995, 170),
        (5, "Chicago", 2002, 113),
        (6, "Cabaret", 1972, 124),
    ];
    for (mid, title, year, dur) in movies {
        db.insert_by_name(
            "MOVIE",
            vec![Value::Int(mid), Value::str(title), Value::Int(year), Value::Int(dur)],
        )
        .unwrap();
    }
    // genres
    let genres = [
        (1, "comedy"),
        (2, "comedy"),
        (2, "drama"),
        (3, "comedy"),
        (4, "thriller"),
        (5, "musical"),
        (5, "comedy"),
        (6, "musical"),
    ];
    for (mid, g) in genres {
        db.insert_by_name("GENRE", vec![Value::Int(mid), Value::str(g)]).unwrap();
    }
    // directors
    for (did, name) in [(1, "W. Allen"), (2, "M. Mann"), (3, "R. Marshall"), (4, "B. Fosse")] {
        db.insert_by_name("DIRECTOR", vec![Value::Int(did), Value::str(name)]).unwrap();
    }
    for (mid, did) in [(1, 1), (2, 1), (3, 1), (4, 2), (5, 3), (6, 4)] {
        db.insert_by_name("DIRECTED", vec![Value::Int(mid), Value::Int(did)]).unwrap();
    }
    // theatres
    for (tid, name, region, ticket) in [
        (1, "Odeon", "downtown", 6.0),
        (2, "Rex", "suburbs", 5.0),
        (3, "Lux", "downtown", 8.0),
    ] {
        db.insert_by_name(
            "THEATRE",
            vec![Value::Int(tid), Value::str(name), Value::str(region), Value::Float(ticket)],
        )
        .unwrap();
    }
    for (tid, mid) in [(1, 1), (1, 4), (2, 5), (3, 2), (3, 6)] {
        db.insert_by_name("PLAY", vec![Value::Int(tid), Value::Int(mid)]).unwrap();
    }
    db
}

fn titles(rs: &qp_exec::ResultSet) -> Vec<String> {
    let i = rs.column_index("title").expect("title column");
    rs.rows.iter().map(|r| r[i].to_string()).collect()
}

#[test]
fn simple_scan() {
    let db = movies_db();
    let e = Engine::new();
    let rs = e.execute_sql(&db, "select title from MOVIE").unwrap();
    assert_eq!(rs.len(), 6);
    assert_eq!(rs.columns, vec!["title"]);
}

#[test]
fn filter_pushdown() {
    let db = movies_db();
    let e = Engine::new();
    let rs = e.execute_sql(&db, "select title from MOVIE where year < 1980").unwrap();
    let mut t = titles(&rs);
    t.sort();
    assert_eq!(t, vec!["Annie Hall", "Cabaret", "Manhattan"]);
}

#[test]
fn three_way_join_paper_q1() {
    let db = movies_db();
    let e = Engine::new();
    let rs = e
        .execute_sql(
            &db,
            "select title, 0.72 degree from MOVIE M, DIRECTED D, DIRECTOR DI \
             where M.mid=D.mid and D.did=DI.did and DI.name='W. Allen'",
        )
        .unwrap();
    let mut t = titles(&rs);
    t.sort();
    assert_eq!(t, vec!["Annie Hall", "Manhattan", "Zelig"]);
    assert_eq!(rs.rows[0][1], Value::Float(0.72));
}

#[test]
fn join_order_independent_of_from_order() {
    let db = movies_db();
    let e = Engine::new();
    for sql in [
        "select M.title from MOVIE M, GENRE G where M.mid=G.mid and G.genre='musical'",
        "select M.title from GENRE G, MOVIE M where G.genre='musical' and G.mid=M.mid",
    ] {
        let rs = e.execute_sql(&db, sql).unwrap();
        let mut t: Vec<String> = rs.rows.iter().map(|r| r[0].to_string()).collect();
        t.sort();
        assert_eq!(t, vec!["Cabaret", "Chicago"], "{sql}");
    }
}

#[test]
fn not_in_subquery_paper_q3() {
    let db = movies_db();
    let e = Engine::new();
    let rs = e
        .execute_sql(
            &db,
            "select title, 0.7 degree from MOVIE M \
             where M.mid not in (select M2.mid from MOVIE M2, GENRE G \
             where M2.mid=G.mid and G.genre='musical')",
        )
        .unwrap();
    let mut t = titles(&rs);
    t.sort();
    assert_eq!(t, vec!["Annie Hall", "Heat", "Manhattan", "Zelig"]);
}

#[test]
fn union_all_group_by_having_paper_example6() {
    let db = movies_db();
    let e = Engine::new();
    // Two sub-queries; "Annie Hall" (comedy by W. Allen) satisfies both.
    let rs = e
        .execute_sql(
            &db,
            "select title, sum(degree) total from ( \
               select title, 0.72 degree from MOVIE M, DIRECTED D, DIRECTOR DI \
                 where M.mid=D.mid and D.did=DI.did and DI.name='W. Allen' \
               union all \
               select title, 0.5 degree from MOVIE M, GENRE G \
                 where M.mid=G.mid and G.genre='comedy') u \
             group by title having count(*) >= 2 order by total desc",
        )
        .unwrap();
    let t = titles(&rs);
    assert_eq!(t, vec!["Annie Hall", "Manhattan", "Zelig"]);
    assert_eq!(rs.rows[0][1], Value::Float(1.22));
}

#[test]
fn rowid_pseudo_column_fetch() {
    let db = movies_db();
    let e = Engine::new();
    let (rs, stats) = e
        .execute_with_stats(
            &db,
            &qp_sql::parse_query("select M.rowid, title from MOVIE M where M.rowid = 3").unwrap(),
        )
        .unwrap();
    assert_eq!(rs.len(), 1);
    assert_eq!(rs.rows[0][0], Value::Int(3));
    assert_eq!(rs.rows[0][1], Value::str("Heat"));
    // O(1) fetch: exactly one row scanned.
    assert_eq!(stats.rows_scanned, 1);
}

#[test]
fn rowid_join_probe() {
    let db = movies_db();
    let e = Engine::new();
    // PPA-style parameterized query: from a movie rowid, find genres.
    let rs = e
        .execute_sql(
            &db,
            "select G.genre from MOVIE M, GENRE G where M.rowid = 4 and M.mid = G.mid",
        )
        .unwrap();
    let mut g: Vec<String> = rs.rows.iter().map(|r| r[0].to_string()).collect();
    g.sort();
    assert_eq!(g, vec!["comedy", "musical"]);
}

#[test]
fn order_by_and_limit() {
    let db = movies_db();
    let e = Engine::new();
    let rs = e
        .execute_sql(&db, "select title, year from MOVIE order by year desc limit 2")
        .unwrap();
    assert_eq!(titles(&rs), vec!["Chicago", "Heat"]);
}

#[test]
fn order_by_positional_and_alias() {
    let db = movies_db();
    let e = Engine::new();
    let rs = e.execute_sql(&db, "select title t, year y from MOVIE order by 2, t").unwrap();
    assert_eq!(rs.rows[0][0], Value::str("Cabaret"));
    let rs = e.execute_sql(&db, "select title t from MOVIE order by t").unwrap();
    assert_eq!(rs.rows[0][0], Value::str("Annie Hall"));
}

#[test]
fn order_by_source_expression_not_projected() {
    let db = movies_db();
    let e = Engine::new();
    let rs = e.execute_sql(&db, "select title from MOVIE order by duration").unwrap();
    assert_eq!(titles(&rs)[0], "Zelig"); // 79 minutes
}

#[test]
fn distinct() {
    let db = movies_db();
    let e = Engine::new();
    let rs = e.execute_sql(&db, "select distinct genre from GENRE order by genre").unwrap();
    let g: Vec<String> = rs.rows.iter().map(|r| r[0].to_string()).collect();
    assert_eq!(g, vec!["comedy", "drama", "musical", "thriller"]);
}

#[test]
fn aggregates_without_group() {
    let db = movies_db();
    let e = Engine::new();
    let rs = e
        .execute_sql(&db, "select count(*), min(year), max(year), avg(duration) from MOVIE")
        .unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(6));
    assert_eq!(rs.rows[0][1], Value::Int(1972));
    assert_eq!(rs.rows[0][2], Value::Int(2002));
    let avg = rs.rows[0][3].as_f64().unwrap();
    assert!((avg - (93.0 + 96.0 + 79.0 + 170.0 + 113.0 + 124.0) / 6.0).abs() < 1e-9);
}

#[test]
fn scalar_aggregate_on_empty_input() {
    let db = movies_db();
    let e = Engine::new();
    let rs = e.execute_sql(&db, "select count(*) from MOVIE where year > 3000").unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(0));
}

#[test]
fn group_by_with_counts() {
    let db = movies_db();
    let e = Engine::new();
    let rs = e
        .execute_sql(&db, "select genre, count(*) n from GENRE group by genre order by n desc, genre")
        .unwrap();
    assert_eq!(rs.rows[0][0], Value::str("comedy"));
    assert_eq!(rs.rows[0][1], Value::Int(4));
    assert_eq!(rs.len(), 4);
}

#[test]
fn having_filters_groups() {
    let db = movies_db();
    let e = Engine::new();
    let rs = e
        .execute_sql(
            &db,
            "select genre from GENRE group by genre having count(*) >= 2 order by genre",
        )
        .unwrap();
    let g: Vec<String> = rs.rows.iter().map(|r| r[0].to_string()).collect();
    assert_eq!(g, vec!["comedy", "musical"]);
}

#[test]
fn between_and_in_list() {
    let db = movies_db();
    let e = Engine::new();
    let rs = e
        .execute_sql(&db, "select title from MOVIE where year between 1977 and 1983")
        .unwrap();
    assert_eq!(rs.len(), 3);
    let rs = e
        .execute_sql(&db, "select title from MOVIE where year in (1977, 2002)")
        .unwrap();
    assert_eq!(rs.len(), 2);
}

#[test]
fn scalar_udf() {
    let db = movies_db();
    let mut e = Engine::new();
    e.registry_mut().register_scalar("double", |args: &[Value]| {
        args.first().and_then(Value::as_f64).map(|x| Value::Float(x * 2.0)).unwrap_or(Value::Null)
    });
    let rs = e
        .execute_sql(&db, "select double(ticket) from THEATRE where tid = 1")
        .unwrap();
    assert_eq!(rs.rows[0][0], Value::Float(12.0));
}

#[test]
fn aggregate_udf_like_spa_ranking() {
    // SPA registers a ranking function as a user-defined aggregate:
    // r(degree) = 1 - prod(1 - d_i)  (the inflationary function).
    let db = movies_db();
    let mut e = Engine::new();
    struct Inflationary(f64);
    impl AggState for Inflationary {
        fn update(&mut self, args: &[Value]) {
            if let Some(d) = args.first().and_then(Value::as_f64) {
                self.0 *= 1.0 - d;
            }
        }
        fn finish(&mut self) -> Value {
            Value::Float(1.0 - self.0)
        }
    }
    e.registry_mut().register_aggregate("r", || Box::new(Inflationary(1.0)));
    let rs = e
        .execute_sql(
            &db,
            "select title, r(degree) score from ( \
               select title, 0.72 degree from MOVIE M, DIRECTED D, DIRECTOR DI \
                 where M.mid=D.mid and D.did=DI.did and DI.name='W. Allen' \
               union all \
               select title, 0.5 degree from MOVIE M, GENRE G \
                 where M.mid=G.mid and G.genre='comedy') u \
             group by title having count(*) >= 2 order by r(degree) desc",
        )
        .unwrap();
    assert_eq!(titles(&rs), vec!["Annie Hall", "Manhattan", "Zelig"]);
    let top = rs.rows[0][1].as_f64().unwrap();
    assert!((top - (1.0 - (1.0 - 0.72) * (1.0 - 0.5))).abs() < 1e-9);
}

#[test]
fn union_arity_mismatch_rejected() {
    let db = movies_db();
    let e = Engine::new();
    let err = e.execute_sql(&db, "select mid, title from MOVIE union all select mid from MOVIE");
    assert!(matches!(err, Err(qp_exec::ExecError::UnionArityMismatch { .. })));
}

#[test]
fn unknown_column_and_binding() {
    let db = movies_db();
    let e = Engine::new();
    assert!(matches!(
        e.execute_sql(&db, "select nosuch from MOVIE"),
        Err(qp_exec::ExecError::UnknownColumn(_))
    ));
    assert!(matches!(
        e.execute_sql(&db, "select X.title from MOVIE M"),
        Err(qp_exec::ExecError::UnknownBinding(_))
    ));
}

#[test]
fn ambiguous_column_rejected() {
    let db = movies_db();
    let e = Engine::new();
    let err = e.execute_sql(&db, "select mid from MOVIE M, GENRE G where M.mid = G.mid");
    assert!(matches!(err, Err(qp_exec::ExecError::AmbiguousColumn(_))));
}

#[test]
fn duplicate_binding_rejected() {
    let db = movies_db();
    let e = Engine::new();
    let err = e.execute_sql(&db, "select M.title from MOVIE M, GENRE M");
    assert!(matches!(err, Err(qp_exec::ExecError::DuplicateBinding(_))));
}

#[test]
fn not_grouped_column_rejected() {
    let db = movies_db();
    let e = Engine::new();
    let err = e.execute_sql(&db, "select title, count(*) from MOVIE group by year");
    assert!(matches!(err, Err(qp_exec::ExecError::NotGrouped(_))));
}

#[test]
fn correlated_subquery_rejected() {
    let db = movies_db();
    let e = Engine::new();
    let err = e.execute_sql(
        &db,
        "select title from MOVIE M where M.mid in (select G.mid from GENRE G where G.mid = M.mid)",
    );
    assert!(matches!(err, Err(qp_exec::ExecError::CorrelatedSubquery(_))));
}

#[test]
fn from_less_select() {
    let db = movies_db();
    let e = Engine::new();
    let rs = e.execute_sql(&db, "select 1 + 2 * 3").unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(7));
}

#[test]
fn cross_join_without_predicate() {
    let db = movies_db();
    let e = Engine::new();
    let rs = e.execute_sql(&db, "select T.name, D.name from THEATRE T, DIRECTOR D").unwrap();
    assert_eq!(rs.len(), 3 * 4);
}

#[test]
fn five_way_join_movie_to_theatre() {
    let db = movies_db();
    let e = Engine::new();
    // theatres showing a W. Allen film
    let rs = e
        .execute_sql(
            &db,
            "select distinct T.name from THEATRE T, PLAY P, MOVIE M, DIRECTED D, DIRECTOR DI \
             where T.tid=P.tid and P.mid=M.mid and M.mid=D.mid and D.did=DI.did \
             and DI.name='W. Allen' order by T.name",
        )
        .unwrap();
    let names: Vec<String> = rs.rows.iter().map(|r| r[0].to_string()).collect();
    assert_eq!(names, vec!["Lux", "Odeon"]);
}

#[test]
fn in_subquery_positive() {
    let db = movies_db();
    let e = Engine::new();
    let rs = e
        .execute_sql(
            &db,
            "select title from MOVIE where mid in (select mid from GENRE where genre='comedy') \
             order by title",
        )
        .unwrap();
    assert_eq!(titles(&rs), vec!["Annie Hall", "Chicago", "Manhattan", "Zelig"]);
}

#[test]
fn null_semantics_in_filters() {
    let mut db = movies_db();
    db.insert_by_name("MOVIE", vec![Value::Int(7), Value::str("Unknown"), Value::Null, Value::Null])
        .unwrap();
    let e = Engine::new();
    // NULL year: excluded from both year < 1980 and year >= 1980
    let lt = e.execute_sql(&db, "select title from MOVIE where year < 1980").unwrap();
    let ge = e.execute_sql(&db, "select title from MOVIE where year >= 1980").unwrap();
    assert_eq!(lt.len() + ge.len(), 6);
    // but visible to IS NULL
    let n = e.execute_sql(&db, "select title from MOVIE where year is null").unwrap();
    assert_eq!(n.len(), 1);
}

#[test]
fn prepared_queries_reusable() {
    let db = movies_db();
    let e = Engine::new();
    let q = qp_sql::parse_query("select title from MOVIE where year < 1980").unwrap();
    let prepared = e.prepare(&db, &q).unwrap();
    let mut stats = qp_exec::ExecStats::default();
    let r1 = e.execute_prepared(&db, &prepared, &mut stats).unwrap();
    let r2 = e.execute_prepared(&db, &prepared, &mut stats).unwrap();
    assert_eq!(r1, r2);
    assert_eq!(r1.len(), 3);
}

#[test]
fn stats_reflect_index_probes() {
    let db = movies_db();
    db.warm_statistics();
    let e = Engine::new();
    let (_, stats) = e
        .execute_with_stats(
            &db,
            &qp_sql::parse_query(
                "select M.title from MOVIE M, GENRE G where M.mid=G.mid and G.genre='drama'",
            )
            .unwrap(),
        )
        .unwrap();
    assert!(stats.index_probes > 0, "expected index nested-loop join, stats: {stats:?}");
}
