//! Property tests for [`qp_exec::QueryGuard`]: a budgeted execution
//! either produces exactly the unbudgeted result, or fails with the
//! matching `ResourceExhausted` error — never a different answer.

use proptest::prelude::*;
use qp_exec::{Engine, ExecError, ExecStats, QueryGuard, ResourceKind};
use qp_sql::parse_query;
use qp_storage::{Attribute, DataType, Database, Row, Value};

fn build_db(rows: &[(i64, i64)]) -> Database {
    let mut db = Database::new();
    db.create_relation(
        "T",
        vec![Attribute::new("a", DataType::Int), Attribute::new("b", DataType::Int)],
        &[],
    )
    .unwrap();
    for (a, b) in rows {
        db.insert_by_name("T", vec![Value::Int(*a), Value::Int(*b)]).unwrap();
    }
    db
}

fn arb_rows() -> impl Strategy<Value = Vec<(i64, i64)>> {
    proptest::collection::vec((0i64..50, 0i64..8), 0..40)
}

/// Queries whose work scales differently: scan, filtered scan, join,
/// aggregation — exercising all charge sites.
fn arb_sql() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("select a, b from T"),
        Just("select a from T where b < 4"),
        Just("select A.a, B.b from T A, T B where A.b = B.b"),
        Just("select b, count(*) from T group by b"),
        Just("select a from T order by a desc"),
    ]
}

fn run(db: &Database, sql: &str, guard: &QueryGuard) -> Result<(Vec<Row>, ExecStats), ExecError> {
    let engine = Engine::new();
    let query = parse_query(sql).unwrap();
    engine.execute_with_guard(db, &query, guard).map(|(rs, stats)| (rs.rows, stats))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn budgeted_run_is_exact_or_typed_trip(
        rows in arb_rows(),
        sql in arb_sql(),
        out_budget in 0u64..80,
        inter_budget in 1u64..400,
    ) {
        let db = build_db(&rows);
        let (full, full_stats) = run(&db, sql, &QueryGuard::unlimited()).unwrap();
        let guard = QueryGuard::builder()
            .max_output_rows(out_budget)
            .max_intermediate_rows(inter_budget)
            .build();
        match run(&db, sql, &guard) {
            Ok((rows, stats)) => {
                // fits in budget: identical rows, identical work
                prop_assert_eq!(&rows, &full);
                prop_assert!(rows.len() as u64 <= out_budget);
                prop_assert_eq!(stats.rows_intermediate, full_stats.rows_intermediate);
                prop_assert!(stats.rows_intermediate <= inter_budget);
            }
            Err(ExecError::ResourceExhausted { resource: ResourceKind::OutputRows, limit }) => {
                prop_assert_eq!(limit, out_budget);
                prop_assert!(full.len() as u64 > out_budget,
                    "tripped output budget but the full result has only {} rows", full.len());
            }
            Err(ExecError::ResourceExhausted {
                resource: ResourceKind::IntermediateRows,
                limit,
            }) => {
                prop_assert_eq!(limit, inter_budget);
                prop_assert!(full_stats.rows_intermediate > inter_budget,
                    "tripped intermediate budget but the full run materialized only {} rows",
                    full_stats.rows_intermediate);
            }
            Err(other) => prop_assert!(false, "unexpected error: {other:?}"),
        }
    }

    #[test]
    fn unlimited_guard_is_identity(rows in arb_rows(), sql in arb_sql()) {
        let db = build_db(&rows);
        let engine = Engine::new();
        let query = parse_query(sql).unwrap();
        let plain = engine.execute(&db, &query).unwrap();
        let (guarded, _) = engine.execute_with_guard(&db, &query, &QueryGuard::unlimited()).unwrap();
        prop_assert_eq!(plain.rows, guarded.rows);
    }
}
