//! Integration tests for [`qp_exec::QueryGuard`]: budgets, deadlines,
//! cancellation, and (feature-gated) injected faults observed through the
//! public engine API.

use std::time::Duration;

use qp_exec::{CancelToken, Engine, ExecError, QueryGuard, ResourceKind};
use qp_sql::parse_query;
use qp_storage::{Attribute, DataType, Database, Value};

/// A single table with `n` rows: T(id, grp).
fn table_db(n: i64) -> Database {
    let mut db = Database::new();
    db.create_relation(
        "T",
        vec![Attribute::new("id", DataType::Int), Attribute::new("grp", DataType::Int)],
        &["id"],
    )
    .unwrap();
    for i in 0..n {
        db.insert_by_name("T", vec![Value::Int(i), Value::Int(i % 3)]).unwrap();
    }
    db
}

fn run(db: &Database, sql: &str, guard: &QueryGuard) -> Result<usize, ExecError> {
    let engine = Engine::new();
    let query = parse_query(sql).unwrap();
    engine.execute_with_guard(db, &query, guard).map(|(rs, _)| rs.len())
}

#[test]
fn output_budget_trips_on_excess_rows() {
    let db = table_db(10);
    let guard = QueryGuard::builder().max_output_rows(3).build();
    let err = run(&db, "select id from T", &guard).unwrap_err();
    assert_eq!(
        err,
        ExecError::ResourceExhausted { resource: ResourceKind::OutputRows, limit: 3 }
    );
}

#[test]
fn output_budget_admits_exact_fit() {
    let db = table_db(10);
    let guard = QueryGuard::builder().max_output_rows(10).build();
    assert_eq!(run(&db, "select id from T", &guard).unwrap(), 10);
}

#[test]
fn intermediate_budget_bounds_cross_product() {
    let db = table_db(20);
    // 20×20 cross product materializes 400 join rows (plus scan outputs);
    // a 50-row intermediate budget must stop it.
    let guard = QueryGuard::builder().max_intermediate_rows(50).build();
    let err = run(&db, "select A.id, B.id from T A, T B", &guard).unwrap_err();
    assert_eq!(
        err,
        ExecError::ResourceExhausted { resource: ResourceKind::IntermediateRows, limit: 50 }
    );
}

#[test]
fn intermediate_overshoot_bounded_by_one_batch() {
    // The vectorized engine charges the intermediate budget once per batch
    // flush rather than per row, so a tripped guard may have admitted the
    // rows of the batch that crossed the line — but never more. Pin the
    // worst-case overshoot to one batch capacity so a future regression
    // to coarser charging (per operator, per query) fails loudly.
    let db = table_db(200);
    let budget = 50u64;
    let guard = QueryGuard::builder().max_intermediate_rows(budget).build();
    // 200×200 cross product: 40 000 join rows dwarf the 50-row budget.
    let err = run(&db, "select A.id, B.id from T A, T B", &guard).unwrap_err();
    assert_eq!(
        err,
        ExecError::ResourceExhausted { resource: ResourceKind::IntermediateRows, limit: budget }
    );
    let spent = guard.intermediate_rows();
    assert!(
        spent <= budget + qp_exec::BATCH_CAPACITY as u64,
        "guard admitted {spent} intermediate rows against a budget of {budget}: \
         overshoot exceeds one batch ({})",
        qp_exec::BATCH_CAPACITY
    );
}

#[test]
fn cancellation_stops_nested_loop_mid_batch() {
    let db = table_db(30);
    let token = CancelToken::new();
    token.cancel();
    let guard = QueryGuard::builder().cancel_token(token).build();
    // The guard is polled per joined pair, so a pre-flipped token stops
    // the 900-pair cross loop without finishing even one batch.
    let err = run(&db, "select A.id, B.id from T A, T B", &guard).unwrap_err();
    assert_eq!(err, ExecError::Cancelled);
}

#[test]
fn expired_deadline_trips() {
    let db = table_db(200);
    let guard = QueryGuard::builder().deadline(Duration::ZERO).build();
    let err = run(&db, "select A.id, B.id from T A, T B", &guard).unwrap_err();
    match err {
        ExecError::ResourceExhausted { resource: ResourceKind::Deadline, .. } => {}
        other => panic!("expected a deadline trip, got {other:?}"),
    }
}

#[test]
fn unlimited_guard_changes_nothing() {
    let db = table_db(10);
    assert_eq!(run(&db, "select A.id, B.id from T A, T B", &QueryGuard::unlimited()).unwrap(), 100);
}

#[test]
fn budgets_are_shared_across_clones() {
    let db = table_db(4);
    let guard = QueryGuard::builder().max_output_rows(6).build();
    let clone = guard.clone();
    assert_eq!(run(&db, "select id from T", &guard).unwrap(), 4);
    // the clone draws from the same pool: only 2 of the budgeted 6 remain
    let err = run(&db, "select id from T", &clone).unwrap_err();
    assert_eq!(
        err,
        ExecError::ResourceExhausted { resource: ResourceKind::OutputRows, limit: 6 }
    );
}

#[test]
fn fresh_attempt_restores_row_budgets() {
    let db = table_db(4);
    let guard = QueryGuard::builder().max_output_rows(4).build();
    assert_eq!(run(&db, "select id from T", &guard).unwrap(), 4);
    assert!(run(&db, "select id from T", &guard).is_err());
    assert_eq!(run(&db, "select id from T", &guard.fresh_attempt()).unwrap(), 4);
}

#[cfg(feature = "failpoints")]
mod failpoints {
    use super::*;
    use qp_exec::failpoint::{self, FailAction, FailScenario};

    #[test]
    fn armed_scan_surfaces_as_typed_fault() {
        let _s = FailScenario::setup();
        let db = table_db(5);
        failpoint::arm("exec.scan", FailAction::Error("scan died".into()));
        let err = run(&db, "select id from T", &QueryGuard::unlimited()).unwrap_err();
        assert_eq!(err, ExecError::Fault("scan died".to_string()));
    }

    #[test]
    fn armed_join_build_side_fails_joins_only() {
        let _s = FailScenario::setup();
        let db = table_db(5);
        failpoint::arm("exec.nested_loop", FailAction::Error("loop died".into()));
        // the cross join passes the armed site...
        let err =
            run(&db, "select A.id, B.id from T A, T B", &QueryGuard::unlimited()).unwrap_err();
        assert_eq!(err, ExecError::Fault("loop died".to_string()));
        // ...a plain scan does not
        assert_eq!(run(&db, "select id from T", &QueryGuard::unlimited()).unwrap(), 5);
    }

    #[test]
    fn error_after_lets_early_passes_through() {
        let _s = FailScenario::setup();
        let db = table_db(3);
        failpoint::arm("exec.scan", FailAction::ErrorAfter { skip: 2, message: "third".into() });
        assert!(run(&db, "select id from T", &QueryGuard::unlimited()).is_ok());
        assert!(run(&db, "select id from T", &QueryGuard::unlimited()).is_ok());
        let err = run(&db, "select id from T", &QueryGuard::unlimited()).unwrap_err();
        assert_eq!(err, ExecError::Fault("third".to_string()));
    }

    #[test]
    fn storage_insert_site_maps_to_storage_error() {
        let _s = FailScenario::setup();
        let mut db = table_db(1);
        failpoint::arm("storage.insert", FailAction::Error("disk full".into()));
        let err = db.insert_by_name("T", vec![Value::Int(99), Value::Int(0)]).unwrap_err();
        assert!(err.to_string().contains("disk full"), "{err}");
    }
}
