//! Scheduler-determinism tests for the morsel-driven pool: parallel
//! execution must be byte-identical to serial under *steal-heavy*
//! schedules — forced here both by caller-side skew (one stalled
//! worker) and, under the `failpoints` feature, by `exec.pool.morsel`
//! delay injection that randomizes the claim order — and a guard that
//! trips mid-run must surface the same typed resource error on both
//! paths. `pool_props.rs` covers the schedule-independent basics
//! (order, visit-once, panic typing); this file covers the schedules
//! the block deal alone would never produce.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use qp_exec::{morsel_map, morsel_map_with, ExecError, QueryGuardBuilder, ResourceKind};

fn mix(i: usize, x: u64) -> u64 {
    x.wrapping_mul(0x9E37_79B9).rotate_left((i % 31) as u32) ^ 0xA5A5
}

/// Caller-side skew: item 0 stalls its worker, so every other worker
/// drains its own deque and then steals the stalled worker's remainder.
/// The steal-heavy schedule must change nothing about the output and
/// must be visible in the run's steal counter.
#[test]
fn stalled_worker_is_stolen_dry_and_output_is_byte_identical() {
    let items: Vec<u64> = (0..64).collect();
    let f = |i: usize, x: u64| {
        if i == 0 {
            std::thread::sleep(Duration::from_millis(50));
        }
        Ok::<_, ExecError>(mix(i, x))
    };
    let (serial, sstats) = morsel_map(items.clone(), 1, f);
    let (parallel, pstats) = morsel_map(items, 4, f);
    assert_eq!(serial.expect("serial succeeds"), parallel.expect("parallel succeeds"));
    assert_eq!((sstats.morsels, sstats.steals), (0, 0), "serial path never touches the pool");
    assert_eq!(pstats.morsels, 16, "64 items at parallelism 4 pack into 16 morsels");
    assert!(
        pstats.steals >= 1,
        "workers idling behind a 50ms stall must steal its deque (steals={})",
        pstats.steals
    );
}

/// The same skew through `morsel_map_with`: per-worker state follows the
/// thief, not the deque, so stolen morsels run with the stealing
/// worker's state and the output still equals serial.
#[test]
fn stolen_morsels_use_the_thiefs_state_and_match_serial() {
    let inits = AtomicUsize::new(0);
    let items: Vec<u64> = (0..64).collect();
    let run = |parallelism: usize| {
        morsel_map_with(
            items.clone(),
            parallelism,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0u64 // per-worker scratch: a running count of items seen
            },
            |seen, i, x| {
                *seen += 1;
                if i == 0 {
                    std::thread::sleep(Duration::from_millis(40));
                }
                Ok::<_, ExecError>(mix(i, x))
            },
        )
    };
    let (serial, _) = run(1);
    let serial = serial.expect("serial succeeds");
    assert_eq!(inits.load(Ordering::Relaxed), 1, "serial builds exactly one state");
    let (parallel, pstats) = run(4);
    assert_eq!(serial, parallel.expect("parallel succeeds"));
    assert!(pstats.steals >= 1, "skew forces stealing (steals={})", pstats.steals);
    let total_inits = inits.load(Ordering::Relaxed);
    assert!(
        (2..=5).contains(&total_inits),
        "parallel builds one state per spawned worker, never per morsel (inits={total_inits})"
    );
}

/// A shared guard that trips mid-run must produce the same typed
/// resource error at parallelism 1 and 4: the budget atomics are global
/// across workers, so no schedule can out-spend the serial run, and the
/// reassembly returns a lowest-morsel resource error either way.
#[test]
fn midrun_guard_trip_is_the_same_typed_error_on_both_paths() {
    for parallelism in [1, 4] {
        let guard = QueryGuardBuilder::default().max_intermediate_rows(100).build();
        let items: Vec<u64> = (0..64).collect();
        let err = morsel_map(items, parallelism, |i, x| {
            guard.charge_intermediate(10)?; // 64 × 10 ≫ 100: trips mid-run
            Ok::<_, ExecError>(mix(i, x))
        })
        .0
        .expect_err("the budget cannot cover the run");
        match err {
            ExecError::ResourceExhausted { resource: ResourceKind::IntermediateRows, limit } => {
                assert_eq!(limit, 100, "parallelism {parallelism}");
            }
            other => panic!("parallelism {parallelism}: expected a budget trip, got {other}"),
        }
    }
}

/// Guard trips leave already-settled charges settled: whatever workers
/// charged before the trip stays on the shared atomics (the serving
/// layer's accounting relies on it), bounded by the full run's charge.
#[test]
fn guard_charges_before_a_trip_stay_settled() {
    let charged = AtomicUsize::new(0);
    let guard = QueryGuardBuilder::default().max_intermediate_rows(50).build();
    let items: Vec<u64> = (0..64).collect();
    let result = morsel_map(items, 4, |i, x| {
        guard.charge_intermediate(10)?;
        charged.fetch_add(10, Ordering::Relaxed);
        Ok::<_, ExecError>(mix(i, x))
    })
    .0;
    assert!(result.is_err(), "the budget cannot cover the run");
    // fetch_add admits a charge iff the running total stays within the
    // 50-row budget, so exactly five 10-row charges succeed no matter
    // how the morsels interleave.
    assert_eq!(charged.load(Ordering::Relaxed), 50, "settled charges are schedule-independent");
}

/// Steal-heavy schedules forced by failpoint-injected per-morsel delays:
/// `exec.pool.morsel` fires on every *claimed* morsel, so a seeded
/// chaos stream of delays perturbs which worker claims what — precisely
/// the schedules the deterministic block deal never exercises. The
/// output must equal the serial map for every seed.
#[cfg(feature = "failpoints")]
mod steal_heavy {
    use super::*;
    use proptest::prelude::*;
    use qp_exec::failpoint::{arm, FailAction, FailScenario};

    proptest! {
        // Each case sleeps ~half its morsels for 1ms; keep the case
        // count low enough that the suite stays fast on one core.
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn delay_skewed_schedules_preserve_byte_identity(
            seed in 1u64..=u64::MAX,
            len in 1usize..260,
            par in 2usize..6,
        ) {
            let items: Vec<u64> = (0..len as u64).collect();
            let f = |i: usize, x: u64| Ok::<_, ExecError>(mix(i, x));
            // The delay site lives inside the worker claim loop, so the
            // serial reference is unaffected even while armed; scoping
            // the scenario keeps the registry clean between cases anyway.
            let serial: Vec<u64> = morsel_map(items.clone(), 1, f).0.unwrap();
            let scenario = FailScenario::setup();
            arm(
                "exec.pool.morsel",
                FailAction::Chaos {
                    seed,
                    error_rate: 0,
                    panic_rate: 0,
                    delay_rate: 5000, // half of all claimed morsels stall
                    delay_ms: 1,
                },
            );
            let (parallel, stats) = morsel_map(items, par, f);
            drop(scenario);
            prop_assert_eq!(serial, parallel.unwrap(), "seed={} len={} par={}", seed, len, par);
            prop_assert!(stats.morsels >= 1);
        }

        /// An injected per-morsel *error* fails exactly that morsel,
        /// typed, and reassembly still returns an error deterministically
        /// shaped like a worker fault — never an unwind, never a hang.
        #[test]
        fn injected_morsel_errors_surface_typed(len in 8usize..200, par in 2usize..6) {
            let items: Vec<u64> = (0..len as u64).collect();
            let scenario = FailScenario::setup();
            arm("exec.pool.morsel", FailAction::Error("morsel fault".into()));
            let (result, _) = morsel_map(items, par, |i, x| Ok::<_, ExecError>(mix(i, x)));
            drop(scenario);
            let err = result.expect_err("every morsel is poisoned");
            let msg = err.to_string();
            prop_assert!(
                msg.contains("injected fault: morsel fault"),
                "typed injected fault, got: {}", msg
            );
        }
    }
}
