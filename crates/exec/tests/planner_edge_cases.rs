//! Planner and executor edge cases beyond the core engine tests:
//! join-order independence, cross joins with late filters, unions with
//! ordering, scalar functions in predicates, and limit/offset-like
//! interactions.

use qp_exec::Engine;
use qp_storage::{Attribute, DataType, Database, Value};

fn db() -> Database {
    let mut db = Database::new();
    db.create_relation(
        "A",
        vec![Attribute::new("id", DataType::Int), Attribute::new("x", DataType::Int)],
        &["id"],
    )
    .unwrap();
    db.create_relation(
        "B",
        vec![Attribute::new("id", DataType::Int), Attribute::new("y", DataType::Int)],
        &["id"],
    )
    .unwrap();
    db.create_relation(
        "C",
        vec![Attribute::new("id", DataType::Int), Attribute::new("z", DataType::Int)],
        &["id"],
    )
    .unwrap();
    for i in 0..20i64 {
        db.insert_by_name("A", vec![Value::Int(i), Value::Int(i % 5)]).unwrap();
        db.insert_by_name("B", vec![Value::Int(i), Value::Int(i % 3)]).unwrap();
        db.insert_by_name("C", vec![Value::Int(i), Value::Int(i % 7)]).unwrap();
    }
    db
}

#[test]
fn join_chain_all_orders_agree() {
    let db = db();
    let e = Engine::new();
    let expected = 20;
    for sql in [
        "select A.id from A, B, C where A.id = B.id and B.id = C.id",
        "select A.id from C, B, A where A.id = B.id and B.id = C.id",
        "select A.id from B, C, A where B.id = C.id and A.id = B.id",
        "select A.id from A, C, B where C.id = A.id and B.id = C.id",
    ] {
        let rs = e.execute_sql(&db, sql).unwrap();
        assert_eq!(rs.len(), expected, "{sql}");
    }
}

#[test]
fn join_condition_spanning_three_tables_as_residual() {
    let db = db();
    let e = Engine::new();
    // x + y = z is not an equi-join edge: becomes a residual filter over
    // the cross/join product
    let rs = e
        .execute_sql(
            &db,
            "select A.id from A, B, C where A.id = B.id and B.id = C.id and A.x + B.y = C.z",
        )
        .unwrap();
    // verify against manual computation
    let expect = (0..20i64).filter(|i| (i % 5) + (i % 3) == i % 7).count();
    assert_eq!(rs.len(), expect);
}

#[test]
fn cross_join_then_filter() {
    let db = db();
    let e = Engine::new();
    let rs = e
        .execute_sql(&db, "select A.id, B.id from A, B where A.x = 0 and B.y = 0")
        .unwrap();
    // 4 rows with x=0 (ids 0,5,10,15), 7 rows with y=0 (0,3,..18)
    assert_eq!(rs.len(), 4 * 7);
}

#[test]
fn union_with_order_and_limit() {
    let db = db();
    let e = Engine::new();
    let rs = e
        .execute_sql(
            &db,
            "select id n from A where id < 3 union all select id from B where id < 2 \
             order by n desc limit 3",
        )
        .unwrap();
    let got: Vec<i64> = rs.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
    assert_eq!(got, vec![2, 1, 1]);
}

#[test]
fn union_order_by_position() {
    let db = db();
    let e = Engine::new();
    let rs = e
        .execute_sql(&db, "select x from A where id < 4 union all select y from B where id < 2 order by 1")
        .unwrap();
    let got: Vec<i64> = rs.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
    let mut expect = vec![0i64, 1, 2, 3, 0, 1];
    expect.sort_unstable();
    assert_eq!(got, expect);
}

#[test]
fn scalar_udf_in_where_clause() {
    let db = db();
    let mut e = Engine::new();
    e.registry_mut().register_scalar("half", |args: &[Value]| {
        args.first().and_then(Value::as_f64).map(|x| Value::Float(x / 2.0)).unwrap_or(Value::Null)
    });
    let rs = e.execute_sql(&db, "select id from A where half(id) >= 9").unwrap();
    assert_eq!(rs.len(), 2); // ids 18, 19
}

#[test]
fn aggregate_of_expression_and_expression_of_aggregate() {
    let db = db();
    let e = Engine::new();
    let rs = e.execute_sql(&db, "select sum(x + 1) from A").unwrap();
    let expect: i64 = (0..20).map(|i| i % 5 + 1).sum();
    assert_eq!(rs.rows[0][0], Value::Int(expect));
    let rs = e.execute_sql(&db, "select count(*) * 2 + 1 from A").unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(41));
}

#[test]
fn group_by_expression() {
    let db = db();
    let e = Engine::new();
    let rs = e
        .execute_sql(&db, "select x * 2, count(*) from A group by x * 2 order by 1")
        .unwrap();
    assert_eq!(rs.len(), 5);
    assert_eq!(rs.rows[0][0], Value::Int(0));
    assert_eq!(rs.rows[0][1], Value::Int(4));
}

#[test]
fn having_on_aggregate_not_in_select() {
    let db = db();
    let e = Engine::new();
    let rs = e
        .execute_sql(&db, "select x from A group by x having sum(id) > 30 order by x")
        .unwrap();
    // per x group: ids {x, x+5, x+10, x+15}, sum = 4x + 30 → > 30 means x ≥ 1
    assert_eq!(rs.len(), 4);
    assert_eq!(rs.rows[0][0], Value::Int(1));
}

#[test]
fn in_subquery_over_join() {
    let db = db();
    let e = Engine::new();
    let rs = e
        .execute_sql(
            &db,
            "select id from A where id in (select B.id from B, C where B.id = C.id and C.z = 0)",
        )
        .unwrap();
    // C.z = 0 → ids 0, 7, 14
    assert_eq!(rs.len(), 3);
}

#[test]
fn limit_zero_and_overlarge() {
    let db = db();
    let e = Engine::new();
    assert_eq!(e.execute_sql(&db, "select id from A limit 0").unwrap().len(), 0);
    assert_eq!(e.execute_sql(&db, "select id from A limit 999").unwrap().len(), 20);
}

#[test]
fn empty_table_behaviour() {
    let mut db = db();
    db.create_relation("EMPTY", vec![Attribute::new("v", DataType::Int)], &[]).unwrap();
    let e = Engine::new();
    assert_eq!(e.execute_sql(&db, "select v from EMPTY").unwrap().len(), 0);
    assert_eq!(
        e.execute_sql(&db, "select A.id from A, EMPTY where A.id = EMPTY.v").unwrap().len(),
        0
    );
    let rs = e.execute_sql(&db, "select count(*), max(v) from EMPTY").unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(0));
    assert!(rs.rows[0][1].is_null());
}

#[test]
fn self_join_via_aliases() {
    let db = db();
    let e = Engine::new();
    let rs = e
        .execute_sql(
            &db,
            "select a1.id, a2.id from A a1, A a2 where a1.x = a2.x and a1.id < a2.id",
        )
        .unwrap();
    // 5 groups of 4 ids sharing x: C(4,2) = 6 pairs each
    assert_eq!(rs.len(), 5 * 6);
}

#[test]
fn order_by_multiple_keys_mixed_direction() {
    let db = db();
    let e = Engine::new();
    let rs = e
        .execute_sql(&db, "select x, id from A order by x desc, id limit 5")
        .unwrap();
    let got: Vec<(i64, i64)> = rs
        .rows
        .iter()
        .map(|r| (r[0].as_i64().unwrap(), r[1].as_i64().unwrap()))
        .collect();
    assert_eq!(got, vec![(4, 4), (4, 9), (4, 14), (4, 19), (3, 3)]);
}

#[test]
fn rowid_in_projection_and_filter_combined() {
    let db = db();
    let e = Engine::new();
    let rs = e
        .execute_sql(&db, "select A.rowid, A.id from A where A.rowid between 5 and 7 order by 1")
        .unwrap();
    assert_eq!(rs.len(), 3);
    assert_eq!(rs.rows[0][0], Value::Int(5));
}
