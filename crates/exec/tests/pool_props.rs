//! Property tests for the worker pool: for any (len, parallelism) pair,
//! `parallel_map` must be indistinguishable from the serial loop — same
//! results, same order, every index visited exactly once — and a panic
//! anywhere must surface as a typed error, never an unwind.

use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use qp_exec::parallel_map;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Order identity: the parallel result equals the serial map for any
    /// batch length and worker count, including the degenerate ones
    /// (empty batch, one item, more workers than items).
    #[test]
    fn order_identical_to_serial(len in 0usize..700, par in 1usize..16) {
        let items: Vec<u64> = (0..len as u64).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * 31 + 7).collect();
        let out = parallel_map(items, par, |i, x| {
            prop_assert_eq!(i as u64, x, "closure sees the original index");
            Ok::<_, String>(x * 31 + 7)
        }).unwrap();
        prop_assert_eq!(out, serial, "len={} par={}", len, par);
    }

    /// Every item is visited exactly once regardless of chunking.
    #[test]
    fn each_item_visited_once(len in 1usize..400, par in 1usize..12) {
        let visits = AtomicUsize::new(0);
        let items: Vec<usize> = (0..len).collect();
        let out = parallel_map(items, par, |_, x| {
            visits.fetch_add(1, Ordering::Relaxed);
            Ok::<_, String>(x)
        }).unwrap();
        prop_assert_eq!(visits.load(Ordering::Relaxed), len);
        prop_assert_eq!(out.len(), len);
    }

    /// A panic at an arbitrary index is caught and typed for any shape;
    /// the caller's thread survives to inspect the error.
    #[test]
    fn panic_is_always_typed(len in 1usize..200, par in 1usize..10, at in 0usize..200) {
        let at = at % len;
        let items: Vec<usize> = (0..len).collect();
        let err = parallel_map(items, par, |_, x| {
            if x == at {
                panic!("injected panic at {x}");
            }
            Ok::<_, String>(x)
        }).unwrap_err();
        prop_assert!(
            err.contains(&format!("injected panic at {at}")),
            "panic payload preserved: {}", err
        );
        prop_assert!(err.contains("panicked"), "typed as a worker panic: {}", err);
    }
}
