//! Batch-vs-row parity: the vectorized engine and the `QP_ROW_ENGINE`
//! row-at-a-time oracle must produce **byte-identical** result sets — same
//! columns, same rows, same row order — on arbitrary SPJ queries, serial
//! and parallel. Set-equality is not enough: downstream consumers (PPA's
//! first-row-per-tuple probes, LIMIT, the resilience snapshots) depend on
//! row order, so the property compares whole [`qp_exec::ResultSet`]s.

use proptest::prelude::*;
use qp_exec::Engine;
use qp_storage::{Attribute, DataType, Database, Value};

/// T(a, b, c) with NULLs in `a`, plus S(k, v) keyed on `k` so equi-joins
/// against S can take the index path.
fn build_db(t_rows: &[(Option<i64>, i64, i64)], s_rows: &[(i64, i64)]) -> Database {
    let mut db = Database::new();
    db.create_relation(
        "T",
        vec![
            Attribute::new("a", DataType::Int),
            Attribute::new("b", DataType::Int),
            Attribute::new("c", DataType::Int),
        ],
        &[],
    )
    .unwrap();
    db.create_relation(
        "S",
        vec![Attribute::new("k", DataType::Int), Attribute::new("v", DataType::Int)],
        &["k"],
    )
    .unwrap();
    for (a, b, c) in t_rows {
        db.insert_by_name(
            "T",
            vec![a.map(Value::Int).unwrap_or(Value::Null), Value::Int(*b), Value::Int(*c)],
        )
        .unwrap();
    }
    for (k, v) in s_rows {
        db.insert_by_name("S", vec![Value::Int(*k), Value::Int(*v)]).unwrap();
    }
    db
}

/// Executes `sql` on the vectorized engine (at the given parallelism) and
/// on the serial row engine, asserting byte-identical result sets.
fn assert_parity(db: &Database, sql: &str, parallelism: usize) -> Result<(), String> {
    let mut batch = Engine::new();
    batch.set_row_engine(false);
    batch.set_parallelism(parallelism);
    let mut row = Engine::new();
    row.set_row_engine(true);
    row.set_parallelism(1);
    let got = batch.execute_sql(db, sql).unwrap_or_else(|e| panic!("batch: {sql}: {e}"));
    let expect = row.execute_sql(db, sql).unwrap_or_else(|e| panic!("row: {sql}: {e}"));
    prop_assert_eq!(got, expect, "engines diverge on: {}", sql);
    Ok(())
}

#[derive(Debug, Clone)]
enum Pred {
    Cmp(&'static str, &'static str, i64),
    Between(&'static str, i64, i64, bool),
    InList(&'static str, Vec<i64>, bool),
    IsNull(&'static str, bool),
    And(Box<Pred>, Box<Pred>),
    Or(Box<Pred>, Box<Pred>),
    Not(Box<Pred>),
}

impl Pred {
    fn to_sql(&self, binding: &str) -> String {
        match self {
            Pred::Cmp(c, op, v) => format!("{binding}{c} {op} {v}"),
            Pred::Between(c, lo, hi, neg) => {
                format!("{binding}{c} {}BETWEEN {lo} AND {hi}", if *neg { "NOT " } else { "" })
            }
            Pred::InList(c, vs, neg) => format!(
                "{binding}{c} {}IN ({})",
                if *neg { "NOT " } else { "" },
                vs.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", ")
            ),
            Pred::IsNull(c, neg) => {
                format!("{binding}{c} IS {}NULL", if *neg { "NOT " } else { "" })
            }
            Pred::And(l, r) => format!("({}) AND ({})", l.to_sql(binding), r.to_sql(binding)),
            Pred::Or(l, r) => format!("({}) OR ({})", l.to_sql(binding), r.to_sql(binding)),
            Pred::Not(p) => format!("NOT ({})", p.to_sql(binding)),
        }
    }
}

fn arb_col() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("a"), Just("b"), Just("c")]
}

fn arb_pred() -> impl Strategy<Value = Pred> {
    let leaf = prop_oneof![
        (
            arb_col(),
            prop_oneof![Just("="), Just("<>"), Just("<"), Just("<="), Just(">"), Just(">=")],
            -10i64..10
        )
            .prop_map(|(c, op, v)| Pred::Cmp(c, op, v)),
        (arb_col(), -10i64..10, 0i64..10, any::<bool>())
            .prop_map(|(c, lo, w, neg)| Pred::Between(c, lo, lo + w, neg)),
        (arb_col(), prop::collection::vec(-10i64..10, 1..4), any::<bool>())
            .prop_map(|(c, vs, neg)| Pred::InList(c, vs, neg)),
        (arb_col(), any::<bool>()).prop_map(|(c, neg)| Pred::IsNull(c, neg)),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Pred::And(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Pred::Or(Box::new(l), Box::new(r))),
            inner.prop_map(|p| Pred::Not(Box::new(p))),
        ]
    })
}

/// One SPJ query shape; the predicate is shared so every shape sees the
/// same filter structure.
#[derive(Debug, Clone)]
enum Shape {
    Filter,
    Distinct,
    OrderLimit(u64),
    IndexJoin,
    HashJoin(i64),
    GroupBy,
    UnionAll,
}

impl Shape {
    fn to_sql(&self, pred: &Pred) -> String {
        match self {
            Shape::Filter => format!("select b, c from T where {}", pred.to_sql("")),
            Shape::Distinct => format!("select distinct b from T where {}", pred.to_sql("")),
            Shape::OrderLimit(n) => format!(
                "select b, c from T where {} order by b desc, c limit {n}",
                pred.to_sql("")
            ),
            Shape::IndexJoin => format!(
                "select T.b, S.v from T, S where T.a = S.k and ({})",
                pred.to_sql("T.")
            ),
            Shape::HashJoin(m) => format!(
                "select T.b, G.v from T, (select k, v from S where v >= {m}) G \
                 where T.b = G.k and ({})",
                pred.to_sql("T.")
            ),
            Shape::GroupBy => {
                format!("select b, count(*) from T where {} group by b order by b", pred.to_sql(""))
            }
            Shape::UnionAll => format!(
                "select b from T where {} union all select c from T where {}",
                pred.to_sql(""),
                pred.to_sql("")
            ),
        }
    }
}

fn arb_shape() -> impl Strategy<Value = Shape> {
    prop_oneof![
        Just(Shape::Filter),
        Just(Shape::Distinct),
        (0u64..20).prop_map(Shape::OrderLimit),
        Just(Shape::IndexJoin),
        (-10i64..10).prop_map(Shape::HashJoin),
        Just(Shape::GroupBy),
        Just(Shape::UnionAll),
    ]
}

fn arb_t_rows() -> impl Strategy<Value = Vec<(Option<i64>, i64, i64)>> {
    prop::collection::vec(
        (proptest::option::weighted(0.85, -10i64..10), -10i64..10, -10i64..10),
        0..60,
    )
}

fn arb_s_rows() -> impl Strategy<Value = Vec<(i64, i64)>> {
    // keys must be unique (primary key on S.k)
    prop::collection::vec((-10i64..10, -10i64..10), 0..15).prop_map(|pairs| {
        let m: std::collections::BTreeMap<i64, i64> = pairs.into_iter().collect();
        m.into_iter().collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    #[test]
    fn batch_row_parity_serial(
        t_rows in arb_t_rows(),
        s_rows in arb_s_rows(),
        shape in arb_shape(),
        pred in arb_pred(),
    ) {
        let db = build_db(&t_rows, &s_rows);
        assert_parity(&db, &shape.to_sql(&pred), 1)?;
    }

    #[test]
    fn batch_row_parity_parallel(
        t_rows in arb_t_rows(),
        s_rows in arb_s_rows(),
        shape in arb_shape(),
        pred in arb_pred(),
    ) {
        let db = build_db(&t_rows, &s_rows);
        assert_parity(&db, &shape.to_sql(&pred), 4)?;
    }
}

/// Deterministic parity across multiple full batches plus a partial tail:
/// 3000 rows spans two full 1024-row batches and a ragged third, so scan
/// chunking, selection-vector refinement, join probing and the shared
/// sort/limit tail all cross batch boundaries.
#[test]
fn parity_across_batch_boundaries() {
    let t_rows: Vec<(Option<i64>, i64, i64)> = (0..3000)
        .map(|i| {
            let a = if i % 7 == 0 { None } else { Some(i % 23 - 11) };
            (a, i % 17 - 8, i % 13 - 6)
        })
        .collect();
    let s_rows: Vec<(i64, i64)> = (-8..9).map(|k| (k, k * 3 % 5)).collect();
    let db = build_db(&t_rows, &s_rows);
    for parallelism in [1, 4] {
        for sql in [
            "select b, c from T where b > 0 and c <= 3",
            "select T.b, G.v from T, (select k, v from S where v >= 0) G \
             where T.b = G.k and T.c < 4",
            "select T.b, S.v from T, S where T.a = S.k and T.b <> 2",
            "select distinct b, c from T where a is not null order by b, c limit 40",
        ] {
            let mut batch = Engine::new();
            batch.set_row_engine(false);
            batch.set_parallelism(parallelism);
            let mut row = Engine::new();
            row.set_row_engine(true);
            row.set_parallelism(1);
            let got = batch.execute_sql(&db, sql).unwrap();
            let expect = row.execute_sql(&db, sql).unwrap();
            assert_eq!(got, expect, "parallelism {parallelism}, sql: {sql}");
        }
    }
}
