//! # qp-obs — zero-dependency observability for the query stack
//!
//! Structured spans, atomic metrics, and pluggable recorders, built on
//! `std` alone so every crate in the workspace can afford to depend on
//! it. This is the feedback loop the paper's evaluation (§7 of Koutrika
//! & Ioannidis, ICDE 2005) is built on: *where does personalization time
//! go* — preference selection, SPA rewriting, or PPA's progressive
//! phases — and *how good were the selectivity estimates* that PPA used
//! to order its subqueries.
//!
//! Three pieces:
//!
//! * [`Tracer`] / [`Span`] — scoped timers with parent/child nesting.
//!   A disabled tracer (the default) costs one branch per call site, so
//!   instrumentation stays compiled in unconditionally.
//! * [`MetricsRegistry`] — named [`Counter`]s, [`Gauge`]s, and
//!   fixed-bucket [`LatencyHistogram`]s. Registration takes a lock;
//!   updates are relaxed atomics on pre-fetched handles.
//! * [`Recorder`] — where finished records go: [`MemoryRecorder`] for
//!   tests and in-process analysis, [`JsonLinesRecorder`] for streaming
//!   a trace file (`repro --trace-json`).
//!
//! ```
//! use std::sync::Arc;
//! use qp_obs::{MemoryRecorder, Tracer};
//!
//! let recorder = Arc::new(MemoryRecorder::new());
//! let tracer = Tracer::new(recorder.clone());
//! {
//!     let mut phase = tracer.span("ppa.presence");
//!     phase.attr("round", 0usize);
//!     let _q = tracer.span("exec.query"); // child of ppa.presence
//! }
//! let spans = recorder.spans();
//! assert_eq!(spans.len(), 2);
//! assert_eq!(spans[0].parent, Some(spans[1].id));
//! ```
//!
//! Naming conventions, the recorder contract, and how the engine's
//! `EXPLAIN ANALYZE` builds on this crate are documented in
//! `OBSERVABILITY.md` at the repository root.

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod metrics;
pub mod recorder;
pub mod span;

pub use metrics::{Counter, Gauge, LatencyHistogram, MetricsRegistry, DEFAULT_LATENCY_BOUNDS_US};
pub use recorder::{
    AttrValue, Attrs, EventRecord, JsonLinesRecorder, MemoryRecorder, MetricRecord, MetricValue,
    Record, Recorder, SpanRecord,
};
pub use span::{Span, Tracer};
