//! Atomic metrics: counters, gauges, and fixed-bucket latency histograms.
//!
//! The [`MetricsRegistry`] is a name → handle map behind a mutex; the
//! handles themselves ([`Counter`], [`Gauge`], [`LatencyHistogram`]) are
//! plain atomics. The intended pattern is *register once, update
//! lock-free*: code on a hot path fetches its handle up front (or once
//! per query) and then increments without ever touching the registry
//! lock. Updates use `Relaxed` ordering — metrics are monotone tallies,
//! not synchronization.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::recorder::{MetricRecord, MetricValue};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1 to the counter.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins signed level (e.g. live rows held by an operator).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the gauge by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Default latency bucket upper bounds, in microseconds: a 1-2-5 ladder
/// from 1 µs to 1 s. A final implicit overflow bucket catches the rest.
pub const DEFAULT_LATENCY_BOUNDS_US: &[u64] = &[
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000,
    200_000, 500_000, 1_000_000,
];

/// A fixed-bucket latency histogram. Observations are durations; buckets
/// are cumulative-free counts per upper bound (in µs) plus an overflow
/// bucket. All updates are single relaxed atomic adds.
#[derive(Debug)]
pub struct LatencyHistogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>, // len == bounds.len() + 1 (overflow last)
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::with_bounds(DEFAULT_LATENCY_BOUNDS_US)
    }
}

impl LatencyHistogram {
    /// Builds a histogram with the given strictly increasing upper
    /// bounds (µs). An overflow bucket is appended automatically.
    pub fn with_bounds(bounds: &[u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must increase");
        LatencyHistogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, d: Duration) {
        let us = d.as_micros() as u64;
        let idx = self.bounds.partition_point(|&b| b < us);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Mean observation in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_us() as f64 / n as f64
        }
    }

    /// `(upper_bound_us, count)` pairs; the overflow bucket reports
    /// `u64::MAX` as its bound.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.bounds
            .iter()
            .copied()
            .chain(std::iter::once(u64::MAX))
            .zip(self.buckets.iter().map(|b| b.load(Ordering::Relaxed)))
            .collect()
    }
}

#[derive(Default)]
struct Registered {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<LatencyHistogram>>,
}

/// A name → metric map. Lookup locks a mutex; the returned handles are
/// lock-free. Names are dotted paths (`layer.noun[_unit]`, see
/// `OBSERVABILITY.md`).
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Registered>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("metrics lock");
        f.debug_struct("MetricsRegistry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter named `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().expect("metrics lock");
        match inner.counters.get(name) {
            Some(c) => c.clone(),
            None => {
                let c = Arc::new(Counter::default());
                inner.counters.insert(name.to_string(), c.clone());
                c
            }
        }
    }

    /// Returns the gauge named `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().expect("metrics lock");
        match inner.gauges.get(name) {
            Some(g) => g.clone(),
            None => {
                let g = Arc::new(Gauge::default());
                inner.gauges.insert(name.to_string(), g.clone());
                g
            }
        }
    }

    /// Returns the latency histogram named `name` (default 1-2-5 µs
    /// ladder), creating it on first use.
    pub fn histogram(&self, name: &str) -> Arc<LatencyHistogram> {
        let mut inner = self.inner.lock().expect("metrics lock");
        match inner.histograms.get(name) {
            Some(h) => h.clone(),
            None => {
                let h = Arc::new(LatencyHistogram::default());
                inner.histograms.insert(name.to_string(), h.clone());
                h
            }
        }
    }

    /// A point-in-time copy of every registered metric, sorted by name
    /// within each kind (counters, then gauges, then histograms).
    pub fn snapshot(&self) -> Vec<MetricRecord> {
        let inner = self.inner.lock().expect("metrics lock");
        let mut out = Vec::new();
        for (name, c) in &inner.counters {
            out.push(MetricRecord { name: name.clone(), value: MetricValue::Counter(c.get()) });
        }
        for (name, g) in &inner.gauges {
            out.push(MetricRecord { name: name.clone(), value: MetricValue::Gauge(g.get()) });
        }
        for (name, h) in &inner.histograms {
            out.push(MetricRecord {
                name: name.clone(),
                value: MetricValue::Histogram {
                    buckets: h.buckets(),
                    count: h.count(),
                    sum_us: h.sum_us(),
                },
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("exec.queries");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name → same handle.
        assert_eq!(reg.counter("exec.queries").get(), 5);

        let g = reg.gauge("exec.live_rows");
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_buckets_observations() {
        let h = LatencyHistogram::with_bounds(&[10, 100]);
        h.observe(Duration::from_micros(5)); // ≤ 10
        h.observe(Duration::from_micros(10)); // ≤ 10 (inclusive bound)
        h.observe(Duration::from_micros(70)); // ≤ 100
        h.observe(Duration::from_micros(5_000)); // overflow
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum_us(), 5 + 10 + 70 + 5_000);
        let buckets = h.buckets();
        assert_eq!(buckets, vec![(10, 2), (100, 1), (u64::MAX, 1)]);
        assert!((h.mean_us() - 1271.25).abs() < 1e-9);
    }

    #[test]
    fn snapshot_reports_every_kind() {
        let reg = MetricsRegistry::new();
        reg.counter("b.count").add(2);
        reg.gauge("a.level").set(-1);
        reg.histogram("c.lat_us").observe(Duration::from_micros(3));
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["b.count", "a.level", "c.lat_us"]);
        match &snap[2].value {
            MetricValue::Histogram { count, sum_us, .. } => {
                assert_eq!((*count, *sum_us), (1, 3));
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }
}
