//! Recorder sinks: where finished spans, events, and metric snapshots go.
//!
//! A [`Recorder`] is the pluggable back half of the tracing pipeline. The
//! [`Tracer`](crate::Tracer) assembles [`Record`]s on the application
//! thread and hands them to the recorder; the recorder decides what to do
//! with them — buffer them in memory ([`MemoryRecorder`]), stream them to
//! a file as JSON lines ([`JsonLinesRecorder`]), or anything else.
//!
//! # Contract
//!
//! Implementations must be [`Send`] + [`Sync`] and must tolerate being
//! called from span destructors: `record` must not panic, must not block
//! for long, and must not itself create spans on the same tracer (that
//! would re-enter the span stack mid-pop). `flush` is advisory — callers
//! invoke it at the end of a run; buffered recorders should persist
//! whatever they hold.

use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::Mutex;

/// An attribute value attached to a span or event.
///
/// Kept deliberately small: everything the query engine reports fits in
/// these five shapes, and each serializes to a bare JSON scalar.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (row counts, ids).
    Uint(u64),
    /// A float (selectivities, ratios). Non-finite values serialize as
    /// `null`.
    Float(f64),
    /// A string (names, causes).
    Str(String),
    /// A boolean flag.
    Bool(bool),
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}
impl From<i32> for AttrValue {
    fn from(v: i32) -> Self {
        AttrValue::Int(v as i64)
    }
}
impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::Uint(v)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::Uint(v as u64)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

/// A key/value attribute list.
pub type Attrs = Vec<(String, AttrValue)>;

/// A completed span: a named interval with parent/child nesting.
///
/// Timestamps are microseconds relative to the tracer's epoch (the moment
/// the tracer was created), so traces are trivially diff-able across runs.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique id within the tracer (1-based, allocation order).
    pub id: u64,
    /// Id of the enclosing span, if any.
    pub parent: Option<u64>,
    /// Dotted span name, e.g. `ppa.presence` (see OBSERVABILITY.md).
    pub name: String,
    /// Start offset from the tracer epoch, in microseconds.
    pub start_us: u64,
    /// Wall-clock duration, in microseconds.
    pub elapsed_us: u64,
    /// Attributes set while the span was open.
    pub attrs: Attrs,
}

/// A point-in-time event (zero duration), e.g. a guard trip.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Id of the span that was open when the event fired, if any.
    pub parent: Option<u64>,
    /// Dotted event name, e.g. `ppa.cut`.
    pub name: String,
    /// Offset from the tracer epoch, in microseconds.
    pub at_us: u64,
    /// Attributes describing the event.
    pub attrs: Attrs,
}

/// A single metric at snapshot time (see
/// [`MetricsRegistry::snapshot`](crate::MetricsRegistry::snapshot)).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricRecord {
    /// Dotted metric name, e.g. `exec.rows_scanned`.
    pub name: String,
    /// The metric's value at snapshot time.
    pub value: MetricValue,
}

/// The value payload of a [`MetricRecord`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic counter total.
    Counter(u64),
    /// Last-write-wins gauge level.
    Gauge(i64),
    /// Latency histogram: cumulative-free per-bucket counts plus totals.
    Histogram {
        /// `(upper_bound_us, count)` per bucket; the final bucket's bound
        /// is `u64::MAX` (overflow).
        buckets: Vec<(u64, u64)>,
        /// Total number of observations.
        count: u64,
        /// Sum of all observations, in microseconds.
        sum_us: u64,
    },
}

/// Anything a [`Recorder`] can receive.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A completed span.
    Span(SpanRecord),
    /// A point-in-time event.
    Event(EventRecord),
    /// A metric snapshot entry.
    Metric(MetricRecord),
}

impl Record {
    /// The record's name (span name, event name, or metric name).
    pub fn name(&self) -> &str {
        match self {
            Record::Span(s) => &s.name,
            Record::Event(e) => &e.name,
            Record::Metric(m) => &m.name,
        }
    }

    /// Serializes the record as a single JSON object on one line (no
    /// trailing newline). This is the JSON-lines wire format written by
    /// [`JsonLinesRecorder`]; it is hand-rolled so the crate stays
    /// dependency-free.
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(128);
        match self {
            Record::Span(sp) => {
                let _ = write!(
                    s,
                    "{{\"type\":\"span\",\"id\":{},\"parent\":{},\"name\":{},\"start_us\":{},\"elapsed_us\":{}",
                    sp.id,
                    opt_u64(sp.parent),
                    json_str(&sp.name),
                    sp.start_us,
                    sp.elapsed_us
                );
                push_attrs(&mut s, &sp.attrs);
                s.push('}');
            }
            Record::Event(ev) => {
                let _ = write!(
                    s,
                    "{{\"type\":\"event\",\"parent\":{},\"name\":{},\"at_us\":{}",
                    opt_u64(ev.parent),
                    json_str(&ev.name),
                    ev.at_us
                );
                push_attrs(&mut s, &ev.attrs);
                s.push('}');
            }
            Record::Metric(m) => {
                let _ = write!(s, "{{\"type\":\"metric\",\"name\":{}", json_str(&m.name));
                match &m.value {
                    MetricValue::Counter(v) => {
                        let _ = write!(s, ",\"kind\":\"counter\",\"value\":{v}");
                    }
                    MetricValue::Gauge(v) => {
                        let _ = write!(s, ",\"kind\":\"gauge\",\"value\":{v}");
                    }
                    MetricValue::Histogram { buckets, count, sum_us } => {
                        let _ = write!(s, ",\"kind\":\"histogram\",\"count\":{count},\"sum_us\":{sum_us},\"buckets\":[");
                        for (i, (bound, n)) in buckets.iter().enumerate() {
                            if i > 0 {
                                s.push(',');
                            }
                            if *bound == u64::MAX {
                                let _ = write!(s, "[null,{n}]");
                            } else {
                                let _ = write!(s, "[{bound},{n}]");
                            }
                        }
                        s.push(']');
                    }
                }
                s.push('}');
            }
        }
        s
    }
}

fn opt_u64(v: Option<u64>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

fn push_attrs(s: &mut String, attrs: &Attrs) {
    if attrs.is_empty() {
        return;
    }
    s.push_str(",\"attrs\":{");
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&json_str(k));
        s.push(':');
        match v {
            AttrValue::Int(v) => {
                let _ = write!(s, "{v}");
            }
            AttrValue::Uint(v) => {
                let _ = write!(s, "{v}");
            }
            AttrValue::Float(v) => {
                if v.is_finite() {
                    let _ = write!(s, "{v}");
                } else {
                    s.push_str("null");
                }
            }
            AttrValue::Str(v) => s.push_str(&json_str(v)),
            AttrValue::Bool(v) => {
                let _ = write!(s, "{v}");
            }
        }
    }
    s.push('}');
}

/// Escapes a string for inclusion in JSON output, quotes included.
fn json_str(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 2);
    out.push('"');
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A sink for finished [`Record`]s. See the module docs for the contract.
pub trait Recorder: Send + Sync {
    /// Accepts one finished record.
    fn record(&self, record: Record);

    /// Persists buffered records, if the sink buffers. Default: no-op.
    fn flush(&self) {}
}

/// A recorder that buffers every record in memory, for tests and for
/// post-run analysis (e.g. the `repro` phase breakdown).
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    records: Mutex<Vec<Record>>,
}

impl MemoryRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a copy of everything recorded so far.
    pub fn records(&self) -> Vec<Record> {
        self.records.lock().expect("recorder lock").clone()
    }

    /// Drains and returns everything recorded so far.
    pub fn take(&self) -> Vec<Record> {
        std::mem::take(&mut *self.records.lock().expect("recorder lock"))
    }

    /// Returns only the spans recorded so far, in completion order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.records
            .lock()
            .expect("recorder lock")
            .iter()
            .filter_map(|r| match r {
                Record::Span(s) => Some(s.clone()),
                _ => None,
            })
            .collect()
    }

    /// Returns only the events recorded so far, in emission order.
    pub fn events(&self) -> Vec<EventRecord> {
        self.records
            .lock()
            .expect("recorder lock")
            .iter()
            .filter_map(|r| match r {
                Record::Event(e) => Some(e.clone()),
                _ => None,
            })
            .collect()
    }
}

impl Recorder for MemoryRecorder {
    fn record(&self, record: Record) {
        self.records.lock().expect("recorder lock").push(record);
    }
}

/// A recorder that streams each record as one JSON object per line.
///
/// The writer is wrapped in a [`std::io::BufWriter`]; call
/// [`Recorder::flush`] (or drop the tracer) at the end of a run to make
/// sure everything hits the file. Write errors are counted, not
/// propagated — a broken trace file must never fail the query it was
/// observing.
pub struct JsonLinesRecorder<W: std::io::Write + Send> {
    out: Mutex<std::io::BufWriter<W>>,
    errors: std::sync::atomic::AtomicU64,
}

impl JsonLinesRecorder<std::fs::File> {
    /// Creates (truncating) `path` and streams records to it.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(Self::from_writer(std::fs::File::create(path)?))
    }
}

impl<W: std::io::Write + Send> JsonLinesRecorder<W> {
    /// Wraps an arbitrary writer (e.g. a `Vec<u8>` in tests).
    pub fn from_writer(w: W) -> Self {
        JsonLinesRecorder {
            out: Mutex::new(std::io::BufWriter::new(w)),
            errors: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Number of records dropped because the underlying writer errored.
    pub fn write_errors(&self) -> u64 {
        self.errors.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl<W: std::io::Write + Send> Recorder for JsonLinesRecorder<W> {
    fn record(&self, record: Record) {
        let line = record.to_json_line();
        let mut out = self.out.lock().expect("recorder lock");
        if writeln!(out, "{line}").is_err() {
            self.errors.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("recorder lock").flush();
    }
}

impl<W: std::io::Write + Send> Drop for JsonLinesRecorder<W> {
    fn drop(&mut self) {
        Recorder::flush(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("plain"), "\"plain\"");
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_str("line\nfeed\ttab"), "\"line\\nfeed\\ttab\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn span_json_shape() {
        let r = Record::Span(SpanRecord {
            id: 3,
            parent: Some(1),
            name: "exec.query".into(),
            start_us: 10,
            elapsed_us: 25,
            attrs: vec![
                ("rows".into(), AttrValue::Uint(7)),
                ("sel".into(), AttrValue::Float(0.5)),
                ("phase".into(), AttrValue::Str("presence".into())),
            ],
        });
        assert_eq!(
            r.to_json_line(),
            "{\"type\":\"span\",\"id\":3,\"parent\":1,\"name\":\"exec.query\",\
             \"start_us\":10,\"elapsed_us\":25,\
             \"attrs\":{\"rows\":7,\"sel\":0.5,\"phase\":\"presence\"}}"
        );
    }

    #[test]
    fn event_without_attrs_omits_attrs_key() {
        let r = Record::Event(EventRecord {
            parent: None,
            name: "ppa.cut".into(),
            at_us: 99,
            attrs: vec![],
        });
        assert_eq!(
            r.to_json_line(),
            "{\"type\":\"event\",\"parent\":null,\"name\":\"ppa.cut\",\"at_us\":99}"
        );
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        let r = Record::Event(EventRecord {
            parent: None,
            name: "e".into(),
            at_us: 0,
            attrs: vec![("x".into(), AttrValue::Float(f64::NAN))],
        });
        assert!(r.to_json_line().contains("\"x\":null"));
    }

    #[test]
    fn jsonl_recorder_writes_one_line_per_record() {
        let rec = JsonLinesRecorder::from_writer(Vec::new());
        rec.record(Record::Event(EventRecord {
            parent: None,
            name: "a".into(),
            at_us: 1,
            attrs: vec![],
        }));
        rec.record(Record::Metric(MetricRecord {
            name: "m".into(),
            value: MetricValue::Counter(2),
        }));
        rec.flush();
        let buf = {
            let guard = rec.out.lock().expect("lock");
            guard.get_ref().clone()
        };
        let text = String::from_utf8(buf).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
    }
}
