//! The [`Tracer`] and its RAII [`Span`] guard.
//!
//! A tracer is either *enabled* (wraps a [`Recorder`]) or *disabled*
//! (the default). Disabled tracers are a single `Option` check on every
//! call — instrumented code pays nothing when nobody is listening, so the
//! engine can keep its instrumentation unconditionally compiled in.
//!
//! Span nesting is tracked with an explicit stack inside the tracer, not
//! thread-locals: the engine is single-threaded by design (see the scope
//! notes in `README.md`), and an explicit stack keeps the crate free of
//! global state. Opening spans from multiple threads on one tracer is
//! safe (everything is behind a mutex) but will interleave parents
//! unpredictably; give each thread its own tracer instead.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::metrics::MetricsRegistry;
use crate::recorder::{AttrValue, Attrs, EventRecord, Record, Recorder, SpanRecord};

struct Inner {
    recorder: Arc<dyn Recorder>,
    epoch: Instant,
    next_id: AtomicU64,
    stack: Mutex<Vec<u64>>,
}

/// Cheaply clonable handle that assembles spans and events and forwards
/// them to its [`Recorder`]. See the module docs.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer").field("enabled", &self.is_enabled()).finish()
    }
}

impl Tracer {
    /// A tracer that records nothing. Every operation is a no-op.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// A tracer that forwards finished spans and events to `recorder`.
    /// The tracer's epoch (time zero for all `start_us`/`at_us` offsets)
    /// is the moment of this call.
    pub fn new(recorder: Arc<dyn Recorder>) -> Tracer {
        Tracer {
            inner: Some(Arc::new(Inner {
                recorder,
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
                stack: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Whether spans/events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span. The span records itself when dropped (or when
    /// [`Span::finish`] is called); spans opened while it is live become
    /// its children. On a disabled tracer this is free.
    pub fn span(&self, name: &str) -> Span {
        let Some(inner) = &self.inner else {
            return Span { inner: None, id: 0, parent: None, name: String::new(), start: None, attrs: Vec::new() };
        };
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = {
            let mut stack = inner.stack.lock().expect("span stack");
            let parent = stack.last().copied();
            stack.push(id);
            parent
        };
        Span {
            inner: Some(inner.clone()),
            id,
            parent,
            name: name.to_string(),
            start: Some(Instant::now()),
            attrs: Vec::new(),
        }
    }

    /// Emits a point-in-time event, parented to the innermost open span.
    pub fn event(&self, name: &str, attrs: &[(&str, AttrValue)]) {
        let Some(inner) = &self.inner else { return };
        let parent = inner.stack.lock().expect("span stack").last().copied();
        inner.recorder.record(Record::Event(EventRecord {
            parent,
            name: name.to_string(),
            at_us: inner.epoch.elapsed().as_micros() as u64,
            attrs: attrs.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
        }));
    }

    /// Snapshots `metrics` and records one [`Record::Metric`] per metric.
    /// Typically called once at the end of a traced run.
    pub fn record_metrics(&self, metrics: &MetricsRegistry) {
        let Some(inner) = &self.inner else { return };
        for m in metrics.snapshot() {
            inner.recorder.record(Record::Metric(m));
        }
    }

    /// Flushes the underlying recorder.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.recorder.flush();
        }
    }
}

/// RAII guard for an open span. Records a [`SpanRecord`] on drop.
///
/// The guard is deliberately not `Clone`: one open span, one owner.
#[must_use = "a span measures the scope it lives in; binding it to `_` drops it immediately"]
pub struct Span {
    inner: Option<Arc<Inner>>,
    id: u64,
    parent: Option<u64>,
    name: String,
    start: Option<Instant>,
    attrs: Attrs,
}

impl Span {
    /// The span's id (0 on a disabled tracer). Useful in tests.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Attaches an attribute. Later writes to the same key append rather
    /// than overwrite — readers take the last occurrence.
    pub fn attr(&mut self, key: &str, value: impl Into<AttrValue>) {
        if self.inner.is_some() {
            self.attrs.push((key.to_string(), value.into()));
        }
    }

    /// Closes the span now (identical to dropping it, but reads better
    /// at call sites that end a phase mid-function).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else { return };
        {
            let mut stack = inner.stack.lock().expect("span stack");
            // Normal case: we are the innermost span. If spans were
            // dropped out of order, fall back to removing our id
            // wherever it sits so the stack never leaks entries.
            if stack.last() == Some(&self.id) {
                stack.pop();
            } else {
                stack.retain(|&id| id != self.id);
            }
        }
        let start = self.start.unwrap_or_else(Instant::now);
        let start_us = start.saturating_duration_since(inner.epoch).as_micros() as u64;
        inner.recorder.record(Record::Span(SpanRecord {
            id: self.id,
            parent: self.parent,
            name: std::mem::take(&mut self.name),
            start_us,
            elapsed_us: start.elapsed().as_micros() as u64,
            attrs: std::mem::take(&mut self.attrs),
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::MemoryRecorder;

    #[test]
    fn disabled_tracer_records_nothing_and_is_cheap() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        let mut s = t.span("anything");
        s.attr("k", 1u64);
        drop(s);
        t.event("e", &[]);
        t.flush();
    }

    #[test]
    fn nesting_assigns_parents() {
        let rec = Arc::new(MemoryRecorder::new());
        let t = Tracer::new(rec.clone());
        {
            let outer = t.span("outer");
            {
                let _inner = t.span("inner");
            }
            t.event("tick", &[]);
            drop(outer);
        }
        let spans = rec.spans();
        assert_eq!(spans.len(), 2);
        // Completion order: inner first.
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[0].parent, Some(spans[1].id));
        assert_eq!(spans[1].name, "outer");
        assert_eq!(spans[1].parent, None);
        let events = rec.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].parent, Some(spans[1].id));
    }

    #[test]
    fn sibling_spans_share_a_parent() {
        let rec = Arc::new(MemoryRecorder::new());
        let t = Tracer::new(rec.clone());
        let root = t.span("root");
        let root_id = root.id();
        for _ in 0..3 {
            let _child = t.span("child");
        }
        drop(root);
        let spans = rec.spans();
        assert_eq!(spans.iter().filter(|s| s.parent == Some(root_id)).count(), 3);
    }

    #[test]
    fn out_of_order_drop_does_not_leak_stack_entries() {
        let rec = Arc::new(MemoryRecorder::new());
        let t = Tracer::new(rec.clone());
        let a = t.span("a");
        let b = t.span("b");
        drop(a); // dropped before its child
        drop(b);
        let _after = t.span("after");
        drop(_after);
        let spans = rec.spans();
        // `after` must be a root span: the stack recovered.
        let after = spans.iter().find(|s| s.name == "after").expect("after span");
        assert_eq!(after.parent, None);
    }

    #[test]
    fn attrs_round_trip() {
        let rec = Arc::new(MemoryRecorder::new());
        let t = Tracer::new(rec.clone());
        let mut s = t.span("s");
        s.attr("rows", 42u64);
        s.attr("name", "scan");
        drop(s);
        let spans = rec.spans();
        assert_eq!(spans[0].attrs[0], ("rows".to_string(), AttrValue::Uint(42)));
        assert_eq!(spans[0].attrs[1], ("name".to_string(), AttrValue::Str("scan".into())));
    }
}
