//! `qp-server` — serves personalized queries over TCP.
//!
//! ```text
//! $ qp-server 127.0.0.1:7878 --movies 2000 --data-dir /var/lib/qp
//! qp-server listening on 127.0.0.1:7878 (2000-movie database)
//! ```
//!
//! With `--data-dir`, registered profiles survive restarts: the store
//! recovers the directory at startup (reporting what crash recovery
//! kept) and logs every registration before acknowledging it.
//!
//! The process serves until stdin reaches EOF (or the process is
//! killed), then drains gracefully — `echo | qp-server` starts, serves
//! nothing, and exits cleanly, which is what the scripted smoke test
//! leans on.

use std::io::Read;
use std::sync::Arc;
use std::time::Duration;

use qp_server::testsupport::fixture_db;
use qp_server::{Server, ServerConfig};
use qp_storage::SnapshotStore;

fn main() {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut movies = 2_000usize;
    let mut data_dir: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--movies" => {
                movies = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--movies wants a number"));
            }
            "--data-dir" => {
                data_dir = Some(
                    args.next()
                        .filter(|v| !v.is_empty())
                        .map(std::path::PathBuf::from)
                        .unwrap_or_else(|| usage("--data-dir wants a path")),
                );
            }
            "--help" | "-h" => usage(""),
            other if other.starts_with('-') => usage(&format!("unknown flag {other}")),
            other => addr = other.to_string(),
        }
    }

    let config = ServerConfig {
        addr,
        idle_timeout: Duration::from_secs(60),
        data_dir: data_dir.clone(),
        ..ServerConfig::default()
    };
    let store = Arc::new(SnapshotStore::new(fixture_db(movies)));
    let mut server = match Server::start(config, store) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("qp-server: cannot start: {e}");
            std::process::exit(1);
        }
    };
    println!("qp-server listening on {} ({movies}-movie database)", server.local_addr());
    if let Some(report) = server.profiles().recovery() {
        println!(
            "qp-server: recovered {} profiles from {} ({} log records{}, {} ms)",
            server.profiles().len(),
            data_dir.as_deref().unwrap_or_else(|| std::path::Path::new("?")).display(),
            report.records_kept,
            if report.tail_repaired { ", torn tail repaired" } else { "" },
            report.elapsed_us / 1_000,
        );
    }

    // Serve until stdin closes, then drain.
    let mut sink = Vec::new();
    std::io::stdin().read_to_end(&mut sink).ok();
    let report = server.shutdown();
    println!(
        "qp-server: shut down (drained {}, aborted {}, {} profiles durable)",
        report.drained, report.aborted, report.profiles_flushed
    );
}

fn usage(error: &str) -> ! {
    if !error.is_empty() {
        eprintln!("qp-server: {error}");
    }
    eprintln!("usage: qp-server [addr] [--movies N] [--data-dir PATH]");
    std::process::exit(if error.is_empty() { 0 } else { 2 });
}
