#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

//! # qp-server
//!
//! A threaded TCP server exposing the personalization engine over the qp
//! wire protocol (length-prefixed JSON frames; see `qp_client::wire`).
//! One thread per connection, one request in flight per connection,
//! backed by `Personalizer::serving(Arc<SnapshotStore>)` so writers can
//! publish new database epochs while requests are in flight.
//!
//! Robustness is the point of this crate, not a bolt-on:
//!
//! * **Deadlines** — the wait for a frame header runs under
//!   [`ServerConfig::idle_timeout`]; frame bodies and response writes run
//!   under the tighter [`ServerConfig::io_timeout`], so a stalled client
//!   cannot pin a handler thread.
//! * **Admission before parsing** — every frame buys an admission permit
//!   *before* its JSON is parsed; a shed request is answered with a
//!   typed `overloaded` error having cost nothing downstream. The accept
//!   loop sheds whole connections the same way once
//!   [`ServerConfig::max_connections`] is reached.
//! * **Frame hygiene** — oversized frames are rejected from the header
//!   alone (the payload is never read) and malformed payloads get a
//!   typed error; both poison only the offending connection.
//! * **Panic isolation** — request dispatch runs under `catch_unwind`;
//!   a panicking handler turns into an `internal` protocol error and a
//!   closed connection while the server keeps serving.
//! * **Graceful shutdown** — [`Server::shutdown`] stops accepting,
//!   drains in-flight requests under [`ServerConfig::drain_timeout`],
//!   then severs straggler connections.
//!
//! Under the `failpoints` feature the connection loop passes the
//! `net.read`, `net.write`, and `net.write.short` chaos sites
//! (`qp_storage::ChaosPlan::wire_default`), injecting read/write aborts,
//! delays, and torn mid-frame writes.

pub mod testsupport;

use std::collections::HashMap;
use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

use qp_client::json::Json;
use qp_client::wire::{
    self, Answer, ErrorCode, FrameError, Request, Response, WireError, WireTuple,
    DEFAULT_MAX_FRAME,
};
use qp_core::{
    AdmissionConfig, AdmissionController, AnswerAlgorithm, BreakerConfig, Maintainer,
    PersistOptions, PersonalizationOptions, PersonalizeRequest, Personalizer, PrefError,
    Profile, ProfileStore, Resilience, RetryPolicy, SelectionCriterion, UserId,
};
use qp_obs::{MetricValue, MetricsRegistry};
use qp_storage::{failpoint, DataType, DbDelta, SnapshotStore, Value};

/// Server tuning knobs. `Default` is sized for tests and small
/// deployments; the benches and the binary override the geometry.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`"127.0.0.1:0"` picks an ephemeral port).
    pub addr: String,
    /// Open-connection bound; further connects are shed with a typed
    /// `overloaded` error before any frame is read.
    pub max_connections: usize,
    /// Largest accepted frame payload, in bytes.
    pub max_frame: usize,
    /// Deadline for frame-body reads and response writes.
    pub io_timeout: Duration,
    /// How long a connection may sit idle between frames.
    pub idle_timeout: Duration,
    /// How long [`Server::shutdown`] waits for in-flight requests.
    pub drain_timeout: Duration,
    /// Per-request admission geometry (permits acquired before parsing).
    pub admission: AdmissionConfig,
    /// Circuit breaker shared by every connection's personalizer;
    /// `None` disables breaking.
    pub breaker: Option<BreakerConfig>,
    /// Seed for the shared transient-error retry policy; `None`
    /// disables retries.
    pub retry_seed: Option<u64>,
    /// Top-K preferences selected when a request does not say.
    pub default_k: usize,
    /// Minimum satisfied preferences when a request does not say.
    pub default_l: usize,
    /// Directory for the durable profile store. `None` (the default)
    /// keeps profiles in memory only; `Some(dir)` recovers registered
    /// profiles from `dir` at startup and logs every registration
    /// before acknowledging it (see DESIGN.md §"Durability & recovery").
    pub data_dir: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 256,
            max_frame: DEFAULT_MAX_FRAME,
            io_timeout: Duration::from_secs(2),
            idle_timeout: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(2),
            admission: AdmissionConfig::default(),
            breaker: Some(BreakerConfig::default()),
            retry_seed: Some(0x9d5e),
            default_k: 5,
            default_l: 1,
            data_dir: None,
        }
    }
}

/// What [`Server::shutdown`] managed to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShutdownReport {
    /// In-flight requests that completed inside the drain window.
    pub drained: usize,
    /// In-flight requests severed when the window expired.
    pub aborted: usize,
    /// Registered profiles that were durable on disk when the server
    /// exited (the profile store's buffered log records flushed and
    /// fsynced during drain). Always 0 without a `data_dir`.
    pub profiles_flushed: u64,
}

struct Shared {
    config: ServerConfig,
    store: Arc<SnapshotStore>,
    /// One profile store for the whole server: profiles registered on
    /// any connection are visible to every connection, addressed by the
    /// store-assigned user id, and held as compact encoded blobs until a
    /// request first decodes them.
    profiles: Arc<ProfileStore>,
    /// One maintenance engine for the whole server: serializes delta
    /// publishes and patches every connection's materialized preference
    /// results (all personalizers share its registry) instead of letting
    /// an epoch bump recompute them from scratch.
    maintainer: Maintainer,
    metrics: Arc<MetricsRegistry>,
    admission: AdmissionController,
    resilience: Arc<Resilience>,
    shutting_down: AtomicBool,
    in_flight: AtomicUsize,
    connections: AtomicUsize,
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
}

impl Shared {
    fn count(&self, name: &str) {
        self.metrics.counter(name).inc();
    }
}

/// A running server. Dropping it shuts it down.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_thread: Option<thread::JoinHandle<()>>,
    shutdown_report: Option<ShutdownReport>,
}

impl Server {
    /// Binds, spawns the accept loop, and returns immediately.
    pub fn start(config: ServerConfig, store: Arc<SnapshotStore>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let mut resilience = Resilience::new();
        if let Some(breaker) = config.breaker {
            resilience = resilience.with_breaker(breaker);
        }
        if let Some(seed) = config.retry_seed {
            resilience = resilience.with_retry(RetryPolicy::quick(seed));
        }
        let metrics = Arc::new(MetricsRegistry::new());
        let profiles = match &config.data_dir {
            Some(dir) => {
                let options = PersistOptions::from_env().metrics(Arc::clone(&metrics));
                let store = ProfileStore::open_with(dir, options).map_err(|e| {
                    std::io::Error::other(format!(
                        "profile store at {}: {e}",
                        dir.display()
                    ))
                })?;
                Arc::new(store)
            }
            None => Arc::new(ProfileStore::new().with_metrics(Arc::clone(&metrics))),
        };
        let maintainer = Maintainer::new(Arc::clone(&store))
            .with_metrics(Arc::clone(&metrics))
            .with_profile_store(Arc::clone(&profiles));
        let shared = Arc::new(Shared {
            admission: AdmissionController::new(config.admission),
            config,
            store,
            profiles,
            maintainer,
            metrics,
            resilience: Arc::new(resilience),
            shutting_down: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            connections: AtomicUsize::new(0),
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(0),
        });

        let accept_shared = Arc::clone(&shared);
        let accept_thread = thread::Builder::new()
            .name("qp-server-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared))?;

        Ok(Server { shared, addr, accept_thread: Some(accept_thread), shutdown_report: None })
    }

    /// The bound address (the real port when the config asked for `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics registry (`server.*` families; see
    /// OBSERVABILITY.md).
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.shared.metrics)
    }

    /// Open connections right now.
    pub fn open_connections(&self) -> usize {
        self.shared.connections.load(Ordering::Acquire)
    }

    /// Requests currently being processed.
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::Acquire)
    }

    /// The server-wide profile store (durable when the config named a
    /// `data_dir`). Exposed for restart tests and operator tooling.
    pub fn profiles(&self) -> Arc<ProfileStore> {
        Arc::clone(&self.shared.profiles)
    }

    /// Graceful shutdown: stop accepting, drain in-flight requests under
    /// the configured [`ServerConfig::drain_timeout`], then sever every
    /// remaining connection (aborting stragglers). Idempotent.
    pub fn shutdown(&mut self) -> ShutdownReport {
        if let Some(report) = self.shutdown_report {
            return report;
        }
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            handle.join().ok();
        }

        let initial = self.shared.in_flight.load(Ordering::Acquire);
        let deadline = Instant::now() + self.shared.config.drain_timeout;
        while self.shared.in_flight.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(1));
        }
        let remaining = self.shared.in_flight.load(Ordering::Acquire);

        // Sever every connection: wakes handlers idling for the next
        // frame, and aborts whatever the drain window did not cover.
        {
            let mut conns =
                self.shared.conns.lock().unwrap_or_else(PoisonError::into_inner);
            for (_, stream) in conns.drain() {
                stream.shutdown(std::net::Shutdown::Both).ok();
            }
        }
        // Handlers exit on their next read/write against the severed
        // socket; give them a short, bounded window to unwind.
        let grace = Instant::now() + Duration::from_millis(500);
        while self.shared.connections.load(Ordering::Acquire) > 0 && Instant::now() < grace {
            thread::sleep(Duration::from_millis(1));
        }

        // With every connection gone, push buffered registration records
        // to disk so a restart recovers everything that was acknowledged.
        // A flush failure (disk fault during drain) degrades the store
        // read-only; the report then says 0 profiles made it down.
        let profiles_flushed = if self.shared.profiles.is_durable()
            && self.shared.profiles.flush().is_ok()
        {
            self.shared.profiles.len() as u64
        } else {
            0
        };

        let report = ShutdownReport {
            drained: initial.saturating_sub(remaining),
            aborted: remaining,
            profiles_flushed,
        };
        self.shared
            .metrics
            .counter("server.shutdown.drained")
            .add(report.drained as u64);
        self.shared
            .metrics
            .counter("server.shutdown.aborted")
            .add(report.aborted as u64);
        self.shutdown_report = Some(report);
        report
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        if shared.shutting_down.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.count("server.connections.accepted");
                if shared.connections.load(Ordering::Acquire)
                    >= shared.config.max_connections
                {
                    shed_connection(&shared, stream);
                    continue;
                }
                spawn_handler(&shared, stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Accept-level shedding: the connection bound is hit, so the brand-new
/// peer gets one typed `overloaded` frame and a half-close — nothing of
/// theirs is ever parsed. The frame write and the post-write drain run
/// on a detached thread so a stalled peer can never wedge the accept
/// loop; if no thread can be spawned the stream just drops (reset).
fn shed_connection(shared: &Shared, mut stream: TcpStream) {
    shared.count("server.connections.shed");
    let error = WireError {
        code: ErrorCode::Overloaded,
        message: format!(
            "{} connections open (limit {})",
            shared.connections.load(Ordering::Acquire),
            shared.config.max_connections
        ),
        retryable: true,
    };
    let io_timeout = shared.config.io_timeout;
    thread::Builder::new()
        .name("qp-server-shed".to_string())
        .spawn(move || {
            stream.set_write_timeout(Some(io_timeout)).ok();
            if wire::write_frame(&mut stream, &error.to_json()).is_err() {
                return;
            }
            // Half-close, then drain whatever the peer already sent: a
            // full close with unread peer bytes degrades into an RST
            // that can destroy the typed frame before the peer reads it.
            stream.shutdown(std::net::Shutdown::Write).ok();
            stream.set_read_timeout(Some(io_timeout)).ok();
            let deadline = Instant::now() + io_timeout;
            let mut sink = [0u8; 512];
            while Instant::now() < deadline {
                match stream.read(&mut sink) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {}
                }
            }
        })
        .ok();
}

fn spawn_handler(shared: &Arc<Shared>, stream: TcpStream) {
    let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
    if let Ok(clone) = stream.try_clone() {
        shared
            .conns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(conn_id, clone);
    }
    shared.connections.fetch_add(1, Ordering::AcqRel);
    shared
        .metrics
        .gauge("server.connections.open")
        .set(shared.connections.load(Ordering::Acquire) as i64);

    let handler_shared = Arc::clone(shared);
    let spawned = thread::Builder::new()
        .name(format!("qp-server-conn-{conn_id}"))
        .spawn(move || {
            handle_connection(&handler_shared, stream, conn_id);
            handler_shared
                .conns
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .remove(&conn_id);
            handler_shared.connections.fetch_sub(1, Ordering::AcqRel);
            handler_shared
                .metrics
                .gauge("server.connections.open")
                .set(handler_shared.connections.load(Ordering::Acquire) as i64);
        });
    if spawned.is_err() {
        // Thread spawn failed (fd/thread exhaustion): roll the
        // registration back; the stream drops and the peer sees a reset.
        shared
            .conns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&conn_id);
        shared.connections.fetch_sub(1, Ordering::AcqRel);
        shared.count("server.connections.spawn_failed");
    }
}

/// Why the per-connection loop ended; only used to decide metrics.
enum ConnExit {
    Clean,
    IdleTimeout,
    ReadError,
    WriteError,
    Poisoned,
    ChaosAbort,
    ShuttingDown,
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream, _conn_id: u64) {
    stream.set_nodelay(true).ok();
    stream.set_write_timeout(Some(shared.config.io_timeout)).ok();
    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            shared.count("server.connections.read_errors");
            return;
        }
    };
    let mut reader = BufReader::new(reader_stream);
    let mut writer = stream;
    // The personalizer is built lazily: ping-only probes (and the load
    // generator's stall clients) never pay for an engine.
    let mut personalizer: Option<Personalizer<'static>> = None;

    let exit = connection_loop(shared, &mut reader, &mut writer, &mut personalizer);
    match exit {
        ConnExit::Clean | ConnExit::ShuttingDown => {}
        ConnExit::IdleTimeout => shared.count("server.connections.idle_closed"),
        ConnExit::ReadError => shared.count("server.connections.read_errors"),
        ConnExit::WriteError => shared.count("server.connections.write_errors"),
        ConnExit::Poisoned => shared.count("server.connections.poisoned"),
        ConnExit::ChaosAbort => shared.count("server.connections.chaos_aborted"),
    }
}

fn connection_loop(
    shared: &Arc<Shared>,
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    personalizer: &mut Option<Personalizer<'static>>,
) -> ConnExit {
    loop {
        // Waiting for the next frame runs under the idle timeout; once a
        // header arrives, the body must land within the I/O deadline.
        reader.get_ref().set_read_timeout(Some(shared.config.idle_timeout)).ok();
        if failpoint::check("net.read").is_err() {
            return ConnExit::ChaosAbort;
        }
        let declared = match wire::read_header(reader, shared.config.max_frame) {
            Ok(declared) => declared,
            Err(FrameError::Closed) => return ConnExit::Clean,
            Err(FrameError::TooLarge { declared, limit }) => {
                shared.count("server.frames.too_large");
                let error = WireError {
                    code: ErrorCode::FrameTooLarge,
                    message: format!("frame of {declared} bytes exceeds the {limit}-byte limit"),
                    retryable: false,
                };
                write_response(shared, writer, &Response::Error(error)).ok();
                return ConnExit::Poisoned;
            }
            Err(FrameError::Io(e)) if is_timeout(&e) => return ConnExit::IdleTimeout,
            Err(_) => return ConnExit::ReadError,
        };
        reader.get_ref().set_read_timeout(Some(shared.config.io_timeout)).ok();
        let frame = match wire::read_body(reader, declared) {
            Ok(frame) => frame,
            Err(FrameError::Malformed(m)) => {
                shared.count("server.frames.malformed");
                let error = WireError {
                    code: ErrorCode::BadFrame,
                    message: m,
                    retryable: false,
                };
                write_response(shared, writer, &Response::Error(error)).ok();
                return ConnExit::Poisoned;
            }
            Err(FrameError::Io(e)) if is_timeout(&e) => return ConnExit::IdleTimeout,
            Err(_) => return ConnExit::ReadError,
        };
        shared.count("server.frames.received");

        if shared.shutting_down.load(Ordering::Acquire) {
            let error = WireError {
                code: ErrorCode::ShuttingDown,
                message: "server is draining".to_string(),
                retryable: true,
            };
            write_response(shared, writer, &Response::Error(error)).ok();
            return ConnExit::ShuttingDown;
        }

        // Admission strictly before parsing: a shed frame costs the
        // server nothing beyond the buffered bytes.
        let permit = match shared.admission.try_acquire() {
            Ok(permit) => permit,
            Err(shed) => {
                shared.count("server.shed");
                let error = WireError {
                    code: ErrorCode::Overloaded,
                    message: format!(
                        "{} in flight after waiting {:?}",
                        shed.in_flight, shed.waited
                    ),
                    retryable: true,
                };
                match write_response(shared, writer, &Response::Error(error)) {
                    Ok(()) => continue,
                    Err(exit) => return exit,
                }
            }
        };

        let request = match Request::from_json(&frame) {
            Ok(request) => request,
            Err(m) => {
                drop(permit);
                shared.count("server.requests.bad");
                let error =
                    WireError { code: ErrorCode::BadRequest, message: m, retryable: false };
                match write_response(shared, writer, &Response::Error(error)) {
                    Ok(()) => continue,
                    Err(exit) => return exit,
                }
            }
        };

        // A request stays in flight until its response bytes are written:
        // the shutdown drain waits on this counter, and severing the
        // socket between dispatch and write would lose a drained answer.
        shared.in_flight.fetch_add(1, Ordering::AcqRel);
        let start = Instant::now();
        let dispatched = std::panic::catch_unwind(AssertUnwindSafe(|| {
            dispatch(shared, personalizer, request)
        }));

        let (response, close_after) = match dispatched {
            Ok(response) => {
                shared.metrics.histogram("server.request_us").observe(start.elapsed());
                (response, false)
            }
            Err(panic) => {
                // The request died; the server must not. The panicking
                // handler may have wedged its personalizer mid-request,
                // so rebuild it on the next use.
                *personalizer = None;
                shared.count("server.panics");
                let message = panic
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "request handler panicked".to_string());
                let error =
                    WireError { code: ErrorCode::Internal, message, retryable: false };
                (Response::Error(error), true)
            }
        };

        let written = write_response(shared, writer, &response);
        shared.in_flight.fetch_sub(1, Ordering::AcqRel);
        drop(permit);
        if let Err(exit) = written {
            return exit;
        }
        if close_after {
            return ConnExit::Poisoned;
        }
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

/// Writes one response frame, passing the `net.write` /
/// `net.write.short` chaos sites: an injected `net.write` error aborts
/// the connection before any bytes; `net.write.short` emits a torn frame
/// (header plus half the payload) and then severs, which the peer must
/// surface as an I/O error, never as a parsed response.
///
/// The frame limit is enforced on writes as well as reads: a response
/// that encodes larger than `max_frame` (a personalized answer over a
/// broad query can carry tens of thousands of ranked tuples) is replaced
/// with a typed `answer_too_large` error rather than sent as a frame the
/// peer is entitled to refuse. The connection stays usable.
fn write_response(
    shared: &Shared,
    writer: &mut TcpStream,
    response: &Response,
) -> Result<(), ConnExit> {
    if failpoint::check("net.write").is_err() {
        shared.count("server.chaos.write_aborted");
        return Err(ConnExit::ChaosAbort);
    }
    let mut payload = response.to_json().to_string();
    if payload.len() > shared.config.max_frame {
        shared.count("server.responses.too_large");
        let error = WireError {
            code: ErrorCode::AnswerTooLarge,
            message: format!(
                "response of {} bytes exceeds the {}-byte frame limit; narrow the query \
                 or serve with a larger max_frame",
                payload.len(),
                shared.config.max_frame
            ),
            retryable: false,
        };
        payload = Response::Error(error).to_json().to_string();
    }
    if failpoint::check("net.write.short").is_err() {
        shared.count("server.chaos.torn_writes");
        let header = (payload.len() as u32).to_be_bytes();
        let half = payload.len() / 2;
        writer.write_all(&header).ok();
        writer.write_all(&payload.as_bytes()[..half]).ok();
        writer.flush().ok();
        writer.shutdown(std::net::Shutdown::Both).ok();
        return Err(ConnExit::ChaosAbort);
    }
    match wire::write_payload(writer, payload.as_bytes()) {
        Ok(()) => {
            shared.count("server.responses");
            Ok(())
        }
        Err(_) => {
            shared.count("server.connections.write_errors");
            Err(ConnExit::WriteError)
        }
    }
}

fn dispatch(
    shared: &Arc<Shared>,
    personalizer: &mut Option<Personalizer<'static>>,
    request: Request,
) -> Response {
    match request {
        Request::Ping => {
            shared.count("server.requests.ping");
            Response::Pong
        }
        Request::Stats => {
            shared.count("server.requests.stats");
            Response::Stats(encode_metrics(&shared.metrics))
        }
        Request::RegisterProfile { user, profile } => {
            let db = shared.store.snapshot();
            match Profile::parse(db.catalog(), &profile) {
                Ok(parsed) => {
                    let preferences = parsed.len() as u64;
                    let (user_id, version) = match shared.profiles.register_named(&user, &parsed)
                    {
                        Ok(pair) => pair,
                        Err(e) => {
                            // A disk fault mid-flight degraded the store to
                            // read-only: refuse the write with a typed code
                            // but keep serving reads on this connection.
                            shared.count("server.profiles.register_refused");
                            let code = match &e {
                                PrefError::Persist(_) => ErrorCode::ReadOnly,
                                _ => ErrorCode::BadRequest,
                            };
                            return Response::Error(WireError {
                                code,
                                message: format!("register: {e}"),
                                retryable: false,
                            });
                        }
                    };
                    // Precompute the user's selections for every catalog
                    // relation under the server's default options, so an
                    // early personalize request already resolves its
                    // selection phase as a store lookup. Runs off the
                    // registration critical path (the reply must not wait
                    // on selection algorithms) and best-effort: a failure
                    // or a lost race with re-registration only costs the
                    // warm start.
                    {
                        let shared = Arc::clone(shared);
                        std::thread::spawn(move || {
                            let db = shared.store.snapshot();
                            shared
                                .profiles
                                .precompute(user_id, db.catalog(), &default_options(&shared.config))
                                .ok();
                        });
                    }
                    shared.count("server.profiles.registered");
                    Response::ProfileRegistered {
                        user,
                        user_id: user_id.0,
                        version,
                        preferences,
                    }
                }
                Err(e) => Response::Error(WireError {
                    code: ErrorCode::BadRequest,
                    message: format!("profile: {e}"),
                    retryable: false,
                }),
            }
        }
        Request::PublishDelta { changes } => {
            let db = shared.store.snapshot();
            let mut delta = DbDelta::new();
            for slice in &changes {
                // Types guide number coercion only; a relation the catalog
                // cannot resolve converts generically and is rejected with
                // its proper error by the publish below.
                let types: Option<Vec<DataType>> = db
                    .catalog()
                    .relation_by_name(&slice.relation)
                    .ok()
                    .map(|rel| rel.attributes.iter().map(|a| a.data_type).collect());
                let convert = |rows: &[Vec<Json>]| -> Result<Vec<Vec<Value>>, String> {
                    rows.iter()
                        .map(|row| {
                            row.iter()
                                .enumerate()
                                .map(|(i, v)| {
                                    let want =
                                        types.as_ref().and_then(|t| t.get(i)).copied();
                                    json_to_value(v, want)
                                })
                                .collect()
                        })
                        .collect()
                };
                let (inserts, deletes) =
                    match (convert(&slice.inserts), convert(&slice.deletes)) {
                        (Ok(i), Ok(d)) => (i, d),
                        (Err(m), _) | (_, Err(m)) => {
                            shared.count("server.requests.delta_rejected");
                            return Response::Error(WireError {
                                code: ErrorCode::DeltaRejected,
                                message: format!("relation {:?}: {m}", slice.relation),
                                retryable: false,
                            });
                        }
                    };
                for row in deletes {
                    delta = delta.delete(&slice.relation, row);
                }
                for row in inserts {
                    delta = delta.insert(&slice.relation, row);
                }
            }
            match shared.maintainer.publish(&delta) {
                Ok((_, applied, outcome)) => {
                    shared.count("server.requests.publish_delta");
                    Response::DeltaApplied {
                        old_version: applied.old_version,
                        new_version: applied.new_version,
                        rows_inserted: applied.rows_inserted() as u64,
                        rows_deleted: applied.rows_deleted() as u64,
                        patched: outcome.patched,
                        carried: outcome.carried,
                        rematerialized: outcome.rematerialized,
                        dropped: outcome.dropped + outcome.stale,
                    }
                }
                Err(e) => {
                    shared.count("server.requests.delta_rejected");
                    Response::Error(WireError {
                        code: ErrorCode::DeltaRejected,
                        message: e.to_string(),
                        retryable: false,
                    })
                }
            }
        }
        Request::Personalize { user, user_id, sql, k, l, algorithm } => {
            let resolved = match user_id {
                Some(id) => Some(UserId(id)),
                None => shared.profiles.lookup_named(&user),
            };
            let Some(uid) = resolved else {
                shared.count("server.requests.unknown_user");
                return Response::Error(WireError {
                    code: ErrorCode::UnknownUser,
                    message: format!("no profile registered for {user:?}"),
                    retryable: false,
                });
            };
            let algorithm = match algorithm.as_deref() {
                None => None,
                Some("spa") => Some(AnswerAlgorithm::Spa),
                Some("ppa") => Some(AnswerAlgorithm::Ppa),
                Some(other) => {
                    return Response::Error(WireError {
                        code: ErrorCode::BadRequest,
                        message: format!("unknown algorithm {other:?} (want spa|ppa)"),
                        retryable: false,
                    })
                }
            };
            let p = personalizer.get_or_insert_with(|| {
                let mut p = Personalizer::serving(Arc::clone(&shared.store))
                    .with_profile_store(Arc::clone(&shared.profiles))
                    .with_maintenance(shared.maintainer.registry());
                p.set_resilience(Some(Arc::clone(&shared.resilience)));
                p
            });
            let mut options = default_options(&shared.config);
            if let Some(k) = k {
                options.criterion = SelectionCriterion::TopK(k as usize);
            }
            if let Some(l) = l {
                options.l = l as usize;
            }
            if let Some(algorithm) = algorithm {
                options.algorithm = algorithm;
            }
            let start = Instant::now();
            let run = p.run(PersonalizeRequest::user(uid, &sql).options(options));
            match run {
                Ok(outcome) => {
                    shared.count("server.requests.personalize");
                    let degraded = !outcome.is_complete() || outcome.resilience.short_circuited;
                    if degraded {
                        shared.count("server.degraded");
                    }
                    if outcome.resilience.short_circuited {
                        shared.count("server.short_circuited");
                    }
                    shared
                        .metrics
                        .counter("server.retries")
                        .add(u64::from(outcome.resilience.retries));
                    Response::Answer(Answer {
                        columns: outcome.report.answer.columns.clone(),
                        tuples: outcome
                            .report
                            .answer
                            .tuples
                            .iter()
                            .map(|t| WireTuple {
                                doi: t.doi,
                                row: t.row.iter().map(value_to_json).collect(),
                            })
                            .collect(),
                        degraded,
                        retries: u64::from(outcome.resilience.retries),
                        elapsed_us: start.elapsed().as_micros() as u64,
                    })
                }
                Err(e) => {
                    let (code, retryable) = match &e {
                        PrefError::Overloaded { .. } => (ErrorCode::Overloaded, true),
                        // The id-addressed profile vanished between the
                        // lookup and the run (or a stale id was replayed).
                        PrefError::UnknownUser { .. } => {
                            shared.count("server.requests.unknown_user");
                            (ErrorCode::UnknownUser, false)
                        }
                        other => (ErrorCode::Query, qp_core::is_transient(other)),
                    };
                    shared.count("server.requests.failed");
                    Response::Error(WireError { code, message: e.to_string(), retryable })
                }
            }
        }
    }
}

/// The options a request gets when it does not override anything — also
/// the options profile registration precomputes selections under, so
/// default-shaped requests hit the precomputed memo (the memo key
/// fingerprints the criterion, selection algorithm, and ranking).
fn default_options(config: &ServerConfig) -> PersonalizationOptions {
    PersonalizationOptions {
        criterion: SelectionCriterion::TopK(config.default_k),
        l: config.default_l,
        ..Default::default()
    }
}

/// Converts one wire value to a storage [`Value`], coercing numbers to
/// the column's declared type when the catalog knows it. Mismatches the
/// conversion cannot express (e.g. a fractional number for an `Int`
/// column) fall through as floats for the storage layer's type check to
/// reject with a precise error.
fn json_to_value(v: &Json, want: Option<DataType>) -> Result<Value, String> {
    Ok(match v {
        Json::Null => Value::Null,
        Json::Bool(b) => Value::Bool(*b),
        Json::Str(s) => Value::str(s.as_str()),
        Json::Num(n) => match want {
            Some(DataType::Float) => Value::Float(*n),
            _ if n.fract() == 0.0 && n.is_finite() => Value::Int(*n as i64),
            _ => Value::Float(*n),
        },
        other => return Err(format!("unsupported row value {other:?}")),
    })
}

fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Int(i) => Json::Num(*i as f64),
        Value::Float(f) => Json::Num(*f),
        Value::Str(s) => Json::Str(s.to_string()),
        Value::Bool(b) => Json::Bool(*b),
    }
}

fn encode_metrics(metrics: &MetricsRegistry) -> Vec<(String, Json)> {
    metrics
        .snapshot()
        .into_iter()
        .map(|record| {
            let value = match record.value {
                MetricValue::Counter(n) => Json::Num(n as f64),
                MetricValue::Gauge(n) => Json::Num(n as f64),
                MetricValue::Histogram { count, sum_us, .. } => Json::obj(vec![
                    ("count", Json::Num(count as f64)),
                    ("sum_us", Json::Num(sum_us as f64)),
                ]),
            };
            (record.name, value)
        })
        .collect()
}
