//! Test fixtures for wire-level server tests: an ephemeral-port server
//! over a small generated database, plus assertion macros.
//!
//! ```no_run
//! use qp_server::testsupport::TestServer;
//!
//! let mut ts = TestServer::spawn();
//! let mut client = ts.client();
//! client.ping().expect("server is up");
//! ts.shutdown();
//! ```

use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use qp_client::Client;
use qp_datagen::{self, ImdbScale};
use qp_obs::MetricValue;
use qp_storage::{Database, SnapshotStore};

use crate::{Server, ServerConfig, ShutdownReport};

/// A small IMDB-style database sized for fast wire tests.
pub fn fixture_db(movies: usize) -> Database {
    let db = qp_datagen::generate(ImdbScale {
        movies,
        actors: movies * 2,
        directors: (movies / 10).max(10),
        theatres: (movies / 50).max(5),
        plays_per_theatre: 25,
        seed: 42,
    });
    db.warm_statistics();
    db
}

/// The paper's Figure-2 profile, rendered in the DSL the wire protocol
/// registers profiles with.
pub fn als_profile_dsl(db: &Database) -> String {
    qp_datagen::als_profile(db)
        .expect("fixture database supports Al's profile")
        .to_dsl(db.catalog())
}

/// A `ServerConfig` with short timeouts suited to tests: requests stay
/// snappy, stalled-client tests don't take seconds, and the drain window
/// is long enough for one in-flight request.
pub fn quick_config() -> ServerConfig {
    ServerConfig {
        io_timeout: Duration::from_millis(500),
        idle_timeout: Duration::from_secs(5),
        drain_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    }
}

/// A live server on an ephemeral port plus handles to poke it with.
pub struct TestServer {
    server: Server,
    store: Arc<SnapshotStore>,
}

impl TestServer {
    /// Spawns a server over a fresh 300-movie fixture database with
    /// [`quick_config`].
    pub fn spawn() -> TestServer {
        TestServer::spawn_with(quick_config())
    }

    /// Spawns over the fixture database with a custom config.
    pub fn spawn_with(config: ServerConfig) -> TestServer {
        TestServer::spawn_on(config, Arc::new(SnapshotStore::new(fixture_db(300))))
    }

    /// Spawns over a caller-provided snapshot store.
    pub fn spawn_on(config: ServerConfig, store: Arc<SnapshotStore>) -> TestServer {
        let server = Server::start(config, Arc::clone(&store)).expect("bind ephemeral port");
        TestServer { server, store }
    }

    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// The snapshot store the server serves from.
    pub fn store(&self) -> &Arc<SnapshotStore> {
        &self.store
    }

    /// The running server.
    pub fn server(&self) -> &Server {
        &self.server
    }

    /// A connected typed client with a generous test deadline.
    pub fn client(&self) -> Client {
        Client::connect(self.addr(), Duration::from_secs(5)).expect("connect to test server")
    }

    /// A raw TCP stream for protocol-abuse tests (torn frames, stalls).
    pub fn raw_stream(&self) -> TcpStream {
        TcpStream::connect(self.addr()).expect("connect raw stream")
    }

    /// Current value of a `server.*` counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.server
            .metrics()
            .snapshot()
            .into_iter()
            .find(|r| r.name == name)
            .map(|r| match r.value {
                MetricValue::Counter(n) => n,
                _ => 0,
            })
            .unwrap_or(0)
    }

    /// Graceful shutdown; returns what the drain accomplished.
    pub fn shutdown(&mut self) -> ShutdownReport {
        self.server.shutdown()
    }
}

/// Polls `predicate` every millisecond until it holds or `timeout`
/// expires; panics with `what` on expiry.
pub fn wait_for(timeout: Duration, what: &str, mut predicate: impl FnMut() -> bool) {
    let deadline = std::time::Instant::now() + timeout;
    while !predicate() {
        assert!(std::time::Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Asserts that a client call failed with a typed server error carrying
/// the given [`qp_client::ErrorCode`]; evaluates to the [`qp_client::WireError`].
#[macro_export]
macro_rules! assert_server_error {
    ($result:expr, $code:expr) => {{
        match $result {
            Err(qp_client::ClientError::Server(e)) => {
                assert_eq!(e.code, $code, "unexpected error code: {e}");
                e
            }
            Err(other) => panic!("expected server error {:?}, got {other}", $code),
            Ok(_) => panic!("expected server error {:?}, got success", $code),
        }
    }};
}

/// Asserts that a client call failed at the I/O or protocol layer (the
/// connection died or broke framing) rather than with a typed server
/// error; evaluates to the [`qp_client::ClientError`].
#[macro_export]
macro_rules! assert_connection_broken {
    ($result:expr) => {{
        match $result {
            Err(
                e @ (qp_client::ClientError::Io(_) | qp_client::ClientError::Protocol(_)),
            ) => e,
            Err(qp_client::ClientError::Server(e)) => {
                panic!("expected a broken connection, got typed server error {e}")
            }
            Ok(_) => panic!("expected a broken connection, got success"),
        }
    }};
}
