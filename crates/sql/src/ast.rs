//! Abstract syntax tree for the SQL subset.
//!
//! The tree intentionally models exactly what the paper's rewriting needs:
//! SPJ selects joined by commas, `UNION ALL` bodies (SPA builds one
//! sub-query per preference and unions them), grouping with `HAVING
//! count(*) >= L`, ordering by a user-defined aggregate, and `(NOT) IN`
//! sub-queries for 1–n absence preferences.

/// A full query: a set-expression body plus ordering and limit.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The body: a single select or a `UNION ALL` chain.
    pub body: SetExpr,
    /// `ORDER BY` items applied to the body's result.
    pub order_by: Vec<OrderByItem>,
    /// Optional `LIMIT`.
    pub limit: Option<u64>,
}

impl Query {
    /// Wraps a single [`Select`] into a query with no ordering or limit.
    pub fn from_select(select: Select) -> Self {
        Query { body: SetExpr::Select(Box::new(select)), order_by: vec![], limit: None }
    }

    /// The selects of the body in order (one for a plain select, several
    /// for a union chain).
    pub fn selects(&self) -> Vec<&Select> {
        fn walk<'a>(e: &'a SetExpr, out: &mut Vec<&'a Select>) {
            match e {
                SetExpr::Select(s) => out.push(s),
                SetExpr::UnionAll(l, r) => {
                    walk(l, out);
                    out.push(r);
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.body, &mut out);
        out
    }
}

/// A query body.
#[derive(Debug, Clone, PartialEq)]
pub enum SetExpr {
    /// A plain `SELECT`.
    Select(Box<Select>),
    /// `left UNION ALL right` (left-associated chain).
    UnionAll(Box<SetExpr>, Box<Select>),
}

/// One `SELECT ... FROM ... WHERE ... GROUP BY ... HAVING ...` block.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Select {
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// Comma-joined table references.
    pub from: Vec<TableRef>,
    /// `WHERE` predicate.
    pub where_clause: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate.
    pub having: Option<Expr>,
}

/// An item in the projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `expr [AS alias]`
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Optional output column alias.
        alias: Option<String>,
    },
}

/// A table reference in the `FROM` list.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// A base relation with an optional alias, e.g. `MOVIE M`.
    Relation {
        /// Relation name.
        name: String,
        /// Binding alias; when absent the relation name itself binds.
        alias: Option<String>,
    },
    /// A derived table: `(SELECT ... UNION ALL ...) alias`. SPA's final
    /// query groups over a union of per-preference sub-queries, which
    /// requires exactly this form.
    Derived {
        /// The sub-query producing the rows.
        query: Box<Query>,
        /// Mandatory binding alias.
        alias: String,
    },
}

impl TableRef {
    /// A base-relation reference without alias.
    pub fn new(name: impl Into<String>) -> Self {
        TableRef::Relation { name: name.into(), alias: None }
    }

    /// A base-relation reference with alias.
    pub fn aliased(name: impl Into<String>, alias: impl Into<String>) -> Self {
        TableRef::Relation { name: name.into(), alias: Some(alias.into()) }
    }

    /// A derived-table reference.
    pub fn derived(query: Query, alias: impl Into<String>) -> Self {
        TableRef::Derived { query: Box::new(query), alias: alias.into() }
    }

    /// The name this reference binds in scope resolution.
    pub fn binding(&self) -> &str {
        match self {
            TableRef::Relation { name, alias } => alias.as_deref().unwrap_or(name),
            TableRef::Derived { alias, .. } => alias,
        }
    }
}

/// `ORDER BY` item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByItem {
    /// Sort key expression.
    pub expr: Expr,
    /// Descending when true (default in SQL is ascending).
    pub desc: bool,
}

/// Scalar/boolean expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal constant.
    Literal(Literal),
    /// A column reference, optionally qualified by a table binding.
    Column {
        /// Table binding (alias or relation name).
        table: Option<String>,
        /// Column name.
        name: String,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Negated form.
        negated: bool,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
    },
    /// `expr [NOT] IN (v1, v2, ...)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Negated form.
        negated: bool,
        /// Candidate values.
        list: Vec<Expr>,
    },
    /// `expr [NOT] IN (SELECT ...)`.
    InSubquery {
        /// Tested expression.
        expr: Box<Expr>,
        /// Negated form.
        negated: bool,
        /// The sub-query; must project exactly one column.
        subquery: Box<Query>,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// `IS NOT NULL` when true.
        negated: bool,
    },
    /// Function call: built-in aggregate, scalar builtin, or UDF.
    Function {
        /// Case-insensitive function name.
        name: String,
        /// Arguments (empty for `count(*)` with `star` set).
        args: Vec<Expr>,
        /// True for `count(*)`.
        star: bool,
    },
}

impl Expr {
    /// Convenience: `self AND other` (or just the other side when one is
    /// absent).
    pub fn and(self, other: Expr) -> Expr {
        Expr::Binary { left: Box::new(self), op: BinaryOp::And, right: Box::new(other) }
    }

    /// Folds a conjunction over the given expressions; `None` when empty.
    pub fn and_all(exprs: impl IntoIterator<Item = Expr>) -> Option<Expr> {
        exprs.into_iter().reduce(Expr::and)
    }

    /// Splits a conjunction into its conjuncts (flattening nested ANDs).
    pub fn conjuncts(&self) -> Vec<&Expr> {
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            match e {
                Expr::Binary { left, op: BinaryOp::And, right } => {
                    walk(left, out);
                    walk(right, out);
                }
                other => out.push(other),
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }
}

/// Literal values.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// `NULL`
    Null,
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// Logical NOT.
    Not,
}

/// Binary operators, ordered here roughly by binding strength.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `=`
    Eq,
    /// `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

impl BinaryOp {
    /// True for comparison operators.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq | BinaryOp::Neq | BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge
        )
    }

    /// The comparison with operands swapped (`a < b` ⇔ `b > a`); identity
    /// for non-comparisons.
    pub fn flip(self) -> BinaryOp {
        match self {
            BinaryOp::Lt => BinaryOp::Gt,
            BinaryOp::Le => BinaryOp::Ge,
            BinaryOp::Gt => BinaryOp::Lt,
            BinaryOp::Ge => BinaryOp::Le,
            other => other,
        }
    }

    /// The logical negation of a comparison (`=` ⇔ `<>`, `<` ⇔ `>=` …);
    /// `None` for non-comparisons.
    pub fn negate(self) -> Option<BinaryOp> {
        Some(match self {
            BinaryOp::Eq => BinaryOp::Neq,
            BinaryOp::Neq => BinaryOp::Eq,
            BinaryOp::Lt => BinaryOp::Ge,
            BinaryOp::Le => BinaryOp::Gt,
            BinaryOp::Gt => BinaryOp::Le,
            BinaryOp::Ge => BinaryOp::Lt,
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_all_folds() {
        let a = Expr::Literal(Literal::Bool(true));
        let b = Expr::Literal(Literal::Bool(false));
        let c = Expr::and_all(vec![a.clone(), b.clone()]).unwrap();
        assert_eq!(c.conjuncts().len(), 2);
        assert_eq!(Expr::and_all(vec![]), None);
        assert_eq!(Expr::and_all(vec![a.clone()]), Some(a));
    }

    #[test]
    fn conjuncts_flatten() {
        let t = || Expr::Literal(Literal::Bool(true));
        let e = t().and(t()).and(t().and(t()));
        assert_eq!(e.conjuncts().len(), 4);
    }

    #[test]
    fn op_negation() {
        assert_eq!(BinaryOp::Lt.negate(), Some(BinaryOp::Ge));
        assert_eq!(BinaryOp::Eq.negate(), Some(BinaryOp::Neq));
        assert_eq!(BinaryOp::And.negate(), None);
    }

    #[test]
    fn op_flip() {
        assert_eq!(BinaryOp::Lt.flip(), BinaryOp::Gt);
        assert_eq!(BinaryOp::Eq.flip(), BinaryOp::Eq);
    }

    #[test]
    fn query_selects_enumerates_union() {
        let s = Select::default();
        let q = Query {
            body: SetExpr::UnionAll(
                Box::new(SetExpr::UnionAll(
                    Box::new(SetExpr::Select(Box::new(s.clone()))),
                    Box::new(s.clone()),
                )),
                Box::new(s.clone()),
            ),
            order_by: vec![],
            limit: None,
        };
        assert_eq!(q.selects().len(), 3);
    }

    #[test]
    fn table_ref_binding() {
        assert_eq!(TableRef::new("MOVIE").binding(), "MOVIE");
        assert_eq!(TableRef::aliased("MOVIE", "M").binding(), "M");
    }
}
