//! Programmatic AST construction helpers.
//!
//! The personalization layer assembles SPA and PPA sub-queries from
//! preference paths; these helpers keep that code free of string pasting
//! and `Box::new` noise.

use crate::ast::*;

/// A qualified column reference.
pub fn col(table: impl Into<String>, name: impl Into<String>) -> Expr {
    Expr::Column { table: Some(table.into()), name: name.into() }
}

/// An unqualified column reference.
pub fn bare_col(name: impl Into<String>) -> Expr {
    Expr::Column { table: None, name: name.into() }
}

/// An integer literal.
pub fn int(n: i64) -> Expr {
    Expr::Literal(Literal::Int(n))
}

/// A float literal.
pub fn float(x: f64) -> Expr {
    Expr::Literal(Literal::Float(x))
}

/// A string literal.
pub fn string(s: impl Into<String>) -> Expr {
    Expr::Literal(Literal::Str(s.into()))
}

/// A binary operation.
pub fn binary(left: Expr, op: BinaryOp, right: Expr) -> Expr {
    Expr::Binary { left: Box::new(left), op, right: Box::new(right) }
}

/// `left = right`
pub fn eq(left: Expr, right: Expr) -> Expr {
    binary(left, BinaryOp::Eq, right)
}

/// `left <> right`
pub fn neq(left: Expr, right: Expr) -> Expr {
    binary(left, BinaryOp::Neq, right)
}

/// `expr BETWEEN low AND high`
pub fn between(expr: Expr, low: Expr, high: Expr) -> Expr {
    Expr::Between { expr: Box::new(expr), negated: false, low: Box::new(low), high: Box::new(high) }
}

/// `expr NOT BETWEEN low AND high`
pub fn not_between(expr: Expr, low: Expr, high: Expr) -> Expr {
    Expr::Between { expr: Box::new(expr), negated: true, low: Box::new(low), high: Box::new(high) }
}

/// `expr NOT IN (subquery)`
pub fn not_in_subquery(expr: Expr, subquery: Query) -> Expr {
    Expr::InSubquery { expr: Box::new(expr), negated: true, subquery: Box::new(subquery) }
}

/// `expr IN (subquery)`
pub fn in_subquery(expr: Expr, subquery: Query) -> Expr {
    Expr::InSubquery { expr: Box::new(expr), negated: false, subquery: Box::new(subquery) }
}

/// A function call.
pub fn func(name: impl Into<String>, args: Vec<Expr>) -> Expr {
    Expr::Function { name: name.into(), args, star: false }
}

/// `count(*)`
pub fn count_star() -> Expr {
    Expr::Function { name: "count".into(), args: vec![], star: true }
}

/// A projection item with alias.
pub fn item_as(expr: Expr, alias: impl Into<String>) -> SelectItem {
    SelectItem::Expr { expr, alias: Some(alias.into()) }
}

/// A projection item without alias.
pub fn item(expr: Expr) -> SelectItem {
    SelectItem::Expr { expr, alias: None }
}

/// Fluent builder for [`Select`] blocks.
#[derive(Debug, Default, Clone)]
pub struct SelectBuilder {
    select: Select,
}

impl SelectBuilder {
    /// Starts an empty `SELECT`.
    pub fn new() -> Self {
        SelectBuilder::default()
    }

    /// Adds a projection item.
    pub fn item(mut self, item: SelectItem) -> Self {
        self.select.items.push(item);
        self
    }

    /// Adds a plain projected expression.
    pub fn expr(self, e: Expr) -> Self {
        self.item(item(e))
    }

    /// Adds an aliased projected expression.
    pub fn expr_as(self, e: Expr, alias: impl Into<String>) -> Self {
        self.item(item_as(e, alias))
    }

    /// Marks the select `DISTINCT`.
    pub fn distinct(mut self) -> Self {
        self.select.distinct = true;
        self
    }

    /// Adds a table to the `FROM` list.
    pub fn from(mut self, table: TableRef) -> Self {
        self.select.from.push(table);
        self
    }

    /// ANDs a predicate into the `WHERE` clause.
    pub fn filter(mut self, e: Expr) -> Self {
        self.select.where_clause = match self.select.where_clause.take() {
            Some(w) => Some(w.and(e)),
            None => Some(e),
        };
        self
    }

    /// Adds a `GROUP BY` key.
    pub fn group_by(mut self, e: Expr) -> Self {
        self.select.group_by.push(e);
        self
    }

    /// Sets the `HAVING` predicate.
    pub fn having(mut self, e: Expr) -> Self {
        self.select.having = Some(e);
        self
    }

    /// Finishes the block.
    pub fn build(self) -> Select {
        self.select
    }

    /// Finishes and wraps into a [`Query`].
    pub fn build_query(self) -> Query {
        Query::from_select(self.select)
    }
}

/// Combines selects into a `UNION ALL` query. Panics on an empty input.
pub fn union_all(selects: Vec<Select>) -> Query {
    let mut it = selects.into_iter();
    let Some(first) = it.next() else {
        panic!("union_all requires at least one select");
    };
    let mut body = SetExpr::Select(Box::new(first));
    for s in it {
        body = SetExpr::UnionAll(Box::new(body), Box::new(s));
    }
    Query { body, order_by: vec![], limit: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    #[test]
    fn builder_matches_parser() {
        let built = SelectBuilder::new()
            .expr(bare_col("title"))
            .expr_as(float(0.72), "degree")
            .from(TableRef::aliased("MOVIE", "M"))
            .from(TableRef::aliased("DIRECTED", "D"))
            .filter(eq(col("M", "mid"), col("D", "mid")))
            .filter(eq(col("D", "name"), string("W. Allen")))
            .build_query();
        let parsed = parse_query(
            "select title, 0.72 degree from MOVIE M, DIRECTED D \
             where M.mid = D.mid and D.name = 'W. Allen'",
        )
        .unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn union_all_builder() {
        let s1 = SelectBuilder::new().expr(bare_col("a")).from(TableRef::new("T")).build();
        let s2 = SelectBuilder::new().expr(bare_col("b")).from(TableRef::new("U")).build();
        let q = union_all(vec![s1, s2]);
        assert_eq!(q.selects().len(), 2);
        let parsed = parse_query("select a from T union all select b from U").unwrap();
        assert_eq!(q, parsed);
    }

    #[test]
    fn group_having_matches_example6() {
        let q = SelectBuilder::new()
            .expr(bare_col("title"))
            .expr_as(func("r", vec![bare_col("degree")]), "score")
            .from(TableRef::new("SUB"))
            .group_by(bare_col("title"))
            .having(binary(count_star(), BinaryOp::Ge, int(2)))
            .build_query();
        let parsed = parse_query(
            "select title, r(degree) score from SUB group by title having count(*) >= 2",
        )
        .unwrap();
        assert_eq!(q, parsed);
    }

    #[test]
    fn not_in_subquery_builder() {
        let sub = SelectBuilder::new()
            .expr(col("M", "mid"))
            .from(TableRef::aliased("MOVIE", "M"))
            .build_query();
        let e = not_in_subquery(col("M", "mid"), sub);
        assert!(matches!(e, Expr::InSubquery { negated: true, .. }));
    }
}
