//! Precedence-aware pretty printer.
//!
//! Every AST node implements [`std::fmt::Display`]; printing a parsed query
//! and re-parsing it yields a structurally identical AST (tested here and,
//! exhaustively, by the property tests in `tests/`).

use std::fmt;

use crate::ast::*;

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.body)?;
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, item) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{item}")?;
            }
        }
        if let Some(n) = self.limit {
            write!(f, " LIMIT {n}")?;
        }
        Ok(())
    }
}

impl fmt::Display for SetExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetExpr::Select(s) => write!(f, "{s}"),
            SetExpr::UnionAll(l, r) => write!(f, "{l} UNION ALL {r}"),
        }
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        if !self.from.is_empty() {
            write!(f, " FROM ")?;
            for (i, t) in self.from.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{t}")?;
            }
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, e) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{e}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        Ok(())
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => write!(f, "*"),
            SelectItem::Expr { expr, alias: Some(a) } => write!(f, "{expr} AS {a}"),
            SelectItem::Expr { expr, alias: None } => write!(f, "{expr}"),
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableRef::Relation { name, alias: Some(a) } => write!(f, "{name} {a}"),
            TableRef::Relation { name, alias: None } => write!(f, "{name}"),
            TableRef::Derived { query, alias } => write!(f, "({query}) {alias}"),
        }
    }
}

impl fmt::Display for OrderByItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.expr)?;
        if self.desc {
            write!(f, " DESC")?;
        }
        Ok(())
    }
}

/// Binding strength used to decide where parentheses are required.
fn precedence(e: &Expr) -> u8 {
    match e {
        Expr::Binary { op, .. } => match op {
            BinaryOp::Or => 1,
            BinaryOp::And => 2,
            BinaryOp::Eq
            | BinaryOp::Neq
            | BinaryOp::Lt
            | BinaryOp::Le
            | BinaryOp::Gt
            | BinaryOp::Ge => 4,
            BinaryOp::Add | BinaryOp::Sub => 5,
            BinaryOp::Mul | BinaryOp::Div => 6,
        },
        Expr::Unary { op: UnaryOp::Not, .. } => 3,
        Expr::Between { .. } | Expr::InList { .. } | Expr::InSubquery { .. } | Expr::IsNull { .. } => 4,
        Expr::Unary { op: UnaryOp::Neg, .. } => 7,
        _ => 8,
    }
}

/// Writes `e`, parenthesizing when its precedence is below `min`.
fn write_prec(f: &mut fmt::Formatter<'_>, e: &Expr, min: u8) -> fmt::Result {
    if precedence(e) < min {
        write!(f, "({e})")
    } else {
        write!(f, "{e}")
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(l) => write!(f, "{l}"),
            Expr::Column { table: Some(t), name } => write!(f, "{t}.{name}"),
            Expr::Column { table: None, name } => write!(f, "{name}"),
            Expr::Unary { op: UnaryOp::Neg, expr } => {
                write!(f, "-")?;
                write_prec(f, expr, 8)
            }
            Expr::Unary { op: UnaryOp::Not, expr } => {
                write!(f, "NOT ")?;
                write_prec(f, expr, 4)
            }
            Expr::Binary { left, op, right } => {
                let p = precedence(self);
                // comparisons are non-associative in the grammar (`a = b
                // = c` does not parse), so both operands need parentheses
                // at equal precedence; AND/OR/arithmetic associate left
                let left_min = if op.is_comparison() { p + 1 } else { p };
                write_prec(f, left, left_min)?;
                write!(f, " {op} ")?;
                write_prec(f, right, p + 1)
            }
            Expr::Between { expr, negated, low, high } => {
                write_prec(f, expr, 5)?;
                if *negated {
                    write!(f, " NOT")?;
                }
                write!(f, " BETWEEN ")?;
                write_prec(f, low, 5)?;
                write!(f, " AND ")?;
                write_prec(f, high, 5)
            }
            Expr::InList { expr, negated, list } => {
                write_prec(f, expr, 5)?;
                if *negated {
                    write!(f, " NOT")?;
                }
                write!(f, " IN (")?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::InSubquery { expr, negated, subquery } => {
                write_prec(f, expr, 5)?;
                if *negated {
                    write!(f, " NOT")?;
                }
                write!(f, " IN ({subquery})")
            }
            Expr::IsNull { expr, negated } => {
                write_prec(f, expr, 5)?;
                if *negated {
                    write!(f, " IS NOT NULL")
                } else {
                    write!(f, " IS NULL")
                }
            }
            Expr::Function { name, star: true, .. } => write!(f, "{name}(*)"),
            Expr::Function { name, args, star: false } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Null => write!(f, "NULL"),
            Literal::Int(n) => write!(f, "{n}"),
            Literal::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    // keep a decimal point so it re-parses as a float
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Literal::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
        }
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Eq => "=",
            BinaryOp::Neq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse_query;

    /// Parses, prints, re-parses, and checks the ASTs match.
    fn round_trip(sql: &str) {
        let q1 = parse_query(sql).unwrap_or_else(|e| panic!("first parse of `{sql}`: {e}"));
        let printed = q1.to_string();
        let q2 = parse_query(&printed)
            .unwrap_or_else(|e| panic!("re-parse of `{printed}`: {e}"));
        assert_eq!(q1, q2, "round trip changed the AST\noriginal: {sql}\nprinted: {printed}");
    }

    #[test]
    fn round_trips() {
        for sql in [
            "select title from MOVIE",
            "select distinct M.title as t, 0.72 degree from MOVIE M, DIRECTED D where M.mid = D.mid",
            "select * from T where a = 1 or b = 2 and not c = 3",
            "select * from T where x between 1 and 10 and y not between 2 and 3",
            "select * from T where g in ('a', 'b') and h not in (select h from U where z > 0)",
            "select a, count(*) c from T group by a having count(*) >= 2 order by c desc limit 5",
            "select 1 + 2 * 3 - 4 / 2 from T",
            "select -x from T where -y < 3",
            "select * from T where s = 'it''s'",
            "select a from T union all select b from U union all select c from V order by 1",
            "select * from T where a is null or b is not null",
            "select r(degree) from T order by r(degree) desc",
            "select 2.0, 0.5, 1e3 from T",
            "select * from T where not (a = 1 or b = 2)",
            "select (1 + 2) * 3 from T",
            "select t, r(d) from (select a t, 0.5 d from X union all select b, 0.7 from Y) u group by t",
        ] {
            round_trip(sql);
        }
    }

    #[test]
    fn parens_preserved_where_needed() {
        let q = parse_query("select (1 + 2) * 3 from T").unwrap();
        assert!(q.to_string().contains("(1 + 2) * 3"));
    }

    #[test]
    fn float_keeps_decimal_point() {
        let q = parse_query("select 2.0 from T").unwrap();
        assert!(q.to_string().contains("2.0"));
    }

    #[test]
    fn string_escaping() {
        let q = parse_query("select 'a''b' from T").unwrap();
        assert!(q.to_string().contains("'a''b'"));
    }

    #[test]
    fn not_in_subquery_prints() {
        let sql = "select title from MOVIE M where M.mid not in (select mid from GENRE where genre = 'musical')";
        let q = parse_query(sql).unwrap();
        let s = q.to_string();
        assert!(s.contains("NOT IN (SELECT"), "{s}");
    }
}
