//! Parse errors with source positions.

use std::fmt;

/// An error produced by the lexer or parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the source where the error was detected.
    pub offset: usize,
}

impl ParseError {
    /// Creates a parse error at `offset`.
    pub fn new(message: impl Into<String>, offset: usize) -> Self {
        ParseError { message: message.into(), offset }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = ParseError::new("unexpected token", 17);
        assert_eq!(e.to_string(), "parse error at byte 17: unexpected token");
    }
}
