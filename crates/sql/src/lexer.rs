//! Tokenizer for the SQL subset.

use crate::error::ParseError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (keywords are recognized case-insensitively by
    /// the parser; the lexer keeps the original spelling).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal with `''` escapes resolved.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `;`
    Semicolon,
}

/// A token plus its byte offset in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Byte offset where the token starts.
    pub offset: usize,
}

/// Tokenizes `input` into a vector of spanned tokens.
pub fn tokenize(input: &str) -> Result<Vec<Spanned>, ParseError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Spanned { token: Token::LParen, offset: i });
                i += 1;
            }
            ')' => {
                tokens.push(Spanned { token: Token::RParen, offset: i });
                i += 1;
            }
            ',' => {
                tokens.push(Spanned { token: Token::Comma, offset: i });
                i += 1;
            }
            '.' => {
                tokens.push(Spanned { token: Token::Dot, offset: i });
                i += 1;
            }
            '*' => {
                tokens.push(Spanned { token: Token::Star, offset: i });
                i += 1;
            }
            '+' => {
                tokens.push(Spanned { token: Token::Plus, offset: i });
                i += 1;
            }
            '-' => {
                tokens.push(Spanned { token: Token::Minus, offset: i });
                i += 1;
            }
            '/' => {
                tokens.push(Spanned { token: Token::Slash, offset: i });
                i += 1;
            }
            ';' => {
                tokens.push(Spanned { token: Token::Semicolon, offset: i });
                i += 1;
            }
            '=' => {
                tokens.push(Spanned { token: Token::Eq, offset: i });
                i += 1;
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Spanned { token: Token::Neq, offset: i });
                    i += 2;
                } else {
                    return Err(ParseError::new("unexpected `!`", i));
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Spanned { token: Token::Le, offset: i });
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    tokens.push(Spanned { token: Token::Neq, offset: i });
                    i += 2;
                } else {
                    tokens.push(Spanned { token: Token::Lt, offset: i });
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Spanned { token: Token::Ge, offset: i });
                    i += 2;
                } else {
                    tokens.push(Spanned { token: Token::Gt, offset: i });
                    i += 1;
                }
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(ParseError::new("unterminated string literal", start));
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        // copy the full UTF-8 character; `i` always sits
                        // on a char boundary, so the error arm is
                        // unreachable in practice but degrades typed.
                        let ch_start = i;
                        match input[ch_start..].chars().next() {
                            Some(ch) => {
                                s.push(ch);
                                i += ch.len_utf8();
                            }
                            None => {
                                return Err(ParseError::new(
                                    "unterminated string literal",
                                    start,
                                ));
                            }
                        }
                    }
                }
                tokens.push(Spanned { token: Token::Str(s), offset: start });
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &input[start..i];
                let token = if is_float {
                    Token::Float(text.parse().map_err(|_| {
                        ParseError::new(format!("invalid float literal `{text}`"), start)
                    })?)
                } else {
                    Token::Int(text.parse().map_err(|_| {
                        ParseError::new(format!("invalid integer literal `{text}`"), start)
                    })?)
                };
                tokens.push(Spanned { token, offset: start });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Spanned { token: Token::Ident(input[start..i].to_string()), offset: start });
            }
            _ => {
                return Err(ParseError::new(format!("unexpected character `{c}`"), i));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        tokenize(s).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn simple_select() {
        assert_eq!(
            toks("select title from MOVIE"),
            vec![
                Token::Ident("select".into()),
                Token::Ident("title".into()),
                Token::Ident("from".into()),
                Token::Ident("MOVIE".into()),
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("a = b <> c != d <= e >= f < g > h"),
            vec![
                Token::Ident("a".into()),
                Token::Eq,
                Token::Ident("b".into()),
                Token::Neq,
                Token::Ident("c".into()),
                Token::Neq,
                Token::Ident("d".into()),
                Token::Le,
                Token::Ident("e".into()),
                Token::Ge,
                Token::Ident("f".into()),
                Token::Lt,
                Token::Ident("g".into()),
                Token::Gt,
                Token::Ident("h".into()),
            ]
        );
    }

    #[test]
    fn string_with_escape() {
        assert_eq!(toks("'W. Allen''s'"), vec![Token::Str("W. Allen's".into())]);
    }

    #[test]
    fn unterminated_string() {
        assert!(tokenize("'abc").is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("42 3.25 1e3 7.5e-2"),
            vec![Token::Int(42), Token::Float(3.25), Token::Float(1000.0), Token::Float(0.075)]
        );
    }

    #[test]
    fn qualified_name_and_star() {
        assert_eq!(
            toks("M.mid * 2"),
            vec![
                Token::Ident("M".into()),
                Token::Dot,
                Token::Ident("mid".into()),
                Token::Star,
                Token::Int(2),
            ]
        );
    }

    #[test]
    fn line_comment_skipped() {
        assert_eq!(toks("select -- everything\n 1"), vec![Token::Ident("select".into()), Token::Int(1)]);
    }

    #[test]
    fn offsets_recorded() {
        let ts = tokenize("ab  cd").unwrap();
        assert_eq!(ts[0].offset, 0);
        assert_eq!(ts[1].offset, 4);
    }

    #[test]
    fn unexpected_character() {
        let err = tokenize("a ? b").unwrap_err();
        assert!(err.message.contains("unexpected character"));
        assert_eq!(err.offset, 2);
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(toks("'café'"), vec![Token::Str("café".into())]);
    }
}
