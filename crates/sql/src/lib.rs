#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

//! # qp-sql
//!
//! SQL front-end for the SPJ subset the paper's algorithms produce and
//! consume: `SELECT`/`FROM` (comma joins)/`WHERE`/`GROUP BY`/`HAVING`/
//! `ORDER BY`/`LIMIT`, `UNION ALL`, `(NOT) IN` with lists or sub-queries,
//! `(NOT) BETWEEN`, `IS (NOT) NULL`, aggregates, and user-defined function
//! calls (the hook SPA uses to rank with `order by r(degree)` and to embed
//! elastic doi functions).
//!
//! The crate provides:
//! * a [`lexer`] and recursive-descent [`parser`] (`parse_query`),
//! * the [`ast`] types,
//! * a precedence-aware pretty printer ([`std::fmt::Display`] on every AST
//!   node) that round-trips through the parser,
//! * a programmatic [`builder`] API used by the personalization layer to
//!   assemble the SPA/PPA sub-queries without string pasting.

pub mod ast;
pub mod builder;
pub mod display;
pub mod error;
pub mod lexer;
pub mod parser;

pub use ast::{
    BinaryOp, Expr, Literal, OrderByItem, Query, Select, SelectItem, SetExpr, TableRef, UnaryOp,
};
pub use error::ParseError;
pub use parser::parse_query;
