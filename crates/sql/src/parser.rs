//! Recursive-descent parser for the SQL subset.

use crate::ast::*;
use crate::error::ParseError;
use crate::lexer::{tokenize, Spanned, Token};

/// Reserved words that can never be identifiers in alias position.
const KEYWORDS: &[&str] = &[
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT", "UNION",
    "ALL", "AND", "OR", "NOT", "IN", "BETWEEN", "IS", "NULL", "TRUE", "FALSE", "AS", "ASC",
    "DESC",
];

/// Parses a single SQL query.
pub fn parse_query(input: &str) -> Result<Query, ParseError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0, end: input.len() };
    let q = p.query()?;
    p.eat_semicolons();
    if !p.at_end() {
        return Err(ParseError::new("trailing input after query", p.offset()));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    end: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn offset(&self) -> usize {
        self.tokens.get(self.pos).map(|t| t.offset).unwrap_or(self.end)
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|t| t.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(msg, self.offset())
    }

    /// True if the current token is the given keyword (case-insensitive).
    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    /// Consumes the given keyword if present.
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword `{kw}`")))
        }
    }

    fn eat_token(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_token(&mut self, t: &Token, what: &str) -> Result<(), ParseError> {
        if self.eat_token(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn eat_semicolons(&mut self) {
        while self.eat_token(&Token::Semicolon) {}
    }

    /// Consumes a non-keyword identifier.
    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek() {
            Some(Token::Ident(s)) if !is_keyword(s) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.err(format!("expected {what}"))),
        }
    }

    fn query(&mut self) -> Result<Query, ParseError> {
        let mut body = SetExpr::Select(Box::new(self.select()?));
        loop {
            let save = self.pos;
            if self.eat_keyword("UNION") {
                if !self.eat_keyword("ALL") {
                    // only UNION ALL is supported; be explicit about it
                    self.pos = save;
                    return Err(self.err("only UNION ALL is supported"));
                }
                let right = self.select()?;
                body = SetExpr::UnionAll(Box::new(body), Box::new(right));
            } else {
                break;
            }
        }
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_keyword("DESC") {
                    true
                } else {
                    self.eat_keyword("ASC");
                    false
                };
                order_by.push(OrderByItem { expr, desc });
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
        }
        let mut limit = None;
        if self.eat_keyword("LIMIT") {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => limit = Some(n as u64),
                _ => return Err(self.err("expected non-negative integer after LIMIT")),
            }
        }
        Ok(Query { body, order_by, limit })
    }

    fn select(&mut self) -> Result<Select, ParseError> {
        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");
        let mut items = Vec::new();
        loop {
            if self.eat_token(&Token::Star) {
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                let alias = self.maybe_alias();
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_token(&Token::Comma) {
                break;
            }
        }
        let mut from = Vec::new();
        if self.eat_keyword("FROM") {
            loop {
                if self.eat_token(&Token::LParen) {
                    let query = self.query()?;
                    self.expect_token(&Token::RParen, "`)` closing derived table")?;
                    let alias = self
                        .maybe_alias()
                        .ok_or_else(|| self.err("derived table requires an alias"))?;
                    from.push(TableRef::derived(query, alias));
                } else {
                    let name = self.ident("table name")?;
                    let alias = self.maybe_alias();
                    from.push(TableRef::Relation { name, alias });
                }
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
        }
        let where_clause = if self.eat_keyword("WHERE") { Some(self.expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_keyword("HAVING") { Some(self.expr()?) } else { None };
        Ok(Select { distinct, items, from, where_clause, group_by, having })
    }

    /// `[AS] ident` where ident is not a keyword.
    fn maybe_alias(&mut self) -> Option<String> {
        if self.eat_keyword("AS") {
            return self.ident("alias").ok();
        }
        match self.peek() {
            Some(Token::Ident(s)) if !is_keyword(s) => {
                let s = s.clone();
                self.pos += 1;
                Some(s)
            }
            _ => None,
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("OR") {
            let right = self.and_expr()?;
            left = Expr::Binary { left: Box::new(left), op: BinaryOp::Or, right: Box::new(right) };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.not_expr()?;
        while self.eat_keyword("AND") {
            let right = self.not_expr()?;
            left = Expr::Binary { left: Box::new(left), op: BinaryOp::And, right: Box::new(right) };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_keyword("NOT") {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary { op: UnaryOp::Not, expr: Box::new(inner) });
        }
        self.predicate()
    }

    fn predicate(&mut self) -> Result<Expr, ParseError> {
        let left = self.additive()?;
        // comparison operators
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinaryOp::Eq),
            Some(Token::Neq) => Some(BinaryOp::Neq),
            Some(Token::Lt) => Some(BinaryOp::Lt),
            Some(Token::Le) => Some(BinaryOp::Le),
            Some(Token::Gt) => Some(BinaryOp::Gt),
            Some(Token::Ge) => Some(BinaryOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.additive()?;
            return Ok(Expr::Binary { left: Box::new(left), op, right: Box::new(right) });
        }
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::IsNull { expr: Box::new(left), negated });
        }
        let negated = self.eat_keyword("NOT");
        if self.eat_keyword("BETWEEN") {
            let low = self.additive()?;
            self.expect_keyword("AND")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                negated,
                low: Box::new(low),
                high: Box::new(high),
            });
        }
        if self.eat_keyword("IN") {
            self.expect_token(&Token::LParen, "`(` after IN")?;
            if self.at_keyword("SELECT") {
                let subquery = self.query()?;
                self.expect_token(&Token::RParen, "`)` closing IN sub-query")?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    negated,
                    subquery: Box::new(subquery),
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
            self.expect_token(&Token::RParen, "`)` closing IN list")?;
            return Ok(Expr::InList { expr: Box::new(left), negated, list });
        }
        if negated {
            return Err(self.err("expected BETWEEN or IN after NOT"));
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinaryOp::Add,
                Some(Token::Minus) => BinaryOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = Expr::Binary { left: Box::new(left), op, right: Box::new(right) };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinaryOp::Mul,
                Some(Token::Slash) => BinaryOp::Div,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary()?;
            left = Expr::Binary { left: Box::new(left), op, right: Box::new(right) };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_token(&Token::Minus) {
            let inner = self.unary()?;
            // fold negated numeric literals so `-1` round-trips as the
            // literal it prints as
            return Ok(match inner {
                Expr::Literal(Literal::Int(i)) => Expr::Literal(Literal::Int(-i)),
                Expr::Literal(Literal::Float(x)) => Expr::Literal(Literal::Float(-x)),
                other => Expr::Unary { op: UnaryOp::Neg, expr: Box::new(other) },
            });
        }
        if self.eat_token(&Token::Plus) {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(Token::Int(n)) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Int(n)))
            }
            Some(Token::Float(x)) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Float(x)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Str(s)))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect_token(&Token::RParen, "`)`")?;
                Ok(e)
            }
            Some(Token::Ident(id)) => {
                if id.eq_ignore_ascii_case("NULL") {
                    self.pos += 1;
                    return Ok(Expr::Literal(Literal::Null));
                }
                if id.eq_ignore_ascii_case("TRUE") {
                    self.pos += 1;
                    return Ok(Expr::Literal(Literal::Bool(true)));
                }
                if id.eq_ignore_ascii_case("FALSE") {
                    self.pos += 1;
                    return Ok(Expr::Literal(Literal::Bool(false)));
                }
                if is_keyword(&id) {
                    return Err(self.err(format!("unexpected keyword `{id}`")));
                }
                self.pos += 1;
                // function call?
                if self.peek() == Some(&Token::LParen) {
                    self.pos += 1;
                    if self.eat_token(&Token::Star) {
                        self.expect_token(&Token::RParen, "`)` after `*`")?;
                        return Ok(Expr::Function { name: id, args: vec![], star: true });
                    }
                    let mut args = Vec::new();
                    if self.peek() != Some(&Token::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_token(&Token::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect_token(&Token::RParen, "`)` closing argument list")?;
                    return Ok(Expr::Function { name: id, args, star: false });
                }
                // qualified column?
                if self.eat_token(&Token::Dot) {
                    let name = self.ident("column name after `.`")?;
                    return Ok(Expr::Column { table: Some(id), name });
                }
                Ok(Expr::Column { table: None, name: id })
            }
            _ => Err(self.err("expected expression")),
        }
    }
}

fn is_keyword(s: &str) -> bool {
    KEYWORDS.iter().any(|k| k.eq_ignore_ascii_case(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_select() {
        let q = parse_query("select title from MOVIE").unwrap();
        let selects = q.selects();
        assert_eq!(selects.len(), 1);
        let s = selects[0];
        assert_eq!(s.from, vec![TableRef::new("MOVIE")]);
        assert_eq!(
            s.items,
            vec![SelectItem::Expr {
                expr: Expr::Column { table: None, name: "title".into() },
                alias: None
            }]
        );
    }

    #[test]
    fn paper_example_q1() {
        // The presence sub-query from Example 6 of the paper.
        let q = parse_query(
            "select title, 0.72 degree \
             from MOVIE M, DIRECTED D, DIRECTOR DI \
             where M.mid=D.mid and D.did=DI.did and DI.name='W. Allen'",
        )
        .unwrap();
        let s = &q.selects()[0];
        assert_eq!(s.from.len(), 3);
        assert_eq!(s.from[1], TableRef::aliased("DIRECTED", "D"));
        assert_eq!(
            s.items[1],
            SelectItem::Expr {
                expr: Expr::Literal(Literal::Float(0.72)),
                alias: Some("degree".into())
            }
        );
        let w = s.where_clause.as_ref().unwrap();
        assert_eq!(w.conjuncts().len(), 3);
    }

    #[test]
    fn paper_example_not_in() {
        let q = parse_query(
            "select title, 0.7 degree from MOVIE M \
             where M.mid not in (select M.mid from MOVIE M, GENRE G \
             where M.mid=G.mid and G.genre='musical')",
        )
        .unwrap();
        let s = &q.selects()[0];
        match s.where_clause.as_ref().unwrap() {
            Expr::InSubquery { negated, subquery, .. } => {
                assert!(negated);
                assert_eq!(subquery.selects().len(), 1);
            }
            other => panic!("expected InSubquery, got {other:?}"),
        }
    }

    #[test]
    fn union_all_group_having_order() {
        let q = parse_query(
            "select title, 0.5 degree from MOVIE \
             union all select title, 0.2 degree from MOVIE \
             group by title having count(*) >= 2 order by r(degree) desc limit 10",
        )
        .unwrap();
        assert_eq!(q.selects().len(), 2);
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.order_by.len(), 1);
        assert!(q.order_by[0].desc);
        // GROUP BY / HAVING attach to the last select of the chain.
        let last = q.selects()[1];
        assert_eq!(last.group_by.len(), 1);
        match last.having.as_ref().unwrap() {
            Expr::Binary { op: BinaryOp::Ge, left, .. } => match left.as_ref() {
                Expr::Function { name, star, .. } => {
                    assert_eq!(name, "count");
                    assert!(*star);
                }
                other => panic!("expected count(*), got {other:?}"),
            },
            other => panic!("expected >=, got {other:?}"),
        }
    }

    #[test]
    fn union_without_all_rejected() {
        assert!(parse_query("select a from T union select a from T").is_err());
    }

    #[test]
    fn between() {
        let q = parse_query("select * from M where year between 1990 and 1999").unwrap();
        match q.selects()[0].where_clause.as_ref().unwrap() {
            Expr::Between { negated: false, .. } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn not_between() {
        let q = parse_query("select * from M where year not between 1990 and 1999").unwrap();
        match q.selects()[0].where_clause.as_ref().unwrap() {
            Expr::Between { negated: true, .. } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn in_list() {
        let q = parse_query("select * from G where genre in ('comedy', 'drama')").unwrap();
        match q.selects()[0].where_clause.as_ref().unwrap() {
            Expr::InList { negated: false, list, .. } => assert_eq!(list.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn is_null_and_is_not_null() {
        let q = parse_query("select * from M where a is null and b is not null").unwrap();
        let w = q.selects()[0].where_clause.as_ref().unwrap();
        let cs = w.conjuncts();
        assert!(matches!(cs[0], Expr::IsNull { negated: false, .. }));
        assert!(matches!(cs[1], Expr::IsNull { negated: true, .. }));
    }

    #[test]
    fn precedence_or_and() {
        let q = parse_query("select * from M where a = 1 or b = 2 and c = 3").unwrap();
        match q.selects()[0].where_clause.as_ref().unwrap() {
            Expr::Binary { op: BinaryOp::Or, right, .. } => {
                assert!(matches!(right.as_ref(), Expr::Binary { op: BinaryOp::And, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        let q = parse_query("select 1 + 2 * 3 from M").unwrap();
        match &q.selects()[0].items[0] {
            SelectItem::Expr { expr: Expr::Binary { op: BinaryOp::Add, right, .. }, .. } => {
                assert!(matches!(right.as_ref(), Expr::Binary { op: BinaryOp::Mul, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn not_operator() {
        let q = parse_query("select * from M where not a = 1").unwrap();
        assert!(matches!(
            q.selects()[0].where_clause.as_ref().unwrap(),
            Expr::Unary { op: UnaryOp::Not, .. }
        ));
    }

    #[test]
    fn negative_literal_folds() {
        let q = parse_query("select -3.5 from M").unwrap();
        match &q.selects()[0].items[0] {
            SelectItem::Expr { expr: Expr::Literal(Literal::Float(x)), .. } => {
                assert_eq!(*x, -3.5);
            }
            other => panic!("{other:?}"),
        }
        // negation of a non-literal stays a unary op
        let q = parse_query("select -x from M").unwrap();
        match &q.selects()[0].items[0] {
            SelectItem::Expr { expr: Expr::Unary { op: UnaryOp::Neg, .. }, .. } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn distinct_and_wildcard() {
        let q = parse_query("select distinct * from M").unwrap();
        let s = q.selects()[0];
        assert!(s.distinct);
        assert_eq!(s.items, vec![SelectItem::Wildcard]);
    }

    #[test]
    fn trailing_tokens_rejected() {
        assert!(parse_query("select a from T garbage ,").is_err());
    }

    #[test]
    fn trailing_semicolon_ok() {
        assert!(parse_query("select a from T;").is_ok());
    }

    #[test]
    fn keyword_as_table_rejected() {
        assert!(parse_query("select a from where").is_err());
    }

    #[test]
    fn alias_with_as() {
        let q = parse_query("select m.title as t from MOVIE as m").unwrap();
        let s = q.selects()[0];
        assert_eq!(s.from[0], TableRef::aliased("MOVIE", "m"));
        match &s.items[0] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("t")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_from_allowed() {
        let q = parse_query("select 1 + 1").unwrap();
        assert!(q.selects()[0].from.is_empty());
    }

    #[test]
    fn function_with_args() {
        let q = parse_query("select elastic0(duration) from MOVIE").unwrap();
        match &q.selects()[0].items[0] {
            SelectItem::Expr { expr: Expr::Function { name, args, star }, .. } => {
                assert_eq!(name, "elastic0");
                assert_eq!(args.len(), 1);
                assert!(!star);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn derived_table() {
        let q = parse_query(
            "select title, r(degree) from \
             (select title, 0.5 degree from MOVIE union all select title, 0.7 degree from MOVIE) u \
             group by title having count(*) >= 2",
        )
        .unwrap();
        let s = q.selects()[0];
        match &s.from[0] {
            TableRef::Derived { query, alias } => {
                assert_eq!(alias, "u");
                assert_eq!(query.selects().len(), 2);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(s.group_by.len(), 1);
    }

    #[test]
    fn derived_table_requires_alias() {
        assert!(parse_query("select a from (select a from T)").is_err());
    }

    #[test]
    fn limit_requires_integer() {
        assert!(parse_query("select a from T limit x").is_err());
        assert!(parse_query("select a from T limit -1").is_err());
    }
}
