//! Property tests: pretty-printing a random AST and re-parsing it yields
//! the same AST (print/parse round trip), over a generator that covers
//! the full expression and query grammar.

use proptest::prelude::*;
use qp_sql::{
    parse_query, BinaryOp, Expr, Literal, OrderByItem, Query, Select, SelectItem, SetExpr,
    TableRef, UnaryOp,
};

fn arb_ident() -> impl Strategy<Value = String> {
    // identifiers that can never collide with keywords
    "[a-z][a-z0-9_]{0,6}x".prop_map(|s| s)
}

fn arb_literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        Just(Literal::Null),
        (-1_000_000i64..1_000_000).prop_map(Literal::Int),
        // floats that survive display->parse exactly: use short decimals
        (-1000i32..1000, 0u8..100).prop_map(|(a, b)| Literal::Float(a as f64 + b as f64 / 100.0)),
        "[a-zA-Z '._-]{0,10}".prop_map(Literal::Str),
        any::<bool>().prop_map(Literal::Bool),
    ]
}

fn arb_binop() -> impl Strategy<Value = BinaryOp> {
    prop_oneof![
        Just(BinaryOp::Add),
        Just(BinaryOp::Sub),
        Just(BinaryOp::Mul),
        Just(BinaryOp::Div),
        Just(BinaryOp::Eq),
        Just(BinaryOp::Neq),
        Just(BinaryOp::Lt),
        Just(BinaryOp::Le),
        Just(BinaryOp::Gt),
        Just(BinaryOp::Ge),
        Just(BinaryOp::And),
        Just(BinaryOp::Or),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        arb_literal().prop_map(Expr::Literal),
        (proptest::option::of(arb_ident()), arb_ident())
            .prop_map(|(table, name)| Expr::Column { table, name }),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            (inner.clone(), arb_binop(), inner.clone()).prop_map(|(l, op, r)| Expr::Binary {
                left: Box::new(l),
                op,
                right: Box::new(r)
            }),
            (inner.clone(), prop_oneof![Just(UnaryOp::Neg), Just(UnaryOp::Not)]).prop_map(
                |(e, op)| match (op, e) {
                    // the parser folds negated numeric literals, so the
                    // generator does too
                    (UnaryOp::Neg, Expr::Literal(Literal::Int(i))) => {
                        Expr::Literal(Literal::Int(i.wrapping_neg()))
                    }
                    (UnaryOp::Neg, Expr::Literal(Literal::Float(x))) => {
                        Expr::Literal(Literal::Float(-x))
                    }
                    (op, e) => Expr::Unary { op, expr: Box::new(e) },
                }
            ),
            (inner.clone(), any::<bool>(), inner.clone(), inner.clone()).prop_map(
                |(e, negated, lo, hi)| Expr::Between {
                    expr: Box::new(e),
                    negated,
                    low: Box::new(lo),
                    high: Box::new(hi)
                }
            ),
            (inner.clone(), any::<bool>(), prop::collection::vec(inner.clone(), 1..3)).prop_map(
                |(e, negated, list)| Expr::InList { expr: Box::new(e), negated, list }
            ),
            (inner.clone(), any::<bool>())
                .prop_map(|(e, negated)| Expr::IsNull { expr: Box::new(e), negated }),
            (arb_ident(), prop::collection::vec(inner, 0..3))
                .prop_map(|(name, args)| Expr::Function { name, args, star: false }),
        ]
    })
}

fn arb_select() -> impl Strategy<Value = Select> {
    (
        any::<bool>(),
        prop::collection::vec(
            (arb_expr(), proptest::option::of(arb_ident()))
                .prop_map(|(expr, alias)| SelectItem::Expr { expr, alias }),
            1..4,
        ),
        prop::collection::vec(
            (arb_ident(), proptest::option::of(arb_ident())),
            0..3,
        ),
        proptest::option::of(arb_expr()),
        prop::collection::vec(arb_expr(), 0..2),
        proptest::option::of(arb_expr()),
    )
        .prop_map(|(distinct, items, from, where_clause, group_by, having)| Select {
            distinct,
            items,
            from: from
                .into_iter()
                .map(|(name, alias)| TableRef::Relation { name, alias })
                .collect(),
            where_clause,
            // HAVING without GROUP BY prints fine but semantically needs
            // aggregates; keep both independent for the syntax round trip
            group_by,
            having,
        })
}

fn arb_query() -> impl Strategy<Value = Query> {
    (
        prop::collection::vec(arb_select(), 1..3),
        prop::collection::vec((arb_expr(), any::<bool>()), 0..2),
        proptest::option::of(0u64..1000),
    )
        .prop_map(|(selects, order, limit)| {
            let mut it = selects.into_iter();
            let mut body = SetExpr::Select(Box::new(it.next().expect("non-empty")));
            for s in it {
                body = SetExpr::UnionAll(Box::new(body), Box::new(s));
            }
            Query {
                body,
                order_by: order
                    .into_iter()
                    .map(|(expr, desc)| OrderByItem { expr, desc })
                    .collect(),
                limit,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn expr_round_trips(e in arb_expr()) {
        // wrap in a minimal query to reuse the statement printer/parser
        let q = Query::from_select(Select {
            distinct: false,
            items: vec![SelectItem::Expr { expr: e, alias: None }],
            from: vec![],
            where_clause: None,
            group_by: vec![],
            having: None,
        });
        let sql = q.to_string();
        let parsed = parse_query(&sql).unwrap_or_else(|err| panic!("{sql}\n{err}"));
        prop_assert_eq!(q, parsed, "sql: {}", sql);
    }

    #[test]
    fn query_round_trips(q in arb_query()) {
        let sql = q.to_string();
        let parsed = parse_query(&sql).unwrap_or_else(|err| panic!("{sql}\n{err}"));
        prop_assert_eq!(q, parsed, "sql: {}", sql);
    }

    #[test]
    fn printing_is_stable(q in arb_query()) {
        // print -> parse -> print is a fixed point
        let once = q.to_string();
        let twice = parse_query(&once).unwrap().to_string();
        prop_assert_eq!(once, twice);
    }
}
