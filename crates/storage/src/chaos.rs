//! Deterministic, seed-driven chaos scheduling over the failpoint sites.
//!
//! A [`ChaosPlan`] describes *which* failpoint sites misbehave and *how
//! often*, all derived from one master seed: each site gets a private
//! xorshift stream seeded by `splitmix64(master ^ hash(site))`, so the
//! whole fault schedule — which pass of which site errors, panics, or
//! sails through — is a pure function of `(seed, site, pass index)`.
//! Re-arming the same plan replays the same faults, which is what lets
//! the soak test assert answer identity between a chaotic parallel run
//! and a clean serial one: the *sites* fire nondeterministically across
//! threads, but every individual request still ends in one of the three
//! sanctioned states (complete answer, well-formed degradation, typed
//! error).
//!
//! Like every failpoint facility, a plan only has effect under the
//! `failpoints` feature; arming it in a production build is a no-op.

use crate::failpoint::{self, FailAction};

/// SplitMix64 — used to decorrelate per-site seeds derived from the
/// master seed, so adjacent master seeds don't produce correlated site
/// streams.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over the site name; stable across runs and platforms.
fn site_hash(site: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in site.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// One site's misbehaviour rates, in basis points (1/10 000 per pass).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SiteRates {
    error: u32,
    panic: u32,
    delay: u32,
    delay_ms: u64,
}

impl SiteRates {
    const ZERO: SiteRates = SiteRates { error: 0, panic: 0, delay: 0, delay_ms: 0 };
}

/// A reproducible chaos schedule: a master seed plus per-site fault
/// rates.
///
/// ```
/// use qp_storage::ChaosPlan;
/// let plan = ChaosPlan::new(7)
///     .error("exec.scan", 500)      // 5% of scans fail
///     .panic("ppa.presence", 100);  // 1% of presence probes panic
/// let scenario = qp_storage::failpoint::FailScenario::setup();
/// plan.arm();
/// // ... run the workload; faults replay exactly for seed 7 ...
/// drop(scenario);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosPlan {
    seed: u64,
    sites: Vec<(String, SiteRates)>,
}

impl ChaosPlan {
    /// An empty plan for `seed`. Sites are added with
    /// [`ChaosPlan::error`] / [`ChaosPlan::panic`].
    pub fn new(seed: u64) -> Self {
        ChaosPlan { seed, sites: Vec::new() }
    }

    /// The master seed the per-site streams derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Sets the injected-*error* rate (basis points per pass) for `site`.
    pub fn error(mut self, site: &str, rate_bp: u32) -> Self {
        self.entry(site).error = rate_bp;
        self
    }

    /// Sets the injected-*panic* rate (basis points per pass) for `site`.
    pub fn panic(mut self, site: &str, rate_bp: u32) -> Self {
        self.entry(site).panic = rate_bp;
        self
    }

    /// Sets the injected-*delay* rate (basis points per pass) and the
    /// sleep duration for `site`. Models slow I/O on the wire: the pass
    /// still succeeds, it just takes `ms` longer.
    pub fn delay(mut self, site: &str, rate_bp: u32, ms: u64) -> Self {
        let entry = self.entry(site);
        entry.delay = rate_bp;
        entry.delay_ms = ms;
        self
    }

    fn entry(&mut self, site: &str) -> &mut SiteRates {
        if let Some(i) = self.sites.iter().position(|(s, _)| s == site) {
            return &mut self.sites[i].1;
        }
        self.sites.push((site.to_string(), SiteRates::ZERO));
        let last = self.sites.len() - 1;
        &mut self.sites[last].1
    }

    /// The sites this plan arms, in insertion order.
    pub fn sites(&self) -> impl Iterator<Item = &str> {
        self.sites.iter().map(|(s, _)| s.as_str())
    }

    /// Arms every site in the plan. The caller is responsible for holding
    /// a [`crate::failpoint::FailScenario`] so concurrent tests don't
    /// observe the faults; [`ChaosPlan::disarm`] (or the scenario's drop)
    /// removes them.
    pub fn arm(&self) {
        for (site, rates) in &self.sites {
            let seed = match splitmix64(self.seed ^ site_hash(site)) {
                0 => 1, // 0 would disable the stream
                s => s,
            };
            failpoint::arm(
                site,
                FailAction::Chaos {
                    seed,
                    error_rate: rates.error,
                    panic_rate: rates.panic,
                    delay_rate: rates.delay,
                    delay_ms: rates.delay_ms,
                },
            );
        }
    }

    /// Disarms every site in the plan (leaving unrelated sites alone).
    pub fn disarm(&self) {
        for (site, _) in &self.sites {
            failpoint::disarm(site);
        }
    }

    /// A broad default schedule for soak tests: low-rate errors across
    /// the execution, PPA, cache, and snapshot sites, plus a trickle of
    /// worker panics — wide enough to exercise every degradation path,
    /// mild enough that most requests still complete. Panics are confined
    /// to `exec.pool.spawn`, the one site inside the pool's
    /// `catch_unwind` isolation boundary: coordinator-thread sites map
    /// injected *errors* onto typed degradations, but have no panic
    /// isolation by design.
    pub fn serving_default(seed: u64) -> Self {
        ChaosPlan::new(seed)
            .error("exec.scan", 150)
            .error("exec.hash_join.build", 150)
            .error("ppa.presence", 200)
            .error("ppa.absence", 200)
            .error("ppa.step3", 150)
            .error("spa.execute", 200)
            .error("cache.plan.shard", 100)
            .error("cache.pref.shard", 100)
            .error("snapshot.update", 200)
            .panic("exec.pool.spawn", 80)
    }

    /// A network-layer schedule for the wire-protocol soak: low-rate read
    /// and write errors (the server aborts the offending connection with
    /// a typed error or a hang-up the client surfaces as `Io`), a trickle
    /// of torn writes (partial frame then disconnect), and delayed reads
    /// that model slow clients pressing against the server's deadlines.
    /// Compose with [`ChaosPlan::serving_default`]-style sites by
    /// chaining more builder calls on the returned plan.
    pub fn wire_default(seed: u64) -> Self {
        ChaosPlan::new(seed)
            .error("net.read", 150)
            .error("net.write", 150)
            .error("net.write.short", 100)
            .delay("net.read", 200, 5)
            .delay("net.write", 100, 5)
    }

    /// A disk-fault schedule for the durability soak: low-rate append
    /// errors and fsync failures (each one degrades the profile store to
    /// read-only — the soak asserts the degradation is typed and reads
    /// keep serving), plus delayed writes that model a congested device
    /// stalling the flusher. `persist.read` is deliberately absent: read
    /// faults abort recovery by design, which is a separate directed
    /// test, not soak material.
    pub fn disk_default(seed: u64) -> Self {
        ChaosPlan::new(seed)
            .error("persist.write", 150)
            .error("persist.fsync", 100)
            .delay("persist.write", 200, 2)
    }
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;
    use crate::failpoint::FailScenario;

    #[test]
    fn plan_faults_replay_per_seed() {
        let sequence = |seed: u64| {
            let _s = FailScenario::setup();
            ChaosPlan::new(seed).error("t.chaos.a", 2500).error("t.chaos.b", 2500).arm();
            (0..48)
                .map(|i| {
                    let site = if i % 2 == 0 { "t.chaos.a" } else { "t.chaos.b" };
                    failpoint::check(site).is_err()
                })
                .collect::<Vec<bool>>()
        };
        let a = sequence(1);
        assert_eq!(a, sequence(1));
        assert_ne!(a, sequence(2));
    }

    #[test]
    fn sites_decorrelate_under_one_master_seed() {
        let _s = FailScenario::setup();
        ChaosPlan::new(9).error("t.dec.a", 5000).error("t.dec.b", 5000).arm();
        let a: Vec<bool> = (0..64).map(|_| failpoint::check("t.dec.a").is_err()).collect();
        let b: Vec<bool> = (0..64).map(|_| failpoint::check("t.dec.b").is_err()).collect();
        assert_ne!(a, b, "same master seed must not give both sites the same stream");
    }

    #[test]
    fn rates_compose_on_one_site() {
        let plan = ChaosPlan::new(3).error("t.mix", 1000).panic("t.mix", 1000);
        assert_eq!(plan.sites().count(), 1, "error+panic on one site share an entry");
        let _s = FailScenario::setup();
        plan.arm();
        let mut errors = 0;
        let mut panics = 0;
        for _ in 0..400 {
            match std::panic::catch_unwind(|| failpoint::check("t.mix")) {
                Ok(Ok(())) => {}
                Ok(Err(_)) => errors += 1,
                Err(_) => panics += 1,
            }
        }
        assert!(errors > 0, "error share fires");
        assert!(panics > 0, "panic share fires");
    }

    #[test]
    fn delay_share_composes_with_errors() {
        let plan = ChaosPlan::new(4).error("t.wire", 2000).delay("t.wire", 8000, 1);
        assert_eq!(plan.sites().count(), 1, "error+delay on one site share an entry");
        let _s = FailScenario::setup();
        plan.arm();
        let mut errors = 0;
        let start = std::time::Instant::now();
        for _ in 0..64 {
            if failpoint::check("t.wire").is_err() {
                errors += 1;
            }
        }
        assert!(errors > 0, "error share fires");
        assert!(
            start.elapsed() >= std::time::Duration::from_millis(10),
            "~80% delay share slept a measurable amount across 64 passes"
        );
    }

    #[test]
    fn wire_default_covers_network_sites() {
        let plan = ChaosPlan::wire_default(1);
        let sites: Vec<&str> = plan.sites().collect();
        for expected in ["net.read", "net.write", "net.write.short"] {
            assert!(sites.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn disarm_removes_only_plan_sites() {
        let _s = FailScenario::setup();
        failpoint::arm("t.other", FailAction::Error("keep".into()));
        let plan = ChaosPlan::new(5).error("t.mine", 10_000);
        plan.arm();
        assert!(failpoint::check("t.mine").is_err());
        plan.disarm();
        assert_eq!(failpoint::check("t.mine"), Ok(()));
        assert!(failpoint::check("t.other").is_err(), "unrelated site survives");
    }
}
