//! A database: a catalog plus one table per relation, with lazily built
//! histograms and indexes.
//!
//! Statistics (histograms, hash indexes) are cached behind a lock with
//! interior mutability so the execution engine — which only ever holds
//! `&Database` — can request them on demand, the way a real DBMS executor
//! consults its catalog statistics.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::delta::{resolve_deletes, AppliedDelta, AppliedRelationDelta, DbDelta};
use crate::error::StorageError;
use crate::histogram::Histogram;
use crate::index::Index;
use crate::schema::{AttrId, Attribute, Catalog, RelId};
use crate::table::{validate_row, Row, RowId, Table};
use crate::value::Value;

/// Process-wide source of unique database ids (see [`Database::id`]).
static NEXT_DATABASE_ID: AtomicU64 = AtomicU64::new(1);

/// An in-memory database instance.
///
/// Tables are held behind [`Arc`] so a snapshot clone (see
/// [`crate::SnapshotStore`]) is cheap — only the table *pointers* are
/// copied; a writer that then mutates one table copies just that table
/// via [`Arc::make_mut`], leaving every other table shared with the
/// snapshot it was cloned from.
#[derive(Debug)]
pub struct Database {
    catalog: Catalog,
    tables: Vec<Arc<Table>>,
    histograms: RwLock<HashMap<AttrId, Arc<Histogram>>>,
    indexes: RwLock<HashMap<AttrId, Arc<Index>>>,
    /// Process-unique instance id; cache keys combine it with
    /// [`Database::version`] so entries from one database never serve
    /// another.
    id: u64,
    /// Monotonic catalog/content version, bumped on every mutation
    /// (relation creation, insert, bulk load). Plan caches key on it:
    /// a stale version means cached plans (and the selectivities and
    /// materialized `IN`-sets frozen inside them) may no longer match.
    version: u64,
}

impl Default for Database {
    fn default() -> Self {
        Database {
            catalog: Catalog::default(),
            tables: Vec::new(),
            histograms: RwLock::new(HashMap::new()),
            indexes: RwLock::new(HashMap::new()),
            id: NEXT_DATABASE_ID.fetch_add(1, Ordering::Relaxed),
            version: 0,
        }
    }
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// A copy-on-write snapshot clone for [`crate::SnapshotStore`]:
    /// preserves `id` **and** `version` (the clone *is* the same logical
    /// database at the same point in time), Arc-shares every table, and
    /// carries over the already-built histogram/index caches. Deliberately
    /// not a public `Clone` impl: two clones mutated independently would
    /// collide on `(id, version)` cache keys, so cloning is reserved for
    /// the store, which serializes writers and publishes every mutation
    /// through a version bump.
    pub(crate) fn snapshot_clone(&self) -> Database {
        Database {
            catalog: self.catalog.clone(),
            tables: self.tables.clone(),
            histograms: RwLock::new(self.histograms.read().clone()),
            indexes: RwLock::new(self.indexes.read().clone()),
            id: self.id,
            version: self.version,
        }
    }

    /// A process-unique identifier for this database instance.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The current content/catalog version. Any mutation (DDL or DML)
    /// increments it, which invalidates plan-cache entries keyed on the
    /// previous version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The schema catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable catalog access for join-edge registration. Conservatively
    /// bumps [`Database::version`]: the caller may change schema metadata
    /// that compiled plans depend on.
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        self.version += 1;
        &mut self.catalog
    }

    /// Creates a relation and its (empty) table.
    pub fn create_relation(
        &mut self,
        name: impl Into<String>,
        attributes: Vec<Attribute>,
        primary_key: &[&str],
    ) -> Result<RelId, StorageError> {
        let id = self.catalog.add_relation(name, attributes, primary_key)?;
        self.tables.push(Arc::new(Table::new()));
        self.version += 1;
        Ok(id)
    }

    /// The table of a relation.
    pub fn table(&self, rel: RelId) -> &Table {
        self.tables[rel.0 as usize].as_ref()
    }

    /// The table of a relation, by name.
    pub fn table_by_name(&self, name: &str) -> Result<&Table, StorageError> {
        let rel = self.catalog.relation_by_name(name)?;
        Ok(self.table(rel.id))
    }

    /// Inserts a validated row. Invalidates histograms and indexes on the
    /// relation's attributes.
    pub fn insert(&mut self, rel: RelId, row: Row) -> Result<RowId, StorageError> {
        crate::failpoint::check("storage.insert").map_err(StorageError::Injected)?;
        let relation = self.catalog.relation(rel);
        let id = Arc::make_mut(&mut self.tables[rel.0 as usize]).insert(relation, row)?;
        self.invalidate_stats(rel);
        Ok(id)
    }

    /// Inserts a row by relation name.
    pub fn insert_by_name(&mut self, name: &str, row: Row) -> Result<RowId, StorageError> {
        let rel = self.catalog.relation_by_name(name)?.id;
        self.insert(rel, row)
    }

    /// Bulk-loads rows without per-row validation (generator fast path).
    pub fn bulk_load(&mut self, rel: RelId, rows: impl IntoIterator<Item = Row>) {
        let table = Arc::make_mut(&mut self.tables[rel.0 as usize]);
        for row in rows {
            table.insert_unchecked(row);
        }
        self.invalidate_stats(rel);
    }

    /// Tombstones the first live row of `rel` whose values equal `row`.
    /// Invalidates histograms and indexes on the relation's attributes.
    pub fn delete(&mut self, rel: RelId, row: &[Value]) -> Result<RowId, StorageError> {
        let relation = self.catalog.relation(rel);
        let id = self.tables[rel.0 as usize].find_live(row).ok_or_else(|| {
            StorageError::NoSuchTuple {
                relation: relation.name.clone(),
                detail: crate::delta::render_tuple(row),
            }
        })?;
        Arc::make_mut(&mut self.tables[rel.0 as usize]).delete(id);
        self.invalidate_stats(rel);
        Ok(id)
    }

    /// Applies a [`DbDelta`] atomically: the whole delta is validated
    /// against the current state first (unknown relations, arity/type
    /// mismatches on inserts, deletes with no matching live tuple all
    /// reject it), and only then are tables mutated — deletes before
    /// inserts within each relation, deletes resolved against the
    /// pre-delta state. Returns the applied row ids per relation; the
    /// version is bumped once per touched relation, so a successful
    /// apply always publishes a strictly greater version.
    pub fn apply_delta(&mut self, delta: &DbDelta) -> Result<AppliedDelta, StorageError> {
        let old_version = self.version;
        // Phase 1: validate everything read-only.
        let mut resolved: Vec<(RelId, Vec<RowId>)> = Vec::with_capacity(delta.relations.len());
        for slice in &delta.relations {
            let relation = self.catalog.relation_by_name(&slice.relation)?;
            let rel = relation.id;
            if resolved.iter().any(|(r, _)| *r == rel) {
                // The builder API can't produce this, but hand-built
                // deltas could; folding both slices would make delete
                // resolution order-dependent, so reject instead.
                return Err(StorageError::DuplicateRelation(relation.name.clone()));
            }
            for row in &slice.inserts {
                validate_row(relation, row)?;
            }
            let deleted = resolve_deletes(self.table(rel), &relation.name, &slice.deletes)?;
            resolved.push((rel, deleted));
        }
        // Phase 2: mutate. Nothing below can fail.
        let mut applied = Vec::with_capacity(delta.relations.len());
        for (slice, (rel, deleted)) in delta.relations.iter().zip(resolved) {
            let name = self.catalog.relation(rel).name.clone();
            let table = Arc::make_mut(&mut self.tables[rel.0 as usize]);
            for id in &deleted {
                table.delete(*id);
            }
            let inserted: Vec<RowId> =
                slice.inserts.iter().map(|row| table.insert_unchecked(row.clone())).collect();
            self.invalidate_stats(rel);
            applied.push(AppliedRelationDelta { rel, relation: name, deleted, inserted });
        }
        Ok(AppliedDelta { old_version, new_version: self.version, relations: applied })
    }

    fn invalidate_stats(&mut self, rel: RelId) {
        self.version += 1;
        self.histograms.get_mut().retain(|attr, _| attr.rel != rel);
        self.indexes.get_mut().retain(|attr, _| attr.rel != rel);
    }

    /// Returns (building on first use) the histogram for an attribute.
    pub fn histogram(&self, attr: AttrId) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().get(&attr) {
            return Arc::clone(h);
        }
        let table = &self.tables[attr.rel.0 as usize];
        let hist = Arc::new(Histogram::build(table.live_column(attr.idx as usize)));
        self.histograms.write().entry(attr).or_insert_with(|| Arc::clone(&hist));
        hist
    }

    /// Returns (building on first use) the hash index for an attribute.
    pub fn index(&self, attr: AttrId) -> Arc<Index> {
        if let Some(i) = self.indexes.read().get(&attr) {
            return Arc::clone(i);
        }
        let table = &self.tables[attr.rel.0 as usize];
        let index = Arc::new(Index::build_pairs(table.live_column_pairs(attr.idx as usize)));
        self.indexes.write().entry(attr).or_insert_with(|| Arc::clone(&index));
        index
    }

    /// Precomputes histograms and indexes for every attribute. Benchmarks
    /// call this so measurement excludes one-time statistics builds.
    pub fn warm_statistics(&self) {
        for rel in self.catalog.relations() {
            for i in 0..rel.arity() {
                let attr = AttrId::new(rel.id, i as u32);
                self.histogram(attr);
                self.index(attr);
            }
        }
    }

    /// Total number of live rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(|t| t.live_len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;
    use crate::value::Value;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_relation(
            "MOVIE",
            vec![
                Attribute::new("mid", DataType::Int),
                Attribute::new("title", DataType::Text),
                Attribute::new("year", DataType::Int),
            ],
            &["mid"],
        )
        .unwrap();
        for i in 0..10 {
            db.insert_by_name(
                "MOVIE",
                vec![Value::Int(i), Value::str(format!("m{i}")), Value::Int(1980 + i)],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn create_and_insert() {
        let db = db();
        assert_eq!(db.table_by_name("movie").unwrap().len(), 10);
        assert_eq!(db.total_rows(), 10);
    }

    #[test]
    fn histogram_lazily_built_and_invalidated() {
        let mut db = db();
        let attr = db.catalog().resolve("MOVIE", "year").unwrap();
        let h = db.histogram(attr);
        assert_eq!(h.row_count(), 10);
        // Insert invalidates
        db.insert_by_name("MOVIE", vec![Value::Int(10), Value::str("x"), Value::Int(2001)])
            .unwrap();
        let h = db.histogram(attr);
        assert_eq!(h.row_count(), 11);
    }

    #[test]
    fn index_lookup() {
        let db = db();
        let attr = db.catalog().resolve("MOVIE", "mid").unwrap();
        let hits = db.index(attr).lookup(&Value::Int(3)).to_vec();
        assert_eq!(hits.len(), 1);
        let row = db.table_by_name("MOVIE").unwrap().get(hits[0]).unwrap().clone();
        assert_eq!(row[1], Value::str("m3"));
    }

    #[test]
    fn warm_statistics_builds_everything() {
        let db = db();
        db.warm_statistics();
        let attr = db.catalog().resolve("MOVIE", "title").unwrap();
        // Already built; still accessible.
        assert_eq!(db.histogram(attr).row_count(), 10);
    }

    #[test]
    fn histogram_shared_not_rebuilt() {
        let db = db();
        let attr = db.catalog().resolve("MOVIE", "year").unwrap();
        let h1 = db.histogram(attr);
        let h2 = db.histogram(attr);
        assert!(Arc::ptr_eq(&h1, &h2));
    }

    #[test]
    fn version_bumps_on_mutation_and_ids_are_unique() {
        let a = Database::new();
        let b = Database::new();
        assert_ne!(a.id(), b.id());

        let mut db = db(); // 1 create_relation + 10 inserts
        let v0 = db.version();
        assert!(v0 >= 11);
        db.insert_by_name("MOVIE", vec![Value::Int(99), Value::str("x"), Value::Int(2000)])
            .unwrap();
        assert_eq!(db.version(), v0 + 1);
        let rel = db.catalog().relation_by_name("MOVIE").unwrap().id;
        db.bulk_load(rel, vec![vec![Value::Int(100), Value::str("y"), Value::Int(2001)]]);
        assert_eq!(db.version(), v0 + 2);
        // Reads do not bump.
        let _ = db.table(rel);
        let attr = db.catalog().resolve("MOVIE", "year").unwrap();
        let _ = db.histogram(attr);
        assert_eq!(db.version(), v0 + 2);
    }

    #[test]
    fn unknown_relation_errors() {
        let db = db();
        assert!(db.table_by_name("NOPE").is_err());
    }

    #[test]
    fn apply_delta_inserts_deletes_and_bumps_version() {
        use crate::delta::DbDelta;
        let mut db = db();
        let v0 = db.version();
        let delta = DbDelta::new()
            .delete("MOVIE", vec![Value::Int(3), Value::str("m3"), Value::Int(1983)])
            .insert("MOVIE", vec![Value::Int(50), Value::str("new"), Value::Int(2005)]);
        let applied = db.apply_delta(&delta).unwrap();
        assert_eq!(applied.old_version, v0);
        assert!(applied.new_version > v0);
        assert_eq!(db.version(), applied.new_version);
        assert_eq!(applied.rows_inserted(), 1);
        assert_eq!(applied.rows_deleted(), 1);
        let slice = &applied.relations[0];
        assert_eq!(slice.deleted, vec![RowId(3)]);
        assert_eq!(slice.inserted, vec![RowId(10)], "insert lands in a fresh slot");
        let t = db.table_by_name("MOVIE").unwrap();
        assert_eq!(t.live_len(), 10);
        assert!(t.get(RowId(3)).is_none());
        assert_eq!(t.get(RowId(10)).unwrap()[1], Value::str("new"));
    }

    #[test]
    fn apply_delta_is_all_or_nothing() {
        use crate::delta::DbDelta;
        let mut db = db();
        let v0 = db.version();
        // Valid insert + delete of a tuple that does not exist: rejected
        // wholesale, nothing applied.
        let delta = DbDelta::new()
            .insert("MOVIE", vec![Value::Int(50), Value::str("new"), Value::Int(2005)])
            .delete("MOVIE", vec![Value::Int(99), Value::str("nope"), Value::Int(1900)]);
        assert!(matches!(db.apply_delta(&delta), Err(StorageError::NoSuchTuple { .. })));
        assert_eq!(db.version(), v0);
        assert_eq!(db.total_rows(), 10);

        let bad_arity = DbDelta::new().insert("MOVIE", vec![Value::Int(1)]);
        assert!(matches!(db.apply_delta(&bad_arity), Err(StorageError::ArityMismatch { .. })));
        let bad_rel = DbDelta::new().insert("NOPE", vec![Value::Int(1)]);
        assert!(matches!(db.apply_delta(&bad_rel), Err(StorageError::UnknownRelation(_))));
        let bad_type =
            DbDelta::new().insert("MOVIE", vec![Value::str("x"), Value::str("t"), Value::Int(1)]);
        assert!(matches!(db.apply_delta(&bad_type), Err(StorageError::TypeMismatch { .. })));
        assert_eq!(db.version(), v0, "rejected deltas never bump the version");
    }

    #[test]
    fn delete_then_reinsert_gets_fresh_row_id() {
        use crate::delta::DbDelta;
        let mut db = db();
        let tuple = vec![Value::Int(3), Value::str("m3"), Value::Int(1983)];
        let delta = DbDelta::new().delete("MOVIE", tuple.clone()).insert("MOVIE", tuple.clone());
        let applied = db.apply_delta(&delta).unwrap();
        let slice = &applied.relations[0];
        assert_eq!(slice.deleted, vec![RowId(3)]);
        assert_eq!(slice.inserted, vec![RowId(10)]);
        let t = db.table_by_name("MOVIE").unwrap();
        assert_eq!(t.find_live(&tuple), Some(RowId(10)));
    }

    #[test]
    fn stats_skip_tombstoned_rows() {
        let mut db = db();
        let rel = db.catalog().relation_by_name("MOVIE").unwrap().id;
        let attr = db.catalog().resolve("MOVIE", "mid").unwrap();
        let year = db.catalog().resolve("MOVIE", "year").unwrap();
        db.delete(rel, &[Value::Int(3), Value::str("m3"), Value::Int(1983)]).unwrap();
        assert!(db.index(attr).lookup(&Value::Int(3)).is_empty(), "index never serves dead rows");
        assert_eq!(db.index(attr).lookup(&Value::Int(4)), &[RowId(4)]);
        assert_eq!(db.histogram(year).row_count(), 9);
        assert_eq!(db.total_rows(), 9);
    }
}
