//! A database: a catalog plus one table per relation, with lazily built
//! histograms and indexes.
//!
//! Statistics (histograms, hash indexes) are cached behind a lock with
//! interior mutability so the execution engine — which only ever holds
//! `&Database` — can request them on demand, the way a real DBMS executor
//! consults its catalog statistics.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::StorageError;
use crate::histogram::Histogram;
use crate::index::Index;
use crate::schema::{AttrId, Attribute, Catalog, RelId};
use crate::table::{Row, RowId, Table};

/// Process-wide source of unique database ids (see [`Database::id`]).
static NEXT_DATABASE_ID: AtomicU64 = AtomicU64::new(1);

/// An in-memory database instance.
///
/// Tables are held behind [`Arc`] so a snapshot clone (see
/// [`crate::SnapshotStore`]) is cheap — only the table *pointers* are
/// copied; a writer that then mutates one table copies just that table
/// via [`Arc::make_mut`], leaving every other table shared with the
/// snapshot it was cloned from.
#[derive(Debug)]
pub struct Database {
    catalog: Catalog,
    tables: Vec<Arc<Table>>,
    histograms: RwLock<HashMap<AttrId, Arc<Histogram>>>,
    indexes: RwLock<HashMap<AttrId, Arc<Index>>>,
    /// Process-unique instance id; cache keys combine it with
    /// [`Database::version`] so entries from one database never serve
    /// another.
    id: u64,
    /// Monotonic catalog/content version, bumped on every mutation
    /// (relation creation, insert, bulk load). Plan caches key on it:
    /// a stale version means cached plans (and the selectivities and
    /// materialized `IN`-sets frozen inside them) may no longer match.
    version: u64,
}

impl Default for Database {
    fn default() -> Self {
        Database {
            catalog: Catalog::default(),
            tables: Vec::new(),
            histograms: RwLock::new(HashMap::new()),
            indexes: RwLock::new(HashMap::new()),
            id: NEXT_DATABASE_ID.fetch_add(1, Ordering::Relaxed),
            version: 0,
        }
    }
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// A copy-on-write snapshot clone for [`crate::SnapshotStore`]:
    /// preserves `id` **and** `version` (the clone *is* the same logical
    /// database at the same point in time), Arc-shares every table, and
    /// carries over the already-built histogram/index caches. Deliberately
    /// not a public `Clone` impl: two clones mutated independently would
    /// collide on `(id, version)` cache keys, so cloning is reserved for
    /// the store, which serializes writers and publishes every mutation
    /// through a version bump.
    pub(crate) fn snapshot_clone(&self) -> Database {
        Database {
            catalog: self.catalog.clone(),
            tables: self.tables.clone(),
            histograms: RwLock::new(self.histograms.read().clone()),
            indexes: RwLock::new(self.indexes.read().clone()),
            id: self.id,
            version: self.version,
        }
    }

    /// A process-unique identifier for this database instance.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The current content/catalog version. Any mutation (DDL or DML)
    /// increments it, which invalidates plan-cache entries keyed on the
    /// previous version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The schema catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable catalog access for join-edge registration. Conservatively
    /// bumps [`Database::version`]: the caller may change schema metadata
    /// that compiled plans depend on.
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        self.version += 1;
        &mut self.catalog
    }

    /// Creates a relation and its (empty) table.
    pub fn create_relation(
        &mut self,
        name: impl Into<String>,
        attributes: Vec<Attribute>,
        primary_key: &[&str],
    ) -> Result<RelId, StorageError> {
        let id = self.catalog.add_relation(name, attributes, primary_key)?;
        self.tables.push(Arc::new(Table::new()));
        self.version += 1;
        Ok(id)
    }

    /// The table of a relation.
    pub fn table(&self, rel: RelId) -> &Table {
        self.tables[rel.0 as usize].as_ref()
    }

    /// The table of a relation, by name.
    pub fn table_by_name(&self, name: &str) -> Result<&Table, StorageError> {
        let rel = self.catalog.relation_by_name(name)?;
        Ok(self.table(rel.id))
    }

    /// Inserts a validated row. Invalidates histograms and indexes on the
    /// relation's attributes.
    pub fn insert(&mut self, rel: RelId, row: Row) -> Result<RowId, StorageError> {
        crate::failpoint::check("storage.insert").map_err(StorageError::Injected)?;
        let relation = self.catalog.relation(rel);
        let id = Arc::make_mut(&mut self.tables[rel.0 as usize]).insert(relation, row)?;
        self.invalidate_stats(rel);
        Ok(id)
    }

    /// Inserts a row by relation name.
    pub fn insert_by_name(&mut self, name: &str, row: Row) -> Result<RowId, StorageError> {
        let rel = self.catalog.relation_by_name(name)?.id;
        self.insert(rel, row)
    }

    /// Bulk-loads rows without per-row validation (generator fast path).
    pub fn bulk_load(&mut self, rel: RelId, rows: impl IntoIterator<Item = Row>) {
        let table = Arc::make_mut(&mut self.tables[rel.0 as usize]);
        for row in rows {
            table.insert_unchecked(row);
        }
        self.invalidate_stats(rel);
    }

    fn invalidate_stats(&mut self, rel: RelId) {
        self.version += 1;
        self.histograms.get_mut().retain(|attr, _| attr.rel != rel);
        self.indexes.get_mut().retain(|attr, _| attr.rel != rel);
    }

    /// Returns (building on first use) the histogram for an attribute.
    pub fn histogram(&self, attr: AttrId) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().get(&attr) {
            return Arc::clone(h);
        }
        let table = &self.tables[attr.rel.0 as usize];
        let hist = Arc::new(Histogram::build(table.column(attr.idx as usize)));
        self.histograms.write().entry(attr).or_insert_with(|| Arc::clone(&hist));
        hist
    }

    /// Returns (building on first use) the hash index for an attribute.
    pub fn index(&self, attr: AttrId) -> Arc<Index> {
        if let Some(i) = self.indexes.read().get(&attr) {
            return Arc::clone(i);
        }
        let table = &self.tables[attr.rel.0 as usize];
        let index = Arc::new(Index::build(table.column(attr.idx as usize)));
        self.indexes.write().entry(attr).or_insert_with(|| Arc::clone(&index));
        index
    }

    /// Precomputes histograms and indexes for every attribute. Benchmarks
    /// call this so measurement excludes one-time statistics builds.
    pub fn warm_statistics(&self) {
        for rel in self.catalog.relations() {
            for i in 0..rel.arity() {
                let attr = AttrId::new(rel.id, i as u32);
                self.histogram(attr);
                self.index(attr);
            }
        }
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(|t| t.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;
    use crate::value::Value;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_relation(
            "MOVIE",
            vec![
                Attribute::new("mid", DataType::Int),
                Attribute::new("title", DataType::Text),
                Attribute::new("year", DataType::Int),
            ],
            &["mid"],
        )
        .unwrap();
        for i in 0..10 {
            db.insert_by_name(
                "MOVIE",
                vec![Value::Int(i), Value::str(format!("m{i}")), Value::Int(1980 + i)],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn create_and_insert() {
        let db = db();
        assert_eq!(db.table_by_name("movie").unwrap().len(), 10);
        assert_eq!(db.total_rows(), 10);
    }

    #[test]
    fn histogram_lazily_built_and_invalidated() {
        let mut db = db();
        let attr = db.catalog().resolve("MOVIE", "year").unwrap();
        let h = db.histogram(attr);
        assert_eq!(h.row_count(), 10);
        // Insert invalidates
        db.insert_by_name("MOVIE", vec![Value::Int(10), Value::str("x"), Value::Int(2001)])
            .unwrap();
        let h = db.histogram(attr);
        assert_eq!(h.row_count(), 11);
    }

    #[test]
    fn index_lookup() {
        let db = db();
        let attr = db.catalog().resolve("MOVIE", "mid").unwrap();
        let hits = db.index(attr).lookup(&Value::Int(3)).to_vec();
        assert_eq!(hits.len(), 1);
        let row = db.table_by_name("MOVIE").unwrap().get(hits[0]).unwrap().clone();
        assert_eq!(row[1], Value::str("m3"));
    }

    #[test]
    fn warm_statistics_builds_everything() {
        let db = db();
        db.warm_statistics();
        let attr = db.catalog().resolve("MOVIE", "title").unwrap();
        // Already built; still accessible.
        assert_eq!(db.histogram(attr).row_count(), 10);
    }

    #[test]
    fn histogram_shared_not_rebuilt() {
        let db = db();
        let attr = db.catalog().resolve("MOVIE", "year").unwrap();
        let h1 = db.histogram(attr);
        let h2 = db.histogram(attr);
        assert!(Arc::ptr_eq(&h1, &h2));
    }

    #[test]
    fn version_bumps_on_mutation_and_ids_are_unique() {
        let a = Database::new();
        let b = Database::new();
        assert_ne!(a.id(), b.id());

        let mut db = db(); // 1 create_relation + 10 inserts
        let v0 = db.version();
        assert!(v0 >= 11);
        db.insert_by_name("MOVIE", vec![Value::Int(99), Value::str("x"), Value::Int(2000)])
            .unwrap();
        assert_eq!(db.version(), v0 + 1);
        let rel = db.catalog().relation_by_name("MOVIE").unwrap().id;
        db.bulk_load(rel, vec![vec![Value::Int(100), Value::str("y"), Value::Int(2001)]]);
        assert_eq!(db.version(), v0 + 2);
        // Reads do not bump.
        let _ = db.table(rel);
        let attr = db.catalog().resolve("MOVIE", "year").unwrap();
        let _ = db.histogram(attr);
        assert_eq!(db.version(), v0 + 2);
    }

    #[test]
    fn unknown_relation_errors() {
        let db = db();
        assert!(db.table_by_name("NOPE").is_err());
    }
}
