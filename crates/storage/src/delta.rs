//! Typed write deltas: batched tuple inserts/deletes per relation.
//!
//! A [`DbDelta`] is the unit of write traffic the serving fleet sees:
//! a set of tuples to delete and insert, grouped by relation, applied
//! atomically through [`crate::SnapshotStore::publish_delta`]. The
//! applied form ([`AppliedDelta`]) records exactly which row ids each
//! relation gained and lost, which is what the incremental-maintenance
//! layer in `qp-core` consumes to patch materialized preference
//! results instead of recomputing them.
//!
//! Deletes are *value-addressed*: a delete names a full tuple, and
//! application resolves it to the first live row with equal values in
//! the **pre-delta** state. Deletes are applied before inserts within a
//! relation, so a delete-then-reinsert delta tombstones the old slot
//! and lands the reinserted tuple in a fresh one (row ids are never
//! reused — see [`crate::Table`]).

use std::collections::HashSet;
use std::fmt::Write as _;

use crate::schema::RelId;
use crate::table::{Row, RowId};
use crate::value::Value;

/// One relation's slice of a [`DbDelta`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RelationDelta {
    /// Relation name (resolved case-insensitively against the catalog).
    pub relation: String,
    /// Tuples to tombstone, matched by full-tuple value equality
    /// against live rows of the pre-delta state.
    pub deletes: Vec<Row>,
    /// Tuples to append (validated against the relation's schema).
    pub inserts: Vec<Row>,
}

/// A batch of tuple-level writes, applied atomically: either every
/// delete and insert lands and a new snapshot is published, or the
/// delta is rejected and the database is untouched.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DbDelta {
    /// Per-relation inserts/deletes, applied in order.
    pub relations: Vec<RelationDelta>,
}

impl DbDelta {
    /// An empty delta.
    pub fn new() -> Self {
        DbDelta::default()
    }

    /// Adds a tuple insert, creating the relation's slice on first use.
    pub fn insert(mut self, relation: &str, row: Row) -> Self {
        self.slice_mut(relation).inserts.push(row);
        self
    }

    /// Adds a value-addressed tuple delete.
    pub fn delete(mut self, relation: &str, row: Row) -> Self {
        self.slice_mut(relation).deletes.push(row);
        self
    }

    fn slice_mut(&mut self, relation: &str) -> &mut RelationDelta {
        if let Some(i) = self.relations.iter().position(|r| r.relation == relation) {
            return &mut self.relations[i];
        }
        self.relations.push(RelationDelta { relation: relation.to_string(), ..Default::default() });
        self.relations.last_mut().expect("just pushed")
    }

    /// Total number of tuple operations (inserts + deletes).
    pub fn ops(&self) -> usize {
        self.relations.iter().map(|r| r.inserts.len() + r.deletes.len()).sum()
    }

    /// True iff the delta carries no operations.
    pub fn is_empty(&self) -> bool {
        self.ops() == 0
    }
}

/// Human-readable rendering of a tuple for error messages.
pub(crate) fn render_tuple(row: &[Value]) -> String {
    let mut s = String::from("(");
    for (i, v) in row.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{v}");
    }
    s.push(')');
    s
}

/// One relation's slice of an [`AppliedDelta`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedRelationDelta {
    /// The relation the rows belong to.
    pub rel: RelId,
    /// Canonical relation name from the catalog.
    pub relation: String,
    /// Row ids tombstoned by this delta.
    pub deleted: Vec<RowId>,
    /// Row ids appended by this delta, in ascending order (appends take
    /// ids greater than every pre-existing slot).
    pub inserted: Vec<RowId>,
}

/// The record of a successfully applied [`DbDelta`]: which row ids each
/// relation lost and gained, and the version edge the publish crossed.
/// This is the contract the maintenance layer patches from.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AppliedDelta {
    /// Database version before the delta.
    pub old_version: u64,
    /// Database version after the delta (strictly greater).
    pub new_version: u64,
    /// Per-relation applied row ids (only relations the delta touched).
    pub relations: Vec<AppliedRelationDelta>,
}

impl AppliedDelta {
    /// Total rows inserted across relations.
    pub fn rows_inserted(&self) -> usize {
        self.relations.iter().map(|r| r.inserted.len()).sum()
    }

    /// Total rows deleted across relations.
    pub fn rows_deleted(&self) -> usize {
        self.relations.iter().map(|r| r.deleted.len()).sum()
    }

    /// The applied slice for `rel`, if the delta touched it.
    pub fn relation(&self, rel: RelId) -> Option<&AppliedRelationDelta> {
        self.relations.iter().find(|r| r.rel == rel)
    }

    /// True iff the delta touched `rel`.
    pub fn touches(&self, rel: RelId) -> bool {
        self.relation(rel).is_some()
    }
}

/// Resolves the deletes of one relation delta against the pre-delta
/// table state: each delete tuple claims the first live, not yet
/// claimed row with equal values. Returns the claimed row ids in
/// delete order.
pub(crate) fn resolve_deletes(
    table: &crate::table::Table,
    relation: &str,
    deletes: &[Row],
) -> Result<Vec<RowId>, crate::error::StorageError> {
    let mut claimed: HashSet<RowId> = HashSet::new();
    let mut out = Vec::with_capacity(deletes.len());
    for del in deletes {
        let hit = table
            .iter()
            .find(|(id, r)| !claimed.contains(id) && r.as_slice() == del.as_slice())
            .map(|(id, _)| id);
        match hit {
            Some(id) => {
                claimed.insert(id);
                out.push(id);
            }
            None => {
                return Err(crate::error::StorageError::NoSuchTuple {
                    relation: relation.to_string(),
                    detail: render_tuple(del),
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_groups_by_relation() {
        let d = DbDelta::new()
            .insert("MOVIE", vec![Value::Int(1)])
            .delete("MOVIE", vec![Value::Int(2)])
            .insert("GENRE", vec![Value::Int(3)]);
        assert_eq!(d.relations.len(), 2);
        assert_eq!(d.ops(), 3);
        assert!(!d.is_empty());
        assert!(DbDelta::new().is_empty());
    }

    #[test]
    fn duplicate_deletes_claim_distinct_rows() {
        let mut t = crate::table::Table::new();
        t.insert_unchecked(vec![Value::Int(7)]);
        t.insert_unchecked(vec![Value::Int(7)]);
        let dels = vec![vec![Value::Int(7)], vec![Value::Int(7)]];
        let ids = resolve_deletes(&t, "R", &dels).unwrap();
        assert_eq!(ids, vec![RowId(0), RowId(1)]);
        let three = vec![vec![Value::Int(7)], vec![Value::Int(7)], vec![Value::Int(7)]];
        assert!(matches!(
            resolve_deletes(&t, "R", &three),
            Err(crate::error::StorageError::NoSuchTuple { .. })
        ));
    }

    #[test]
    fn render_tuple_is_readable() {
        assert_eq!(render_tuple(&[Value::Int(1), Value::str("x")]), "(1, x)");
    }
}
