//! TSV dump and load for whole databases.
//!
//! Reproduction packages need a way to ship data that is not the built-in
//! generator (e.g. a real IMDB extract). A dump is one `<RELATION>.tsv`
//! per relation plus a `_schema.txt` describing attributes, types, domain
//! kinds, keys, and join edges; [`load_dir`] reconstructs the database.
//! Values are tab-separated with `\t`, `\n`, `\r`, `\\` escapes and `\N`
//! for NULL (the classic database-dump convention).

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::database::Database;
use crate::schema::Attribute;
use crate::types::{DataType, DomainKind};
use crate::value::Value;

/// Writes the whole database under `dir` (created if needed).
pub fn dump_dir(db: &Database, dir: &Path) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut schema = String::new();
    for rel in db.catalog().relations() {
        let _ = write!(schema, "relation {}", rel.name);
        for (i, a) in rel.attributes.iter().enumerate() {
            let kind = match a.domain {
                DomainKind::Categorical => "categorical",
                DomainKind::Numeric => "numeric",
            };
            let key = if rel.primary_key.contains(&i) { ":key" } else { "" };
            let _ = write!(schema, " {}:{}:{}{}", a.name, a.data_type, kind, key);
        }
        schema.push('\n');

        let mut data = String::new();
        for (_, row) in db.table(rel.id).iter() {
            for (i, v) in row.iter().enumerate() {
                if i > 0 {
                    data.push('\t');
                }
                data.push_str(&escape(v));
            }
            data.push('\n');
        }
        std::fs::write(dir.join(format!("{}.tsv", rel.name)), data)?;
    }
    for fk in db.catalog().join_edges() {
        let _ = writeln!(
            schema,
            "join {} {}",
            db.catalog().attr_name(fk.from),
            db.catalog().attr_name(fk.to)
        );
    }
    std::fs::write(dir.join("_schema.txt"), schema)
}

/// Reads a database previously written by [`dump_dir`].
pub fn load_dir(dir: &Path) -> io::Result<Database> {
    let schema = std::fs::read_to_string(dir.join("_schema.txt"))?;
    let mut db = Database::new();
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let mut joins: Vec<(String, String)> = Vec::new();
    for line in schema.lines() {
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("relation") => {
                let name =
                    parts.next().ok_or_else(|| bad("relation line without name".into()))?;
                let mut attrs = Vec::new();
                let mut keys: Vec<String> = Vec::new();
                for spec in parts {
                    let fields: Vec<&str> = spec.split(':').collect();
                    if fields.len() < 3 {
                        return Err(bad(format!("bad attribute spec `{spec}`")));
                    }
                    let aname = fields[0];
                    let ty = match fields[1] {
                        "INT" => DataType::Int,
                        "FLOAT" => DataType::Float,
                        "TEXT" => DataType::Text,
                        "BOOL" => DataType::Bool,
                        other => return Err(bad(format!("unknown type `{other}`"))),
                    };
                    let domain = match fields[2] {
                        "numeric" => DomainKind::Numeric,
                        "categorical" => DomainKind::Categorical,
                        other => return Err(bad(format!("unknown domain `{other}`"))),
                    };
                    if fields.get(3) == Some(&"key") {
                        keys.push(aname.to_string());
                    }
                    attrs.push(Attribute::new(aname, ty).with_domain(domain));
                }
                let key_refs: Vec<&str> = keys.iter().map(String::as_str).collect();
                db.create_relation(name, attrs, &key_refs)
                    .map_err(|e| bad(e.to_string()))?;
            }
            Some("join") => {
                let a = parts.next().ok_or_else(|| bad("join line missing".into()))?;
                let b = parts.next().ok_or_else(|| bad("join line missing".into()))?;
                joins.push((a.to_string(), b.to_string()));
            }
            _ => {}
        }
    }
    for (a, b) in joins {
        let (ra, aa) = a.split_once('.').ok_or_else(|| bad(format!("bad join attr {a}")))?;
        let (rb, ab) = b.split_once('.').ok_or_else(|| bad(format!("bad join attr {b}")))?;
        // add_join_edge registers both directions; duplicates are ignored
        db.catalog_mut()
            .add_join_edge_by_name(ra, aa, rb, ab)
            .map_err(|e| bad(e.to_string()))?;
    }
    // data
    let rels: Vec<(crate::schema::RelId, String, Vec<DataType>)> = db
        .catalog()
        .relations()
        .iter()
        .map(|r| (r.id, r.name.clone(), r.attributes.iter().map(|a| a.data_type).collect()))
        .collect();
    for (rel, name, types) in rels {
        let path = dir.join(format!("{name}.tsv"));
        let text = std::fs::read_to_string(&path)?;
        let mut rows = Vec::new();
        for (ln, line) in text.lines().enumerate() {
            if line.is_empty() {
                continue;
            }
            let cells: Vec<&str> = line.split('\t').collect();
            if cells.len() != types.len() {
                return Err(bad(format!(
                    "{name}.tsv line {}: expected {} cells, got {}",
                    ln + 1,
                    types.len(),
                    cells.len()
                )));
            }
            let row: Vec<Value> = cells
                .iter()
                .zip(&types)
                .map(|(c, t)| unescape(c, *t))
                .collect::<Result<_, _>>()
                .map_err(|e: String| bad(format!("{name}.tsv line {}: {e}", ln + 1)))?;
            rows.push(row);
        }
        db.bulk_load(rel, rows);
    }
    Ok(db)
}

fn escape(v: &Value) -> String {
    match v {
        Value::Null => "\\N".to_string(),
        other => other
            .to_string()
            .replace('\\', "\\\\")
            .replace('\t', "\\t")
            .replace('\n', "\\n")
            .replace('\r', "\\r"),
    }
}

fn unescape(cell: &str, ty: DataType) -> Result<Value, String> {
    if cell == "\\N" {
        return Ok(Value::Null);
    }
    let mut out = String::with_capacity(cell.len());
    let mut chars = cell.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('t') => out.push('\t'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('\\') => out.push('\\'),
                other => return Err(format!("bad escape \\{other:?}")),
            }
        } else {
            out.push(c);
        }
    }
    Ok(match ty {
        DataType::Int => Value::Int(out.parse().map_err(|e| format!("int: {e}"))?),
        DataType::Float => Value::Float(out.parse().map_err(|e| format!("float: {e}"))?),
        DataType::Bool => Value::Bool(out.parse().map_err(|e| format!("bool: {e}"))?),
        DataType::Text => Value::str(out),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.create_relation(
            "MOVIE",
            vec![
                Attribute::new("mid", DataType::Int),
                Attribute::new("title", DataType::Text),
                Attribute::new("rating", DataType::Float),
                Attribute::new("code", DataType::Int).with_domain(DomainKind::Categorical),
            ],
            &["mid"],
        )
        .unwrap();
        db.create_relation(
            "GENRE",
            vec![Attribute::new("mid", DataType::Int), Attribute::new("genre", DataType::Text)],
            &["mid", "genre"],
        )
        .unwrap();
        db.catalog_mut().add_join_edge_by_name("MOVIE", "mid", "GENRE", "mid").unwrap();
        db.insert_by_name(
            "MOVIE",
            vec![Value::Int(1), Value::str("tab\there"), Value::Float(8.5), Value::Int(3)],
        )
        .unwrap();
        db.insert_by_name(
            "MOVIE",
            vec![Value::Int(2), Value::str("line\nbreak \\ slash"), Value::Null, Value::Null],
        )
        .unwrap();
        db.insert_by_name("GENRE", vec![Value::Int(1), Value::str("comedy")]).unwrap();
        db
    }

    #[test]
    fn round_trip() {
        let db = sample_db();
        let dir = std::env::temp_dir().join(format!("qp_dump_{}", std::process::id()));
        dump_dir(&db, &dir).unwrap();
        let loaded = load_dir(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();

        // schema survives
        let rel = loaded.catalog().relation_by_name("MOVIE").unwrap();
        assert_eq!(rel.arity(), 4);
        assert!(rel.attr_is_unique(0));
        assert_eq!(rel.attributes[3].domain, DomainKind::Categorical);
        let g = loaded.catalog().relation_by_name("GENRE").unwrap();
        assert_eq!(g.primary_key.len(), 2);
        // join edges survive
        let m = loaded.catalog().resolve("MOVIE", "mid").unwrap();
        let gm = loaded.catalog().resolve("GENRE", "mid").unwrap();
        assert!(loaded.catalog().is_joinable(m, gm));

        // data (including escapes and NULL) survives
        let t = loaded.table_by_name("MOVIE").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows()[0][1], Value::str("tab\there"));
        assert_eq!(t.rows()[1][1], Value::str("line\nbreak \\ slash"));
        assert!(t.rows()[1][2].is_null());
    }

    #[test]
    fn missing_schema_errors() {
        let dir = std::env::temp_dir().join(format!("qp_dump_missing_{}", std::process::id()));
        assert!(load_dir(&dir).is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let db = sample_db();
        let dir = std::env::temp_dir().join(format!("qp_dump_bad_{}", std::process::id()));
        dump_dir(&db, &dir).unwrap();
        std::fs::write(dir.join("GENRE.tsv"), "1\tcomedy\textra\n").unwrap();
        let err = load_dir(&dir);
        std::fs::remove_dir_all(&dir).ok();
        assert!(err.is_err());
    }
}
