//! Compact binary encoding for [`Value`]s and profile blobs.
//!
//! The million-profile store keeps every registered profile as an encoded
//! byte blob and only decodes on first use, so the encoding optimizes for
//! *size* and *determinism* rather than for sortability:
//!
//! * **Varint packing** — unsigned integers use LEB128 (7 bits per byte,
//!   high bit = continuation); signed integers are zig-zag folded first so
//!   small negatives stay small.
//! * **Small-int tags** — integers in `[-32, 159]` encode in a single tag
//!   byte (`0x40..=0xFF`), which covers ratings, years-since-epoch deltas
//!   and most categorical codes.
//! * **Float byte-swap** — an `f64` is encoded as the varint of its
//!   byte-swapped bit pattern. Round constants (degrees like `0.5`, years
//!   like `1980.0`) have long runs of trailing mantissa zeros, which the
//!   swap turns into leading zeros the varint drops.
//! * **Dictionary-interned strings** — string payloads are replaced by a
//!   varint id into a [`StringDict`] owned by the enclosing store shard.
//!   A million profiles drawing genres/directors from the same pools share
//!   one copy of each distinct string.
//!
//! Encoding is **byte-stable**: a canonical form exists for every value
//! (small ints *must* use the tag form, floats *must* use the swapped
//! varint), so `encode(decode(encode(v)))` is byte-identical to
//! `encode(v)` — pinned by the proptest suite in `tests/encoding_props.rs`.
//!
//! Layout of a single encoded value:
//!
//! ```text
//! tag 0x00                  NULL
//! tag 0x01 / 0x02           false / true
//! tag 0x03 <zigzag varint>  Int outside [-32, 159]
//! tag 0x04 <swapped varint> Float (f64 bits, byte-swapped)
//! tag 0x05 <varint id>      Str (id into the shard StringDict)
//! tag 0x40..=0xFF           Int in [-32, 159]: value = tag - 0x60
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::value::Value;

/// First tag byte used for inline small integers.
const TAG_SMALL_BASE: u8 = 0x40;
/// Bias subtracted from `tag - TAG_SMALL_BASE` to recover the integer;
/// yields an inline range of `[-32, 159]`.
const SMALL_BIAS: i64 = 32;
/// Smallest integer representable inline.
const SMALL_MIN: i64 = -SMALL_BIAS;
/// Largest integer representable inline (`0xFF - 0x40 - 32`).
const SMALL_MAX: i64 = (0xFF - TAG_SMALL_BASE) as i64 - SMALL_BIAS;

const TAG_NULL: u8 = 0x00;
const TAG_FALSE: u8 = 0x01;
const TAG_TRUE: u8 = 0x02;
const TAG_INT: u8 = 0x03;
const TAG_FLOAT: u8 = 0x04;
const TAG_STR: u8 = 0x05;

/// Errors surfaced while decoding a compact-encoded blob.
///
/// Blobs are produced by this module and stored in process memory, so a
/// decode error indicates corruption (or a version skew bug) rather than
/// hostile input — but the decoder is still total: no input slice panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The blob ended in the middle of a value.
    UnexpectedEof {
        /// Byte offset at which more input was required.
        at: usize,
    },
    /// An unknown tag byte was read.
    BadTag {
        /// The offending tag.
        tag: u8,
        /// Byte offset of the tag.
        at: usize,
    },
    /// A varint ran past the 10-byte maximum for a `u64`.
    VarintOverflow {
        /// Byte offset where the varint started.
        at: usize,
    },
    /// A string id did not resolve in the dictionary.
    BadDictId {
        /// The unresolvable id.
        id: u64,
        /// Byte offset where the id was read.
        at: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof { at } => {
                write!(f, "unexpected end of blob at byte {at}")
            }
            DecodeError::BadTag { tag, at } => {
                write!(f, "unknown value tag {tag:#04x} at byte {at}")
            }
            DecodeError::VarintOverflow { at } => {
                write!(f, "varint longer than 10 bytes at byte {at}")
            }
            DecodeError::BadDictId { id, at } => {
                write!(f, "string id {id} at byte {at} is not in the dictionary")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Appends a LEB128 varint.
pub fn put_u64(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Appends a zig-zag folded signed varint.
pub fn put_i64(buf: &mut Vec<u8>, v: i64) {
    put_u64(buf, zigzag(v));
}

/// Appends an `f64` as the varint of its byte-swapped bit pattern.
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits().swap_bytes());
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// A cursor over an encoded blob.
///
/// All reads are bounds-checked and return [`DecodeError`] instead of
/// panicking; [`Reader::pos`] reports the byte offset for error context.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.pos >= self.buf.len()
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or(DecodeError::UnexpectedEof { at: self.pos })?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a LEB128 varint.
    pub fn take_u64(&mut self) -> Result<u64, DecodeError> {
        let start = self.pos;
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.take_u8().map_err(|_| DecodeError::UnexpectedEof { at: start })?;
            if shift == 63 && byte > 1 {
                return Err(DecodeError::VarintOverflow { at: start });
            }
            v |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(DecodeError::VarintOverflow { at: start });
            }
        }
    }

    /// Reads a zig-zag folded signed varint.
    pub fn take_i64(&mut self) -> Result<i64, DecodeError> {
        Ok(unzigzag(self.take_u64()?))
    }

    /// Reads an `f64` encoded by [`put_f64`].
    pub fn take_f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.take_u64()?.swap_bytes()))
    }

    /// Reads `len` raw bytes as a slice of the underlying buffer. Used
    /// by the persistence layer for length-prefixed byte fields (blobs,
    /// dictionary strings) inside log records.
    pub fn take_slice(&mut self, len: usize) -> Result<&'a [u8], DecodeError> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|&end| end <= self.buf.len())
            .ok_or(DecodeError::UnexpectedEof { at: self.pos })?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }
}

/// An append-only interning dictionary for string payloads.
///
/// Ids are assigned densely in first-appearance order, which makes the
/// enclosing encoding deterministic: encoding the same sequence of values
/// into a fresh dictionary always yields the same ids and therefore the
/// same bytes. The dictionary never forgets a string (profiles referencing
/// it may outlive the profile that interned it), so memory is bounded by
/// the number of *distinct* strings ever stored.
#[derive(Debug, Default)]
pub struct StringDict {
    strings: Vec<Arc<str>>,
    ids: HashMap<Arc<str>, u32>,
}

impl StringDict {
    /// An empty dictionary.
    pub fn new() -> Self {
        StringDict::default()
    }

    /// Returns the id for `s`, interning it if unseen.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.ids.get(s) {
            return id;
        }
        let arc: Arc<str> = Arc::from(s);
        let id = u32::try_from(self.strings.len()).unwrap_or(u32::MAX);
        self.strings.push(Arc::clone(&arc));
        self.ids.insert(arc, id);
        id
    }

    /// Resolves an id to its interned string.
    pub fn resolve(&self, id: u32) -> Option<&Arc<str>> {
        self.strings.get(id as usize)
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Approximate heap bytes held by the interned strings (payload only,
    /// excluding map overhead). Used for the `profiles.store.bytes` gauge.
    pub fn payload_bytes(&self) -> usize {
        self.strings.iter().map(|s| s.len()).sum()
    }

    /// The interned strings in id order. The persistence layer walks
    /// `entries()[start..]` to serialize the dictionary delta a batch of
    /// registrations appended.
    pub fn entries(&self) -> &[Arc<str>] {
        &self.strings
    }
}

/// Encodes one value, interning string payloads into `dict`.
pub fn encode_value(buf: &mut Vec<u8>, v: &Value, dict: &mut StringDict) {
    match v {
        Value::Null => buf.push(TAG_NULL),
        Value::Bool(false) => buf.push(TAG_FALSE),
        Value::Bool(true) => buf.push(TAG_TRUE),
        Value::Int(i) if (SMALL_MIN..=SMALL_MAX).contains(i) => {
            buf.push(TAG_SMALL_BASE + (i + SMALL_BIAS) as u8);
        }
        Value::Int(i) => {
            buf.push(TAG_INT);
            put_i64(buf, *i);
        }
        Value::Float(f) => {
            buf.push(TAG_FLOAT);
            put_f64(buf, *f);
        }
        Value::Str(s) => {
            buf.push(TAG_STR);
            put_u64(buf, u64::from(dict.intern(s)));
        }
    }
}

/// Decodes one value; string ids resolve against `dict`.
pub fn decode_value(r: &mut Reader<'_>, dict: &StringDict) -> Result<Value, DecodeError> {
    let at = r.pos();
    let tag = r.take_u8()?;
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_FALSE => Ok(Value::Bool(false)),
        TAG_TRUE => Ok(Value::Bool(true)),
        TAG_INT => Ok(Value::Int(r.take_i64()?)),
        TAG_FLOAT => Ok(Value::Float(r.take_f64()?)),
        TAG_STR => {
            let id = r.take_u64()?;
            let s = u32::try_from(id)
                .ok()
                .and_then(|id| dict.resolve(id))
                .ok_or(DecodeError::BadDictId { id, at })?;
            Ok(Value::Str(Arc::clone(s)))
        }
        t if t >= TAG_SMALL_BASE => Ok(Value::Int(i64::from(t - TAG_SMALL_BASE) - SMALL_BIAS)),
        t => Err(DecodeError::BadTag { tag: t, at }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Value) -> (Vec<u8>, Value) {
        let mut dict = StringDict::new();
        let mut buf = Vec::new();
        encode_value(&mut buf, v, &mut dict);
        let mut r = Reader::new(&buf);
        let back = decode_value(&mut r, &dict).expect("decode");
        assert!(r.is_done(), "trailing bytes after {v:?}");
        (buf, back)
    }

    #[test]
    fn varint_round_trips_at_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            put_u64(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.take_u64().unwrap(), v);
            assert!(r.is_done());
        }
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, -1, 1, -64, 63, i64::MIN, i64::MAX] {
            let mut buf = Vec::new();
            put_i64(&mut buf, v);
            assert_eq!(Reader::new(&buf).take_i64().unwrap(), v);
        }
    }

    #[test]
    fn varint_overflow_rejected() {
        let buf = [0xFFu8; 11];
        assert!(matches!(
            Reader::new(&buf).take_u64(),
            Err(DecodeError::VarintOverflow { .. })
        ));
        // 10 bytes whose top groups exceed 64 bits must also fail.
        let buf = [0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F];
        assert!(matches!(
            Reader::new(&buf).take_u64(),
            Err(DecodeError::VarintOverflow { .. })
        ));
    }

    #[test]
    fn small_ints_are_one_byte() {
        for i in SMALL_MIN..=SMALL_MAX {
            let (bytes, back) = round_trip(&Value::Int(i));
            assert_eq!(bytes.len(), 1, "int {i} should be inline");
            assert_eq!(back, Value::Int(i));
        }
        let (bytes, _) = round_trip(&Value::Int(SMALL_MAX + 1));
        assert!(bytes.len() > 1);
        let (bytes, _) = round_trip(&Value::Int(SMALL_MIN - 1));
        assert!(bytes.len() > 1);
    }

    #[test]
    fn round_floats_are_compact() {
        let (bytes, back) = round_trip(&Value::Float(0.5));
        assert!(bytes.len() <= 4, "0.5 took {} bytes", bytes.len());
        assert_eq!(back, Value::Float(0.5));
        let (bytes, back) = round_trip(&Value::Float(1980.0));
        assert!(bytes.len() <= 5, "1980.0 took {} bytes", bytes.len());
        assert_eq!(back, Value::Float(1980.0));
    }

    #[test]
    fn nan_bits_survive() {
        let weird = f64::from_bits(0x7FF8_0000_0000_1234);
        let mut dict = StringDict::new();
        let mut buf = Vec::new();
        encode_value(&mut buf, &Value::Float(weird), &mut dict);
        let back = decode_value(&mut Reader::new(&buf), &dict).unwrap();
        match back {
            Value::Float(f) => assert_eq!(f.to_bits(), weird.to_bits()),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn strings_intern_once() {
        let mut dict = StringDict::new();
        let mut buf = Vec::new();
        encode_value(&mut buf, &Value::str("Coppola"), &mut dict);
        encode_value(&mut buf, &Value::str("Coppola"), &mut dict);
        encode_value(&mut buf, &Value::str("Lynch"), &mut dict);
        assert_eq!(dict.len(), 2);
        let mut r = Reader::new(&buf);
        assert_eq!(decode_value(&mut r, &dict).unwrap(), Value::str("Coppola"));
        assert_eq!(decode_value(&mut r, &dict).unwrap(), Value::str("Coppola"));
        assert_eq!(decode_value(&mut r, &dict).unwrap(), Value::str("Lynch"));
        assert!(r.is_done());
    }

    #[test]
    fn bad_dict_id_is_typed() {
        let dict = StringDict::new();
        let mut buf = Vec::new();
        buf.push(TAG_STR);
        put_u64(&mut buf, 7);
        assert_eq!(
            decode_value(&mut Reader::new(&buf), &dict),
            Err(DecodeError::BadDictId { id: 7, at: 0 })
        );
    }

    #[test]
    fn bad_tag_is_typed() {
        let dict = StringDict::new();
        let buf = [0x3Fu8];
        assert_eq!(
            decode_value(&mut Reader::new(&buf), &dict),
            Err(DecodeError::BadTag { tag: 0x3F, at: 0 })
        );
    }

    #[test]
    fn encoding_is_byte_stable() {
        let values = [
            Value::Null,
            Value::Bool(true),
            Value::Int(-32),
            Value::Int(159),
            Value::Int(1_000_000),
            Value::Float(0.75),
            Value::str("noir"),
            Value::str("noir"),
        ];
        let mut dict1 = StringDict::new();
        let mut first = Vec::new();
        for v in &values {
            encode_value(&mut first, v, &mut dict1);
        }
        let mut r = Reader::new(&first);
        let decoded: Vec<Value> = values
            .iter()
            .map(|_| decode_value(&mut r, &dict1).unwrap())
            .collect();
        let mut dict2 = StringDict::new();
        let mut second = Vec::new();
        for v in &decoded {
            encode_value(&mut second, v, &mut dict2);
        }
        assert_eq!(first, second);
    }
}
