//! Storage-layer errors.

use std::fmt;

/// Errors raised by catalog and table operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A relation name was not found in the catalog.
    UnknownRelation(String),
    /// An attribute was not found on the given relation.
    UnknownAttribute {
        /// Relation searched.
        relation: String,
        /// Attribute requested.
        attribute: String,
    },
    /// A relation with this name already exists.
    DuplicateRelation(String),
    /// An attribute appears twice in a relation definition.
    DuplicateAttribute {
        /// Relation being defined.
        relation: String,
        /// Offending attribute.
        attribute: String,
    },
    /// A row's arity does not match the relation's attribute count.
    ArityMismatch {
        /// Relation being inserted into.
        relation: String,
        /// Attributes the relation declares.
        expected: usize,
        /// Values the row supplied.
        got: usize,
    },
    /// A value's type does not match the attribute's declared type.
    TypeMismatch {
        /// Relation being inserted into.
        relation: String,
        /// Attribute with the mismatch.
        attribute: String,
        /// Human-readable detail.
        detail: String,
    },
    /// A foreign-key endpoint is invalid.
    InvalidForeignKey(String),
    /// A delta tried to delete a tuple no live row matches.
    NoSuchTuple {
        /// Relation the delete targeted.
        relation: String,
        /// Human-readable rendering of the tuple.
        detail: String,
    },
    /// An injected fault fired at a [`crate::failpoint`] site (only under
    /// the `failpoints` feature).
    Injected(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownRelation(name) => write!(f, "unknown relation `{name}`"),
            StorageError::UnknownAttribute { relation, attribute } => {
                write!(f, "unknown attribute `{relation}.{attribute}`")
            }
            StorageError::DuplicateRelation(name) => {
                write!(f, "relation `{name}` already exists")
            }
            StorageError::DuplicateAttribute { relation, attribute } => {
                write!(f, "duplicate attribute `{attribute}` in relation `{relation}`")
            }
            StorageError::ArityMismatch { relation, expected, got } => write!(
                f,
                "arity mismatch inserting into `{relation}`: expected {expected} values, got {got}"
            ),
            StorageError::TypeMismatch { relation, attribute, detail } => {
                write!(f, "type mismatch for `{relation}.{attribute}`: {detail}")
            }
            StorageError::InvalidForeignKey(detail) => {
                write!(f, "invalid foreign key: {detail}")
            }
            StorageError::NoSuchTuple { relation, detail } => {
                write!(f, "no live tuple in `{relation}` matches delete: {detail}")
            }
            StorageError::Injected(msg) => write!(f, "injected fault: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = StorageError::UnknownRelation("MOVIE".into());
        assert_eq!(e.to_string(), "unknown relation `MOVIE`");
        let e = StorageError::ArityMismatch { relation: "MOVIE".into(), expected: 4, got: 3 };
        assert!(e.to_string().contains("expected 4"));
    }
}
