//! Failpoint-style fault injection, modeled on the `fail` crate but
//! implemented locally so the workspace stays dependency-free.
//!
//! A *failpoint* is a named site in the code (`failpoint::check("site")`)
//! that normally does nothing. Tests compiled with the `failpoints`
//! feature can *arm* a site with a [`FailAction`] — return an injected
//! error, sleep, or fire only after N passes — to exercise the error and
//! degradation paths deterministically. Without the feature every entry
//! point compiles to a no-op, so production builds pay nothing.
//!
//! Sites are process-global. Tests that arm failpoints must serialize
//! through [`FailScenario::setup`], which takes a global lock and clears
//! the registry on setup and drop, so parallel tests cannot observe each
//! other's injected faults.
//!
//! Named sites in this workspace:
//!
//! | site                  | location                                   |
//! |-----------------------|--------------------------------------------|
//! | `storage.insert`      | `Database::insert` (before the table write) |
//! | `exec.scan`           | `Plan::Scan` (before iterating the table)   |
//! | `exec.hash_join.build`| `Plan::HashJoin` (before building the hash) |
//! | `exec.index_join`     | `Plan::IndexJoin` (before probing)          |
//! | `exec.nested_loop`    | `Plan::NestedLoop` (before the cross loop)  |
//! | `ppa.presence`        | before each PPA presence query              |
//! | `ppa.absence`         | before each PPA absence query               |
//! | `ppa.step3`           | before PPA's residual-tuple enumeration     |
//! | `spa.execute`         | before executing the SPA statement          |
//! | `snapshot.update`     | `SnapshotStore::update` (before mutating)   |
//! | `exec.pool.spawn`     | worker startup in the morsel pool (any armed action surfaces as a worker panic) |
//! | `exec.pool.morsel`    | per claimed morsel in `morsel_map` (error → that morsel fails typed; delay → schedule skew, forcing steal-heavy interleavings) |
//! | `cache.plan.shard`    | plan-cache shard ops, checked under the shard lock (error → forced miss / dropped insert) |
//! | `cache.pref.shard`    | preference-cache shard ops, same contract   |
//! | `admission.queue`     | admission-permit wait in `qp_core::admission` |
//! | `net.read`            | `qp-server` before reading a frame from a connection (error → connection aborted; delay → slow client read) |
//! | `net.write`           | `qp-server` before writing a response frame (error → connection aborted before any bytes) |
//! | `net.write.short`     | `qp-server` torn-write site: an injected error makes the server write a partial frame and sever the connection |
//! | `persist.write`       | segment-log append / snapshot write in `qp_storage::persist` (error → the record is not buffered; the profile store degrades to read-only) |
//! | `persist.fsync`       | fsync of a segment log or snapshot (error → flush fails typed; durability of buffered records is lost, the store degrades) |
//! | `persist.read`        | per-record read during log replay (error → recovery refuses to open rather than guessing at a prefix) |

/// What an armed failpoint does when its site is passed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailAction {
    /// Fail with this message (mapped to a typed error at the site).
    Error(String),
    /// Sleep for this many milliseconds, then continue.
    Delay(u64),
    /// Pass `skip` times, then fail with the message on every later pass.
    ErrorAfter {
        /// Number of passes that succeed before the fault fires.
        skip: u64,
        /// Injected failure message.
        message: String,
    },
    /// Fail the first `times` passes, then pass forever: the shape of a
    /// *transient* fault, which a retry loop is expected to absorb.
    ErrorTimes {
        /// Number of leading passes that fail before the site heals.
        times: u64,
        /// Injected failure message.
        message: String,
    },
    /// Panic with this message. Exercises the panic-isolation paths
    /// (`parallel_map`'s `catch_unwind`, the caches' poison recovery).
    Panic(String),
    /// Seeded stochastic fault: on each pass an xorshift stream derived
    /// from `seed` decides (deterministically, in pass order) whether to
    /// fail, panic, delay, or continue. Rates are per-10 000 so
    /// integer-only configs stay exact; `error_rate` is evaluated first,
    /// then `panic_rate`, then `delay_rate`.
    Chaos {
        /// Seed of the per-site random stream (must be non-zero to
        /// produce faults; 0 disables the stream).
        seed: u64,
        /// Probability of injecting an error, in basis points (1/10 000).
        error_rate: u32,
        /// Probability of panicking, in basis points, evaluated on the
        /// passes that did not error.
        panic_rate: u32,
        /// Probability of sleeping for `delay_ms`, in basis points,
        /// evaluated on the passes that neither errored nor panicked.
        /// Models slow I/O (stalled reads, congested writes) on the
        /// network sites.
        delay_rate: u32,
        /// Sleep duration for delay faults, in milliseconds.
        delay_ms: u64,
    },
}

#[cfg(feature = "failpoints")]
mod imp {
    use super::FailAction;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Mutex, MutexGuard, OnceLock};

    struct Armed {
        action: FailAction,
        passes: u64,
        /// Per-site xorshift state for [`FailAction::Chaos`]; 0 for every
        /// other action (and for a disabled chaos stream).
        rng: u64,
    }

    fn registry() -> &'static Mutex<HashMap<String, Armed>> {
        static REGISTRY: OnceLock<Mutex<HashMap<String, Armed>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
    }

    /// Fast path: skip the registry lock entirely while nothing is armed.
    static ANY_ARMED: AtomicBool = AtomicBool::new(false);

    fn scenario_lock() -> &'static Mutex<()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
    }

    /// See [`super::check`].
    pub fn check(site: &str) -> Result<(), String> {
        if !ANY_ARMED.load(Ordering::Acquire) {
            return Ok(());
        }
        let action = {
            let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
            match reg.get_mut(site) {
                None => return Ok(()),
                Some(armed) => {
                    armed.passes += 1;
                    match &armed.action {
                        FailAction::ErrorAfter { skip, message } => {
                            if armed.passes <= *skip {
                                return Ok(());
                            }
                            FailAction::Error(message.clone())
                        }
                        FailAction::ErrorTimes { times, message } => {
                            if armed.passes > *times {
                                return Ok(());
                            }
                            FailAction::Error(message.clone())
                        }
                        FailAction::Chaos { error_rate, panic_rate, delay_rate, delay_ms, .. } => {
                            if armed.rng == 0 {
                                return Ok(());
                            }
                            // Advance the site's private xorshift stream;
                            // the fault sequence is a pure function of
                            // (seed, pass index), so a chaos run replays
                            // exactly under the same arming order.
                            let mut x = armed.rng;
                            x ^= x << 13;
                            x ^= x >> 7;
                            x ^= x << 17;
                            armed.rng = x;
                            let roll = (x >> 11) % 10_000;
                            let pass = armed.passes;
                            if roll < u64::from(*error_rate) {
                                FailAction::Error(format!("chaos@{site}#{pass}"))
                            } else if roll < u64::from(*error_rate + *panic_rate) {
                                FailAction::Panic(format!("chaos@{site}#{pass}"))
                            } else if roll < u64::from(*error_rate + *panic_rate + *delay_rate) {
                                FailAction::Delay(*delay_ms)
                            } else {
                                return Ok(());
                            }
                        }
                        other => other.clone(),
                    }
                }
            }
        };
        match action {
            FailAction::Error(msg) => Err(msg),
            FailAction::Delay(ms) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                Ok(())
            }
            // Deliberately outside the registry lock, so a panicking site
            // never wedges the registry itself.
            FailAction::Panic(msg) => std::panic::panic_any(msg),
            FailAction::ErrorAfter { .. }
            | FailAction::ErrorTimes { .. }
            | FailAction::Chaos { .. } => {
                unreachable!("rewritten above")
            }
        }
    }

    /// See [`super::arm`].
    pub fn arm(site: &str, action: FailAction) {
        let rng = match &action {
            FailAction::Chaos { seed, .. } => *seed,
            _ => 0,
        };
        let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        reg.insert(site.to_string(), Armed { action, passes: 0, rng });
        ANY_ARMED.store(true, Ordering::Release);
    }

    /// See [`super::disarm`].
    pub fn disarm(site: &str) {
        let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        reg.remove(site);
        if reg.is_empty() {
            ANY_ARMED.store(false, Ordering::Release);
        }
    }

    /// See [`super::clear`].
    pub fn clear() {
        let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        reg.clear();
        ANY_ARMED.store(false, Ordering::Release);
    }

    /// See [`super::FailScenario`].
    pub struct FailScenario {
        _guard: MutexGuard<'static, ()>,
    }

    impl FailScenario {
        /// See [`super::FailScenario::setup`].
        pub fn setup() -> Self {
            let guard = scenario_lock().lock().unwrap_or_else(|e| e.into_inner());
            clear();
            FailScenario { _guard: guard }
        }
    }

    impl Drop for FailScenario {
        fn drop(&mut self) {
            clear();
        }
    }
}

#[cfg(not(feature = "failpoints"))]
mod imp {
    use super::FailAction;

    /// No-op without the `failpoints` feature.
    #[inline(always)]
    pub fn check(_site: &str) -> Result<(), String> {
        Ok(())
    }

    /// No-op without the `failpoints` feature.
    pub fn arm(_site: &str, _action: FailAction) {}

    /// No-op without the `failpoints` feature.
    pub fn disarm(_site: &str) {}

    /// No-op without the `failpoints` feature.
    pub fn clear() {}

    /// Without the `failpoints` feature the scenario guard does nothing
    /// (there is no registry to isolate).
    pub struct FailScenario;

    impl FailScenario {
        /// No-op without the `failpoints` feature.
        pub fn setup() -> Self {
            FailScenario
        }
    }
}

pub use imp::FailScenario;

/// Passes the named site: `Err(message)` if an error action is armed
/// there, otherwise (possibly after an injected delay) `Ok`. Call sites
/// map the message onto their layer's typed error.
#[inline]
pub fn check(site: &str) -> Result<(), String> {
    imp::check(site)
}

/// Arms `site` with `action`. Only meaningful under the `failpoints`
/// feature; a no-op otherwise.
pub fn arm(site: &str, action: FailAction) {
    imp::arm(site, action)
}

/// Disarms `site`.
pub fn disarm(site: &str) {
    imp::disarm(site)
}

/// Disarms every site.
pub fn clear() {
    imp::clear()
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;

    #[test]
    fn unarmed_site_passes() {
        let _s = FailScenario::setup();
        assert_eq!(check("nowhere"), Ok(()));
    }

    #[test]
    fn armed_error_fires_and_disarms() {
        let _s = FailScenario::setup();
        arm("t.site", FailAction::Error("boom".into()));
        assert_eq!(check("t.site"), Err("boom".to_string()));
        disarm("t.site");
        assert_eq!(check("t.site"), Ok(()));
    }

    #[test]
    fn error_after_skips_then_fires() {
        let _s = FailScenario::setup();
        arm("t.after", FailAction::ErrorAfter { skip: 2, message: "late".into() });
        assert_eq!(check("t.after"), Ok(()));
        assert_eq!(check("t.after"), Ok(()));
        assert_eq!(check("t.after"), Err("late".to_string()));
        assert_eq!(check("t.after"), Err("late".to_string()));
    }

    #[test]
    fn panic_action_panics_with_its_message() {
        let _s = FailScenario::setup();
        arm("t.panic", FailAction::Panic("kaboom".into()));
        let caught = std::panic::catch_unwind(|| check("t.panic")).unwrap_err();
        assert_eq!(caught.downcast_ref::<String>().map(String::as_str), Some("kaboom"));
        // The registry survived the panicking site.
        disarm("t.panic");
        assert_eq!(check("t.panic"), Ok(()));
    }

    #[test]
    fn chaos_stream_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let _s = FailScenario::setup();
            arm(
                "t.chaos",
                FailAction::Chaos { seed, error_rate: 3000, panic_rate: 0, delay_rate: 0, delay_ms: 0 },
            );
            (0..64).map(|_| check("t.chaos").is_err()).collect::<Vec<bool>>()
        };
        let a = run(42);
        assert_eq!(a, run(42), "same seed, same fault sequence");
        assert_ne!(a, run(43), "different seed, different sequence");
        let faults = a.iter().filter(|f| **f).count();
        assert!(faults > 0 && faults < 64, "~30% rate fires sometimes, not always: {faults}/64");
    }

    #[test]
    fn error_times_fails_then_heals() {
        let _s = FailScenario::setup();
        arm("t.times", FailAction::ErrorTimes { times: 2, message: "flaky".into() });
        assert_eq!(check("t.times"), Err("flaky".to_string()));
        assert_eq!(check("t.times"), Err("flaky".to_string()));
        assert_eq!(check("t.times"), Ok(()));
        assert_eq!(check("t.times"), Ok(()));
    }

    #[test]
    fn chaos_delay_share_sleeps() {
        let _s = FailScenario::setup();
        arm(
            "t.delay",
            FailAction::Chaos { seed: 11, error_rate: 0, panic_rate: 0, delay_rate: 10_000, delay_ms: 2 },
        );
        let start = std::time::Instant::now();
        assert_eq!(check("t.delay"), Ok(()), "delay faults still pass");
        assert!(start.elapsed() >= std::time::Duration::from_millis(2), "the pass slept");
    }

    #[test]
    fn chaos_zero_seed_is_inert() {
        let _s = FailScenario::setup();
        arm(
            "t.chaos0",
            FailAction::Chaos { seed: 0, error_rate: 10_000, panic_rate: 0, delay_rate: 0, delay_ms: 0 },
        );
        for _ in 0..16 {
            assert_eq!(check("t.chaos0"), Ok(()));
        }
    }

    #[test]
    fn scenario_clears_on_drop() {
        {
            let _s = FailScenario::setup();
            arm("t.drop", FailAction::Error("x".into()));
        }
        let _s = FailScenario::setup();
        assert_eq!(check("t.drop"), Ok(()));
    }
}
