//! Simple single-attribute histograms for selectivity estimation.
//!
//! §5 of the paper: "Let S be the set of the corresponding queries in order
//! of increasing selectivity. *We use simple histograms to obtain this
//! information.*" PPA orders presence and absence sub-queries by estimated
//! selectivity; these histograms provide the estimates.
//!
//! Numeric attributes get an equi-width histogram (plus exact min/max and
//! null counts); all attributes additionally get a most-common-values list,
//! which is exact when the attribute has few distinct values (the common
//! case for categorical attributes like `GENRE.genre`).

use std::collections::HashMap;

use crate::value::Value;

/// Number of equi-width buckets for numeric attributes.
const NUM_BUCKETS: usize = 64;
/// Maximum number of most-common values tracked.
const MAX_MCV: usize = 128;

/// Comparison operators the estimator understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A histogram over one attribute.
///
/// ```
/// use qp_storage::{Histogram, Value};
/// use qp_storage::histogram::CmpOp;
/// let years: Vec<Value> = (1950..2000).map(Value::Int).collect();
/// let h = Histogram::build(years.iter());
/// let sel = h.selectivity(CmpOp::Lt, &Value::Int(1975));
/// assert!((sel - 0.5).abs() < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    rows: usize,
    nulls: usize,
    distinct: usize,
    /// Most common values with exact counts; covers the whole column when
    /// `mcv_complete`.
    mcv: Vec<(Value, usize)>,
    mcv_complete: bool,
    /// Equi-width buckets for numeric attributes: counts of non-null
    /// numeric values in `[min + i*w, min + (i+1)*w)`.
    buckets: Option<Buckets>,
}

#[derive(Debug, Clone)]
struct Buckets {
    min: f64,
    max: f64,
    counts: Vec<usize>,
}

impl Buckets {
    fn width(&self) -> f64 {
        let w = (self.max - self.min) / self.counts.len() as f64;
        if w > 0.0 {
            w
        } else {
            1.0
        }
    }

    /// Estimated number of values strictly less than `x`.
    fn count_below(&self, x: f64) -> f64 {
        if x <= self.min {
            return 0.0;
        }
        if x > self.max {
            return self.counts.iter().sum::<usize>() as f64;
        }
        let w = self.width();
        let pos = (x - self.min) / w;
        let full = pos.floor() as usize;
        let frac = pos - pos.floor();
        let mut total = 0.0;
        for (i, c) in self.counts.iter().enumerate() {
            if i < full {
                total += *c as f64;
            } else if i == full {
                total += *c as f64 * frac;
            } else {
                break;
            }
        }
        total
    }

    fn total(&self) -> f64 {
        self.counts.iter().sum::<usize>() as f64
    }
}

impl Histogram {
    /// Builds a histogram by scanning a column.
    pub fn build<'a>(column: impl Iterator<Item = &'a Value>) -> Self {
        let mut rows = 0usize;
        let mut nulls = 0usize;
        let mut counts: HashMap<Value, usize> = HashMap::new();
        let mut numeric: Vec<f64> = Vec::new();
        let mut all_numeric = true;
        for v in column {
            rows += 1;
            if v.is_null() {
                nulls += 1;
                continue;
            }
            *counts.entry(v.clone()).or_insert(0) += 1;
            match v.as_f64() {
                Some(x) => numeric.push(x),
                None => all_numeric = false,
            }
        }
        let distinct = counts.len();
        let mut mcv: Vec<(Value, usize)> = counts.into_iter().collect();
        mcv.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let mcv_complete = mcv.len() <= MAX_MCV;
        mcv.truncate(MAX_MCV);

        let buckets = if all_numeric && !numeric.is_empty() {
            let min = numeric.iter().copied().fold(f64::INFINITY, f64::min);
            let max = numeric.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let mut b = Buckets { min, max, counts: vec![0; NUM_BUCKETS] };
            let w = b.width();
            for x in &numeric {
                let mut i = ((x - min) / w) as usize;
                if i >= NUM_BUCKETS {
                    i = NUM_BUCKETS - 1;
                }
                b.counts[i] += 1;
            }
            Some(b)
        } else {
            None
        };

        Histogram { rows, nulls, distinct, mcv, mcv_complete, buckets }
    }

    /// Total rows scanned (including NULLs).
    pub fn row_count(&self) -> usize {
        self.rows
    }

    /// NULL count.
    pub fn null_count(&self) -> usize {
        self.nulls
    }

    /// Number of distinct non-null values (exact while the column fits the
    /// MCV budget; otherwise the scan-time count, still exact here since we
    /// count during the build).
    pub fn distinct_count(&self) -> usize {
        self.distinct
    }

    /// Estimated fraction of rows satisfying `attr op value` (NULLs never
    /// satisfy). Returns a value in `[0, 1]`.
    pub fn selectivity(&self, op: CmpOp, value: &Value) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        let non_null = (self.rows - self.nulls) as f64;
        if non_null == 0.0 {
            return 0.0;
        }
        let total = self.rows as f64;
        let eq = self.eq_count_estimate(value);
        let sel = match op {
            CmpOp::Eq => eq,
            CmpOp::Ne => non_null - eq,
            CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
                let below = self.count_below_estimate(value);
                match op {
                    CmpOp::Lt => below,
                    CmpOp::Le => below + eq,
                    CmpOp::Gt => non_null - below - eq,
                    CmpOp::Ge => non_null - below,
                    _ => unreachable!(),
                }
            }
        };
        (sel / total).clamp(0.0, 1.0)
    }

    /// Estimated fraction of rows with `lo <= attr <= hi` (inclusive ends).
    pub fn selectivity_between(&self, lo: &Value, hi: &Value) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        let below_lo = self.count_below_estimate(lo);
        let below_hi = self.count_below_estimate(hi) + self.eq_count_estimate(hi);
        ((below_hi - below_lo) / self.rows as f64).clamp(0.0, 1.0)
    }

    /// Estimated number of rows equal to `value`.
    fn eq_count_estimate(&self, value: &Value) -> f64 {
        if let Some((_, c)) = self.mcv.iter().find(|(v, _)| v == value) {
            return *c as f64;
        }
        if self.mcv_complete {
            return 0.0;
        }
        // Uniformity over the values not covered by the MCV list.
        let covered: usize = self.mcv.iter().map(|(_, c)| c).sum();
        let rest_rows = (self.rows - self.nulls).saturating_sub(covered) as f64;
        let rest_distinct = self.distinct.saturating_sub(self.mcv.len()).max(1) as f64;
        rest_rows / rest_distinct
    }

    /// Estimated number of non-null values strictly below `value`.
    fn count_below_estimate(&self, value: &Value) -> f64 {
        match (&self.buckets, value.as_f64()) {
            (Some(b), Some(x)) => {
                if x.is_nan() {
                    // An unordered bound has no position in the bucket
                    // range; assume half the column rather than letting
                    // NaN propagate into the estimate.
                    return (self.rows - self.nulls) as f64 / 2.0;
                }
                if x == b.max {
                    // The interpolation in `count_below` lands on the full
                    // count at the upper bound, which wrongly includes the
                    // rows *equal* to the maximum: `< max` would estimate
                    // 1.0 and `>= max` would estimate 0.0. Subtract the
                    // equal rows instead. This also covers constant
                    // columns (max == min, zero-width buckets).
                    return (b.total() - self.eq_count_estimate(value)).max(0.0);
                }
                b.count_below(x)
            }
            _ => {
                // Categorical ordering: count MCVs below (complete lists make
                // this exact; otherwise fall back to half the column).
                if self.mcv_complete {
                    self.mcv
                        .iter()
                        .filter(|(v, _)| v.total_cmp(value) == std::cmp::Ordering::Less)
                        .map(|(_, c)| *c as f64)
                        .sum()
                } else {
                    (self.rows - self.nulls) as f64 / 2.0
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(values: Vec<Value>) -> Histogram {
        Histogram::build(values.iter())
    }

    #[test]
    fn empty_column() {
        let h = hist(vec![]);
        assert_eq!(h.row_count(), 0);
        assert_eq!(h.selectivity(CmpOp::Eq, &Value::Int(1)), 0.0);
    }

    #[test]
    fn exact_equality_on_small_domains() {
        let vals: Vec<Value> =
            ["a", "b", "a", "a", "c"].iter().map(|s| Value::str(*s)).collect();
        let h = hist(vals);
        assert!((h.selectivity(CmpOp::Eq, &Value::str("a")) - 0.6).abs() < 1e-9);
        assert!((h.selectivity(CmpOp::Eq, &Value::str("c")) - 0.2).abs() < 1e-9);
        assert_eq!(h.selectivity(CmpOp::Eq, &Value::str("zz")), 0.0);
        assert_eq!(h.distinct_count(), 3);
    }

    #[test]
    fn ne_is_complement_over_non_null() {
        let vals: Vec<Value> = vec![Value::Int(1), Value::Int(1), Value::Int(2), Value::Null];
        let h = hist(vals);
        // 2 of 4 rows are != 1 and non-null ... one row (Int 2).
        assert!((h.selectivity(CmpOp::Ne, &Value::Int(1)) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn numeric_range_estimates() {
        let vals: Vec<Value> = (0..100).map(Value::Int).collect();
        let h = hist(vals);
        let lt50 = h.selectivity(CmpOp::Lt, &Value::Int(50));
        assert!((lt50 - 0.5).abs() < 0.05, "lt50={lt50}");
        let ge90 = h.selectivity(CmpOp::Ge, &Value::Int(90));
        assert!((ge90 - 0.1).abs() < 0.05, "ge90={ge90}");
    }

    #[test]
    fn between_estimate() {
        let vals: Vec<Value> = (0..1000).map(Value::Int).collect();
        let h = hist(vals);
        let sel = h.selectivity_between(&Value::Int(100), &Value::Int(299));
        assert!((sel - 0.2).abs() < 0.05, "sel={sel}");
    }

    #[test]
    fn nulls_counted_but_never_selected() {
        let vals = vec![Value::Null, Value::Null, Value::Int(5)];
        let h = hist(vals);
        assert_eq!(h.null_count(), 2);
        assert!((h.selectivity(CmpOp::Eq, &Value::Int(5)) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn large_domain_falls_back_to_uniform() {
        // 1000 distinct strings -> MCV incomplete
        let vals: Vec<Value> = (0..1000).map(|i| Value::str(format!("v{i:04}"))).collect();
        let h = hist(vals);
        let sel = h.selectivity(CmpOp::Eq, &Value::str("v0500"));
        assert!(sel > 0.0 && sel < 0.01, "sel={sel}");
    }

    #[test]
    fn selectivity_clamped() {
        let vals: Vec<Value> = (0..10).map(Value::Int).collect();
        let h = hist(vals);
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            for v in [-100i64, 0, 5, 9, 100] {
                let s = h.selectivity(op, &Value::Int(v));
                assert!((0.0..=1.0).contains(&s), "{op:?} {v} -> {s}");
            }
        }
    }

    #[test]
    fn constant_column() {
        let vals: Vec<Value> = vec![Value::Int(7); 50];
        let h = hist(vals);
        assert!((h.selectivity(CmpOp::Eq, &Value::Int(7)) - 1.0).abs() < 1e-9);
        assert_eq!(h.selectivity(CmpOp::Lt, &Value::Int(7)), 0.0);
    }

    // Regression: with max == min every bucket is zero-width; predicates
    // on either side of the single value must still resolve exactly.
    #[test]
    fn constant_column_zero_width_buckets() {
        let vals: Vec<Value> = vec![Value::Int(7); 50];
        let h = hist(vals);
        assert_eq!(h.selectivity(CmpOp::Lt, &Value::Float(7.5)), 1.0);
        assert_eq!(h.selectivity(CmpOp::Gt, &Value::Float(6.5)), 1.0);
        assert_eq!(h.selectivity(CmpOp::Gt, &Value::Int(7)), 0.0);
        assert_eq!(h.selectivity(CmpOp::Ge, &Value::Int(7)), 1.0);
        assert_eq!(h.selectivity(CmpOp::Le, &Value::Int(7)), 1.0);
    }

    // Regression: a predicate pinned at the column maximum used to fold
    // the max-valued rows into `count_below`, so `< max` estimated 1.0
    // and `>= max` estimated 0.0 — inverting PPA's subquery ordering for
    // exactly the boundary preferences users state most often.
    #[test]
    fn predicate_at_column_max() {
        let vals: Vec<Value> = (0..100).map(Value::Int).collect();
        let h = hist(vals);
        let lt_max = h.selectivity(CmpOp::Lt, &Value::Int(99));
        assert!(lt_max < 1.0, "lt_max={lt_max}");
        assert!((lt_max - 0.99).abs() < 0.02, "lt_max={lt_max}");
        let ge_max = h.selectivity(CmpOp::Ge, &Value::Int(99));
        assert!(ge_max > 0.0, "ge_max={ge_max}");
        assert!((ge_max - 0.01).abs() < 0.02, "ge_max={ge_max}");
        assert_eq!(h.selectivity(CmpOp::Le, &Value::Int(99)), 1.0);
        assert_eq!(h.selectivity(CmpOp::Gt, &Value::Int(99)), 0.0);
    }

    // Regression: out-of-range predicates must saturate, not extrapolate.
    #[test]
    fn out_of_range_predicates_saturate() {
        let vals: Vec<Value> = (0..100).map(Value::Int).collect();
        let h = hist(vals);
        assert_eq!(h.selectivity(CmpOp::Lt, &Value::Int(-5)), 0.0);
        assert_eq!(h.selectivity(CmpOp::Ge, &Value::Int(-5)), 1.0);
        assert_eq!(h.selectivity(CmpOp::Gt, &Value::Int(1000)), 0.0);
        assert_eq!(h.selectivity(CmpOp::Le, &Value::Int(1000)), 1.0);
        assert_eq!(h.selectivity_between(&Value::Int(500), &Value::Int(600)), 0.0);
    }

    // Regression: a NaN bound used to propagate through the interpolation
    // and out of `clamp` (clamp(NaN) is NaN). Estimates must stay finite.
    #[test]
    fn nan_bound_yields_finite_estimates() {
        let vals: Vec<Value> = (0..100).map(Value::Int).collect();
        let h = hist(vals);
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            let s = h.selectivity(op, &Value::Float(f64::NAN));
            assert!(s.is_finite(), "{op:?} -> {s}");
            assert!((0.0..=1.0).contains(&s), "{op:?} -> {s}");
        }
        let s = h.selectivity_between(&Value::Float(f64::NAN), &Value::Int(50));
        assert!(s.is_finite() && (0.0..=1.0).contains(&s), "between -> {s}");
    }

    // A degenerate BETWEEN (lo == hi) reduces to equality.
    #[test]
    fn between_single_point_matches_equality() {
        let vals: Vec<Value> = (0..100).map(|i| Value::Int(i % 10)).collect();
        let h = hist(vals);
        let between = h.selectivity_between(&Value::Int(4), &Value::Int(4));
        let eq = h.selectivity(CmpOp::Eq, &Value::Int(4));
        assert!((between - eq).abs() < 0.02, "between={between} eq={eq}");
    }
}
