//! Hash indexes mapping attribute values to row ids.
//!
//! The execution engine uses these for index nested-loop joins and for the
//! row-id-bound parameterized queries of the PPA algorithm.

use std::collections::HashMap;

use crate::table::RowId;
use crate::value::Value;

/// A hash index over one attribute. NULLs are not indexed (they never match
/// an equality predicate under SQL semantics).
#[derive(Debug, Clone, Default)]
pub struct Index {
    map: HashMap<Value, Vec<RowId>>,
}

impl Index {
    /// Builds an index by scanning a column.
    pub fn build<'a>(column: impl Iterator<Item = &'a Value>) -> Self {
        let mut map: HashMap<Value, Vec<RowId>> = HashMap::new();
        for (i, v) in column.enumerate() {
            if v.is_null() {
                continue;
            }
            map.entry(v.clone()).or_default().push(RowId(i as u64));
        }
        Index { map }
    }

    /// Builds an index from explicit `(row id, value)` pairs — the
    /// tombstone-aware path: dead slots are simply never fed in, so a
    /// lookup can never surface a deleted row. Pairs must arrive in
    /// ascending row-id order (as [`crate::Table::live_column_pairs`]
    /// yields them) so postings lists stay sorted.
    pub fn build_pairs<'a>(pairs: impl Iterator<Item = (RowId, &'a Value)>) -> Self {
        let mut map: HashMap<Value, Vec<RowId>> = HashMap::new();
        for (id, v) in pairs {
            if v.is_null() {
                continue;
            }
            map.entry(v.clone()).or_default().push(id);
        }
        Index { map }
    }

    /// Row ids whose attribute equals `value` (empty for NULL probes).
    pub fn lookup(&self, value: &Value) -> &[RowId] {
        if value.is_null() {
            return &[];
        }
        self.map.get(value).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct indexed values.
    pub fn distinct_count(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_lookup() {
        let vals = [Value::Int(1), Value::Int(2), Value::Int(1), Value::Null];
        let idx = Index::build(vals.iter());
        assert_eq!(idx.lookup(&Value::Int(1)), &[RowId(0), RowId(2)]);
        assert_eq!(idx.lookup(&Value::Int(2)), &[RowId(1)]);
        assert!(idx.lookup(&Value::Int(3)).is_empty());
        assert_eq!(idx.distinct_count(), 2);
    }

    #[test]
    fn null_probe_matches_nothing() {
        let vals = [Value::Null, Value::Null];
        let idx = Index::build(vals.iter());
        assert!(idx.lookup(&Value::Null).is_empty());
        assert_eq!(idx.distinct_count(), 0);
    }

    #[test]
    fn build_pairs_skips_fed_out_slots() {
        let vals = [Value::Int(1), Value::Int(1), Value::Int(2)];
        // Slot 1 is tombstoned: the caller never feeds it.
        let pairs = vals
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 1)
            .map(|(i, v)| (RowId(i as u64), v));
        let idx = Index::build_pairs(pairs);
        assert_eq!(idx.lookup(&Value::Int(1)), &[RowId(0)]);
        assert_eq!(idx.lookup(&Value::Int(2)), &[RowId(2)]);
    }

    #[test]
    fn cross_type_numeric_lookup() {
        let vals = [Value::Int(2)];
        let idx = Index::build(vals.iter());
        // Float(2.0) hashes and compares equal to Int(2).
        assert_eq!(idx.lookup(&Value::Float(2.0)), &[RowId(0)]);
    }
}
