#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

//! # qp-storage
//!
//! In-memory relational storage substrate for the personalized-queries
//! workspace. This crate provides everything the paper assumes from its
//! underlying DBMS (Oracle 9i in the original evaluation):
//!
//! * typed [`Value`]s with a total order (NULL-aware, float-safe),
//! * a [`Catalog`] describing relations, attributes, keys and the schema
//!   graph the personalization graph extends,
//! * row-oriented [`Table`]s addressed by [`RowId`],
//! * [`Histogram`]s for the selectivity estimation the PPA algorithm uses
//!   to order sub-queries,
//! * hash [`Index`]es used by the execution engine for joins and lookups,
//! * a compact binary [`encoding`] (varints, small-int tags, dictionary
//!   interned strings) used by the million-profile store in `qp-core`.
//!
//! The crate is deliberately free of query-processing logic; `qp-exec`
//! builds the executor on top of these primitives.

pub mod chaos;
pub mod database;
pub mod delta;
pub mod dump;
pub mod encoding;
pub mod error;
pub mod failpoint;
pub mod histogram;
pub mod index;
pub mod persist;
pub mod schema;
pub mod snapshot;
pub mod table;
pub mod types;
pub mod value;

pub use chaos::ChaosPlan;
pub use database::Database;
pub use delta::{AppliedDelta, AppliedRelationDelta, DbDelta, RelationDelta};
pub use dump::{dump_dir, load_dir};
pub use encoding::{DecodeError, StringDict};
pub use error::StorageError;
pub use persist::{PersistError, RecoveryReport};
pub use histogram::Histogram;
pub use index::Index;
pub use schema::{AttrId, Attribute, Catalog, ForeignKey, RelId, Relation};
pub use snapshot::SnapshotStore;
pub use table::{Row, RowId, Table};
pub use types::{DataType, DomainKind};
pub use value::Value;
