//! Crash-safe primitives for the durable profile store: a checksummed,
//! append-only segment log plus atomic snapshot files.
//!
//! This module knows nothing about profiles. It provides the three
//! building blocks `qp_core::store` composes into durability:
//!
//! * **Framed records** — every record on disk is
//!   `len:u32le | crc:u32le | payload[len]` where `crc` is the CRC-32
//!   (IEEE) of the payload. A reader can always decide whether the next
//!   record is intact without trusting anything that follows it.
//! * **[`LogWriter`]** — buffered appends to one segment file
//!   (`wal-<seq>.qpl`), flushed to the OS and optionally fsynced in
//!   batches. Write and fsync paths pass the `persist.write` /
//!   `persist.fsync` failpoints so disk faults are injectable.
//! * **[`replay_log`]** — a streaming reader that applies every intact
//!   record in order and **stops at the first damaged one**: a torn
//!   header, a short body, an impossible length, a CRC mismatch, or a
//!   record the caller's `apply` rejects all end the replay with a
//!   [`Tail::Torn`] describing the valid prefix length and what was
//!   dropped. Crash recovery truncates to that prefix and carries on —
//!   a torn tail costs the unflushed suffix, never the store.
//! * **[`write_atomic`]** — whole-file replacement via
//!   tmp + fsync + rename + directory fsync, used for snapshot spills so
//!   a crash mid-checkpoint leaves either the old snapshot or the new
//!   one, never a partial file.
//!
//! The CRC table is hand-rolled (the workspace is dependency-free); the
//! polynomial is the reflected IEEE 0xEDB88320 every `crc32` tool
//! agrees on, so segments are checkable from outside the process.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{BufReader, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use crate::failpoint;

/// Upper bound on a single record's payload. Real registration records
/// are tens to hundreds of bytes and snapshot shard frames a few
/// megabytes; anything claiming more is treated as corruption rather
/// than honoured with a giant allocation.
pub const MAX_RECORD_LEN: usize = 64 << 20;

/// Bytes of frame overhead per record (length + checksum).
pub const FRAME_HEADER: usize = 8;

/// File-name prefix of segment log files: `wal-<seq:08>.qpl`.
const LOG_PREFIX: &str = "wal-";
/// File-name suffix of segment log files.
const LOG_SUFFIX: &str = ".qpl";

fn crc_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        table
    })
}

/// CRC-32 (IEEE, reflected polynomial `0xEDB88320`) of `bytes` — the
/// checksum every framed record carries.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Errors surfaced by the persistence layer.
///
/// Deliberately `Clone + PartialEq` (details are strings, not
/// `io::Error`s) so they can ride inside `qp_core`'s `PrefError` and be
/// asserted on in tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// An I/O operation failed. `op` names the operation (`"append"`,
    /// `"fsync"`, `"read"`, …), `path` the file involved.
    Io {
        /// Operation that failed.
        op: &'static str,
        /// File or directory the operation targeted.
        path: String,
        /// OS or injected error message.
        detail: String,
    },
    /// A file that must be intact end-to-end (a snapshot) is not.
    Corrupt {
        /// File found corrupt.
        path: String,
        /// Byte offset of the damage.
        at: u64,
        /// What was wrong.
        detail: String,
    },
    /// The store has degraded to read-only after a disk fault; writes
    /// are refused with the original fault's description.
    ReadOnly {
        /// Description of the fault that caused the degradation.
        reason: String,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { op, path, detail } => {
                write!(f, "persist {op} on {path}: {detail}")
            }
            PersistError::Corrupt { path, at, detail } => {
                write!(f, "corrupt persist file {path} at byte {at}: {detail}")
            }
            PersistError::ReadOnly { reason } => {
                write!(f, "store is read-only after a disk fault: {reason}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

fn io_err(op: &'static str, path: &Path, e: impl fmt::Display) -> PersistError {
    PersistError::Io { op, path: path.display().to_string(), detail: e.to_string() }
}

/// What recovery found at the end of a segment log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tail {
    /// Every byte of the file belonged to an intact record.
    Clean,
    /// The file ends in damage: a torn frame, a CRC mismatch, or a
    /// record the caller rejected. Everything before `valid_len` was
    /// applied; everything after is dropped.
    Torn {
        /// Length of the valid prefix in bytes.
        valid_len: u64,
        /// Bytes past the valid prefix (damaged + unreachable).
        dropped_bytes: u64,
        /// Records structurally visible past the valid prefix (a lower
        /// bound — once framing is lost the rest is uncountable).
        dropped_records: u64,
        /// Why replay stopped.
        reason: String,
    },
}

/// Result of replaying one segment file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Records applied.
    pub records: u64,
    /// Bytes of intact, applied prefix (frames included).
    pub bytes: u64,
    /// State of the file's tail.
    pub tail: Tail,
}

/// Aggregate report of one crash recovery, exposed by
/// `ProfileStore::recovery` and serialized into `BENCH_recovery.json`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Users restored from the snapshot file (before log replay).
    pub snapshot_users: u64,
    /// Bytes of the snapshot file read.
    pub snapshot_bytes: u64,
    /// Segment log files replayed.
    pub log_files: u64,
    /// Log records applied (including records the snapshot already
    /// covered, which replay idempotently).
    pub records_kept: u64,
    /// Log records dropped behind a torn/corrupt tail (lower bound).
    pub records_dropped: u64,
    /// Log bytes replayed (intact prefix across all files).
    pub bytes_replayed: u64,
    /// Log bytes dropped behind the damage.
    pub bytes_dropped: u64,
    /// True when a damaged tail was found and truncated away.
    pub tail_repaired: bool,
    /// Wall-clock microseconds the recovery took.
    pub elapsed_us: u64,
}

/// A buffered appender for one segment log file.
///
/// `append` frames the payload into an in-memory buffer; `flush` hands
/// the buffer to the OS and optionally fsyncs. The split is what makes
/// fsync policy a knob: `always` flushes (synced) on every append,
/// `batch` lets a background flusher amortize the fsync, `never` leaves
/// durability to the OS page cache.
#[derive(Debug)]
pub struct LogWriter {
    path: PathBuf,
    file: File,
    /// Frames appended but not yet written to the OS.
    buf: Vec<u8>,
    /// Bytes written to the OS (not necessarily fsynced).
    written: u64,
    /// Bytes known durable (fsynced).
    synced: u64,
}

/// Appends written to the OS before an explicit flush once the buffer
/// exceeds this (keeps the buffer bounded under a slow flusher).
const WRITE_THRESHOLD: usize = 1 << 20;

impl LogWriter {
    /// Creates a fresh segment file. Fails if the path already exists —
    /// segment sequence numbers are never reused, so an existing file
    /// means the caller's bookkeeping is wrong.
    pub fn create(path: impl Into<PathBuf>) -> Result<LogWriter, PersistError> {
        let path = path.into();
        let file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(|e| io_err("create", &path, e))?;
        Ok(LogWriter { path, file, buf: Vec::new(), written: 0, synced: 0 })
    }

    /// The segment file this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Total framed bytes accepted (buffered + written).
    pub fn len(&self) -> u64 {
        self.written + self.buf.len() as u64
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes not yet handed to the OS.
    pub fn pending(&self) -> u64 {
        self.buf.len() as u64
    }

    /// Bytes not yet known durable (buffered or written-but-unsynced).
    pub fn unsynced(&self) -> u64 {
        self.len() - self.synced
    }

    /// Frames and buffers one record. Passes the `persist.write`
    /// failpoint; an injected or real error leaves the log unchanged
    /// from the reader's point of view (the record is not buffered).
    pub fn append(&mut self, payload: &[u8]) -> Result<(), PersistError> {
        failpoint::check("persist.write").map_err(|m| io_err("append", &self.path, m))?;
        debug_assert!(payload.len() <= MAX_RECORD_LEN, "record over MAX_RECORD_LEN");
        self.buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(&crc32(payload).to_le_bytes());
        self.buf.extend_from_slice(payload);
        if self.buf.len() >= WRITE_THRESHOLD {
            self.write_out()?;
        }
        Ok(())
    }

    fn write_out(&mut self) -> Result<(), PersistError> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.file.write_all(&self.buf).map_err(|e| io_err("write", &self.path, e))?;
        self.written += self.buf.len() as u64;
        self.buf.clear();
        Ok(())
    }

    /// Writes buffered frames to the OS; with `sync`, additionally
    /// fsyncs (passing the `persist.fsync` failpoint) so the records
    /// survive power loss, not just process death.
    pub fn flush(&mut self, sync: bool) -> Result<(), PersistError> {
        self.write_out()?;
        if sync && self.synced < self.written {
            failpoint::check("persist.fsync").map_err(|m| io_err("fsync", &self.path, m))?;
            self.file.sync_data().map_err(|e| io_err("fsync", &self.path, e))?;
            self.synced = self.written;
        }
        Ok(())
    }
}

/// Streams `path`, calling `apply(byte_offset, payload)` for every
/// intact record in order. Replay stops at the first damaged record
/// (see [`Tail::Torn`]); an `apply` rejection counts as damage — the
/// record and everything after it are dropped, which is exactly the
/// prefix semantics crash recovery wants.
///
/// Read errors (real or injected via `persist.read`) are *not* tail
/// damage: they mean the disk is refusing to answer, and surface as a
/// hard [`PersistError::Io`] so the caller can refuse to open rather
/// than silently recover an arbitrary prefix.
pub fn replay_log(
    path: &Path,
    mut apply: impl FnMut(u64, &[u8]) -> Result<(), String>,
) -> Result<ReplaySummary, PersistError> {
    let file = File::open(path).map_err(|e| io_err("open", path, e))?;
    let file_len = file.metadata().map_err(|e| io_err("stat", path, e)).map(|m| m.len())?;
    let mut reader = BufReader::with_capacity(1 << 20, file);
    let mut offset = 0u64;
    let mut records = 0u64;
    let mut payload = Vec::new();
    // Bytes of the damaged record the reader already consumed when the
    // loop breaks — keeps the post-damage frame count positioned right.
    let mut consumed;
    let torn = loop {
        if offset == file_len {
            return Ok(ReplaySummary { records, bytes: offset, tail: Tail::Clean });
        }
        consumed = 0;
        failpoint::check("persist.read").map_err(|m| io_err("read", path, m))?;
        let mut header = [0u8; FRAME_HEADER];
        if file_len - offset < FRAME_HEADER as u64 {
            break "truncated record header".to_string();
        }
        reader.read_exact(&mut header).map_err(|e| io_err("read", path, e))?;
        consumed = FRAME_HEADER as u64;
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
        let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        if len > MAX_RECORD_LEN {
            break format!("impossible record length {len}");
        }
        if file_len - offset - (FRAME_HEADER as u64) < len as u64 {
            break "truncated record body".to_string();
        }
        payload.clear();
        payload.resize(len, 0);
        reader.read_exact(&mut payload).map_err(|e| io_err("read", path, e))?;
        consumed += len as u64;
        if crc32(&payload) != crc {
            break "record checksum mismatch".to_string();
        }
        if let Err(reason) = apply(offset, &payload) {
            break format!("record rejected: {reason}");
        }
        offset += consumed;
        records += 1;
    };
    // Count what framing remains past the damage — a lower bound on the
    // records lost, for the recovery report: the damaged record itself
    // plus whatever still frames cleanly after it. CRCs are not checked;
    // once one record is damaged nothing after it is trusted anyway.
    let dropped_records =
        1 + count_frames(&mut reader, file_len - offset - consumed).unwrap_or(0);
    Ok(ReplaySummary {
        records,
        bytes: offset,
        tail: Tail::Torn {
            valid_len: offset,
            dropped_bytes: file_len - offset,
            dropped_records,
            reason: torn,
        },
    })
}

/// Walks frame headers in whatever follows a damaged record, counting
/// structurally plausible frames. The reader sits right after the bytes
/// of the damaged record that were consumed; this only needs a lower
/// bound, so any read error ends the count.
fn count_frames(reader: &mut BufReader<File>, mut remaining: u64) -> Option<u64> {
    let mut count = 0u64;
    let mut header = [0u8; FRAME_HEADER];
    loop {
        if remaining < FRAME_HEADER as u64 {
            return Some(count);
        }
        reader.read_exact(&mut header).ok()?;
        remaining -= FRAME_HEADER as u64;
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as u64;
        if len > MAX_RECORD_LEN as u64 || len > remaining {
            return Some(count);
        }
        std::io::copy(&mut reader.take(len), &mut std::io::sink()).ok()?;
        remaining -= len;
        count += 1;
    }
}

/// Truncates `path` to `len` bytes — crash recovery's tail repair,
/// applied after [`replay_log`] reports a torn tail so the next
/// recovery sees a clean file.
pub fn truncate_log(path: &Path, len: u64) -> Result<(), PersistError> {
    let file =
        OpenOptions::new().write(true).open(path).map_err(|e| io_err("open", path, e))?;
    file.set_len(len).map_err(|e| io_err("truncate", path, e))?;
    file.sync_all().map_err(|e| io_err("fsync", path, e))?;
    Ok(())
}

/// Reads a file that must be intact end-to-end (a snapshot): every
/// frame is CRC-checked and handed to `apply`; any damage is a hard
/// [`PersistError::Corrupt`], not a tolerated tail — snapshots are
/// written atomically, so a damaged one means the disk lied.
pub fn read_frames(
    path: &Path,
    mut apply: impl FnMut(&[u8]) -> Result<(), String>,
) -> Result<u64, PersistError> {
    let corrupt = |at: u64, detail: String| PersistError::Corrupt {
        path: path.display().to_string(),
        at,
        detail,
    };
    let summary = replay_log(path, |at, payload| {
        apply(payload).map_err(|reason| format!("{reason}@@{at}"))
    })?;
    match summary.tail {
        Tail::Clean => Ok(summary.bytes),
        Tail::Torn { valid_len, reason, .. } => {
            // Unwrap the offset smuggled through the rejection message
            // when the caller rejected; framing damage reports its own
            // offset (valid_len).
            match reason.split_once("@@") {
                Some((msg, at)) => {
                    Err(corrupt(at.parse().unwrap_or(valid_len), msg.to_string()))
                }
                None => Err(corrupt(valid_len, reason)),
            }
        }
    }
}

/// Frames `payload` (length + CRC) onto `buf` — the in-memory half of
/// the record format, used to build snapshot files for [`write_atomic`].
pub fn frame_into(buf: &mut Vec<u8>, payload: &[u8]) {
    debug_assert!(payload.len() <= MAX_RECORD_LEN, "record over MAX_RECORD_LEN");
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
}

/// Replaces `path` atomically with `bytes`: write to a sibling tmp
/// file, fsync it, rename over `path`, fsync the directory. A crash at
/// any point leaves either the old file or the new one.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    failpoint::check("persist.write").map_err(|m| io_err("write", path, m))?;
    let tmp = path.with_extension("tmp");
    {
        let mut file = File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
        file.write_all(bytes).map_err(|e| io_err("write", &tmp, e))?;
        failpoint::check("persist.fsync").map_err(|m| io_err("fsync", &tmp, m))?;
        file.sync_all().map_err(|e| io_err("fsync", &tmp, e))?;
    }
    fs::rename(&tmp, path).map_err(|e| io_err("rename", path, e))?;
    if let Some(dir) = path.parent() {
        sync_dir(dir)?;
    }
    Ok(())
}

/// Fsyncs a directory so recent creates/renames/removes in it survive
/// power loss.
pub fn sync_dir(dir: &Path) -> Result<(), PersistError> {
    let handle = File::open(dir).map_err(|e| io_err("open", dir, e))?;
    handle.sync_all().map_err(|e| io_err("fsync", dir, e))
}

/// The path of segment `seq` inside `dir`: `wal-<seq:08>.qpl`.
pub fn log_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("{LOG_PREFIX}{seq:08}{LOG_SUFFIX}"))
}

/// Lists segment log files in `dir`, sorted by sequence number.
/// Files that merely resemble segments are ignored.
pub fn list_logs(dir: &Path) -> Result<Vec<(u64, PathBuf)>, PersistError> {
    let mut logs = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| io_err("readdir", dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("readdir", dir, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name.strip_prefix(LOG_PREFIX).and_then(|n| n.strip_suffix(LOG_SUFFIX))
        else {
            continue;
        };
        if let Ok(seq) = stem.parse::<u64>() {
            logs.push((seq, entry.path()));
        }
    }
    logs.sort_unstable_by_key(|(seq, _)| *seq);
    Ok(logs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "qp-persist-unit-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Reference values any crc32 implementation agrees on.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn append_flush_replay_round_trips() {
        let dir = tmpdir("roundtrip");
        let path = log_path(&dir, 1);
        let mut w = LogWriter::create(&path).unwrap();
        let records: Vec<Vec<u8>> = (0..50u8).map(|i| vec![i; (i as usize % 7) + 1]).collect();
        for r in &records {
            w.append(r).unwrap();
        }
        w.flush(true).unwrap();
        assert_eq!(w.unsynced(), 0);

        let mut seen = Vec::new();
        let summary = replay_log(&path, |_, p| {
            seen.push(p.to_vec());
            Ok(())
        })
        .unwrap();
        assert_eq!(summary.tail, Tail::Clean);
        assert_eq!(summary.records, 50);
        assert_eq!(seen, records);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_stops_at_last_valid_record() {
        let dir = tmpdir("torn");
        let path = log_path(&dir, 1);
        let mut w = LogWriter::create(&path).unwrap();
        for i in 0..10u8 {
            w.append(&[i; 16]).unwrap();
        }
        w.flush(true).unwrap();
        let full = fs::metadata(&path).unwrap().len();
        // Tear the last record's body.
        truncate_log(&path, full - 5).unwrap();

        let mut seen = 0;
        let summary = replay_log(&path, |_, _| {
            seen += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, 9);
        match summary.tail {
            Tail::Torn { valid_len, dropped_bytes, reason, .. } => {
                assert_eq!(valid_len, 9 * (FRAME_HEADER as u64 + 16));
                assert_eq!(dropped_bytes, full - 5 - valid_len);
                assert!(reason.contains("truncated"), "{reason}");
            }
            Tail::Clean => panic!("tail must be torn"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_is_caught_by_crc() {
        let dir = tmpdir("flip");
        let path = log_path(&dir, 1);
        let mut w = LogWriter::create(&path).unwrap();
        for i in 0..6u8 {
            w.append(&[i; 32]).unwrap();
        }
        w.flush(true).unwrap();
        // Flip one bit inside record 3's payload.
        let mut bytes = fs::read(&path).unwrap();
        let target = 3 * (FRAME_HEADER + 32) + FRAME_HEADER + 10;
        bytes[target] ^= 0x40;
        fs::write(&path, &bytes).unwrap();

        let mut seen = 0;
        let summary = replay_log(&path, |_, _| {
            seen += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, 3, "records before the flip replay");
        match summary.tail {
            Tail::Torn { valid_len, dropped_records, reason, .. } => {
                assert_eq!(valid_len, 3 * (FRAME_HEADER as u64 + 32));
                assert!(reason.contains("checksum"), "{reason}");
                // Records 4 and 5 still frame cleanly past the damage.
                assert_eq!(dropped_records, 3);
            }
            Tail::Clean => panic!("tail must be torn"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn apply_rejection_is_prefix_damage() {
        let dir = tmpdir("reject");
        let path = log_path(&dir, 1);
        let mut w = LogWriter::create(&path).unwrap();
        for i in 0..5u8 {
            w.append(&[i]).unwrap();
        }
        w.flush(false).unwrap();
        let mut seen = 0;
        let summary = replay_log(&path, |_, p| {
            if p[0] == 3 {
                return Err("schema says no".into());
            }
            seen += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, 3);
        match summary.tail {
            Tail::Torn { dropped_records, reason, .. } => {
                assert!(reason.contains("schema says no"), "{reason}");
                assert_eq!(dropped_records, 2, "rejected record + the one after it");
            }
            Tail::Clean => panic!("tail must be torn"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_atomic_replaces_whole_file() {
        let dir = tmpdir("atomic");
        let path = dir.join("snapshot.qps");
        let mut buf = Vec::new();
        frame_into(&mut buf, b"alpha");
        write_atomic(&path, &buf).unwrap();
        let mut frames = Vec::new();
        read_frames(&path, |p| {
            frames.push(p.to_vec());
            Ok(())
        })
        .unwrap();
        assert_eq!(frames, vec![b"alpha".to_vec()]);

        let mut buf = Vec::new();
        frame_into(&mut buf, b"beta");
        frame_into(&mut buf, b"gamma");
        write_atomic(&path, &buf).unwrap();
        frames.clear();
        read_frames(&path, |p| {
            frames.push(p.to_vec());
            Ok(())
        })
        .unwrap();
        assert_eq!(frames, vec![b"beta".to_vec(), b"gamma".to_vec()]);
        assert!(!path.with_extension("tmp").exists(), "tmp file cleaned up by rename");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_is_a_hard_error() {
        let dir = tmpdir("snapcorrupt");
        let path = dir.join("snapshot.qps");
        let mut buf = Vec::new();
        frame_into(&mut buf, b"alpha");
        frame_into(&mut buf, b"beta");
        write_atomic(&path, &buf).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        let err = read_frames(&path, |_| Ok(())).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt { .. }), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn log_listing_sorts_and_filters() {
        let dir = tmpdir("listing");
        for seq in [3u64, 1, 2] {
            LogWriter::create(log_path(&dir, seq)).unwrap();
        }
        fs::write(dir.join("snapshot.qps"), b"").unwrap();
        fs::write(dir.join("wal-js.qpl"), b"").unwrap();
        let logs = list_logs(&dir).unwrap();
        let seqs: Vec<u64> = logs.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_refuses_to_reuse_a_segment() {
        let dir = tmpdir("reuse");
        let path = log_path(&dir, 7);
        LogWriter::create(&path).unwrap();
        let err = LogWriter::create(&path).unwrap_err();
        assert!(matches!(err, PersistError::Io { op: "create", .. }), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }
}
