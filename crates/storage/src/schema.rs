//! Catalog: relations, attributes, keys, and the schema graph.
//!
//! The personalization graph of the paper (§3.1) is an extension of the
//! database schema graph, so the catalog records which attribute pairs are
//! joinable ([`ForeignKey`] edges) and enough key metadata to classify joins
//! as 1–1 or 1–n — the distinction §5 uses to pick between plain negation
//! and `NOT IN` sub-queries for absence preferences.

use std::collections::HashMap;
use std::fmt;

use crate::error::StorageError;
use crate::types::{DataType, DomainKind};

/// Identifier of a relation within a [`Catalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(pub u32);

/// Identifier of an attribute: a relation plus the attribute's ordinal
/// position inside it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId {
    /// Owning relation.
    pub rel: RelId,
    /// Zero-based position within the relation.
    pub idx: u32,
}

impl AttrId {
    /// Convenience constructor.
    pub fn new(rel: RelId, idx: u32) -> Self {
        AttrId { rel, idx }
    }
}

/// An attribute (column) definition.
#[derive(Debug, Clone)]
pub struct Attribute {
    /// Attribute name, stored as given; lookups are case-insensitive.
    pub name: String,
    /// Storage type.
    pub data_type: DataType,
    /// Whether preferences over this attribute may be elastic.
    pub domain: DomainKind,
    /// Declared unique (single-column primary key or unique constraint).
    pub unique: bool,
}

impl Attribute {
    /// A non-unique attribute with the type's default domain kind.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Attribute {
            name: name.into(),
            data_type,
            domain: data_type.default_domain(),
            unique: false,
        }
    }

    /// Marks the attribute unique (e.g. a single-column primary key).
    pub fn unique(mut self) -> Self {
        self.unique = true;
        self
    }

    /// Overrides the domain kind (e.g. an INT code that is categorical).
    pub fn with_domain(mut self, domain: DomainKind) -> Self {
        self.domain = domain;
        self
    }
}

/// A relation (table) definition.
#[derive(Debug, Clone)]
pub struct Relation {
    /// This relation's id in the catalog.
    pub id: RelId,
    /// Relation name; lookups are case-insensitive.
    pub name: String,
    /// Ordered attribute definitions.
    pub attributes: Vec<Attribute>,
    /// Ordinal positions of the primary key attributes (possibly composite,
    /// possibly empty when no key was declared).
    pub primary_key: Vec<usize>,
}

impl Relation {
    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Finds an attribute by case-insensitive name.
    pub fn attr_index(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name.eq_ignore_ascii_case(name))
    }

    /// Whether the attribute at `idx` uniquely identifies rows (declared
    /// unique or the sole primary-key column).
    pub fn attr_is_unique(&self, idx: usize) -> bool {
        self.attributes[idx].unique || (self.primary_key.len() == 1 && self.primary_key[0] == idx)
    }
}

/// A directed joinable-attribute edge in the schema graph.
///
/// `from` and `to` are attribute endpoints of a potential equi-join. The
/// catalog stores one edge per declared direction; [`Catalog::add_join_edge`]
/// registers both directions at once since schema joinability is symmetric
/// (the *preference* direction of §3.1 lives in the personalization graph,
/// not here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ForeignKey {
    /// Source attribute.
    pub from: AttrId,
    /// Target attribute.
    pub to: AttrId,
}

/// How many rows of the right relation a single left row can join with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinMultiplicity {
    /// Each left row matches at most one right row.
    ToOne,
    /// A left row may match many right rows.
    ToMany,
}

/// The schema catalog.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    relations: Vec<Relation>,
    by_name: HashMap<String, RelId>,
    join_edges: Vec<ForeignKey>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Adds a relation. `primary_key` lists attribute names forming the key.
    pub fn add_relation(
        &mut self,
        name: impl Into<String>,
        attributes: Vec<Attribute>,
        primary_key: &[&str],
    ) -> Result<RelId, StorageError> {
        let name = name.into();
        let key = name.to_ascii_uppercase();
        if self.by_name.contains_key(&key) {
            return Err(StorageError::DuplicateRelation(name));
        }
        for (i, a) in attributes.iter().enumerate() {
            if attributes[..i].iter().any(|b| b.name.eq_ignore_ascii_case(&a.name)) {
                return Err(StorageError::DuplicateAttribute {
                    relation: name,
                    attribute: a.name.clone(),
                });
            }
        }
        let id = RelId(self.relations.len() as u32);
        let mut rel = Relation { id, name: name.clone(), attributes, primary_key: vec![] };
        for pk in primary_key {
            let idx = rel.attr_index(pk).ok_or_else(|| StorageError::UnknownAttribute {
                relation: name.clone(),
                attribute: (*pk).to_string(),
            })?;
            rel.primary_key.push(idx);
        }
        if rel.primary_key.len() == 1 {
            let idx = rel.primary_key[0];
            rel.attributes[idx].unique = true;
        }
        self.relations.push(rel);
        self.by_name.insert(key, id);
        Ok(id)
    }

    /// All relations in definition order.
    pub fn relations(&self) -> &[Relation] {
        &self.relations
    }

    /// Looks a relation up by id.
    pub fn relation(&self, id: RelId) -> &Relation {
        &self.relations[id.0 as usize]
    }

    /// Looks a relation up by case-insensitive name.
    pub fn relation_by_name(&self, name: &str) -> Result<&Relation, StorageError> {
        self.by_name
            .get(&name.to_ascii_uppercase())
            .map(|id| self.relation(*id))
            .ok_or_else(|| StorageError::UnknownRelation(name.to_string()))
    }

    /// Resolves `"MOVIE", "mid"` to an [`AttrId`].
    pub fn resolve(&self, relation: &str, attribute: &str) -> Result<AttrId, StorageError> {
        let rel = self.relation_by_name(relation)?;
        let idx = rel.attr_index(attribute).ok_or_else(|| StorageError::UnknownAttribute {
            relation: relation.to_string(),
            attribute: attribute.to_string(),
        })?;
        Ok(AttrId::new(rel.id, idx as u32))
    }

    /// The [`Attribute`] definition behind an [`AttrId`].
    pub fn attribute(&self, id: AttrId) -> &Attribute {
        &self.relation(id.rel).attributes[id.idx as usize]
    }

    /// `"MOVIE.mid"`-style display name for an attribute.
    pub fn attr_name(&self, id: AttrId) -> String {
        let rel = self.relation(id.rel);
        format!("{}.{}", rel.name, rel.attributes[id.idx as usize].name)
    }

    /// Registers a joinable attribute pair; both directions are added.
    pub fn add_join_edge(&mut self, a: AttrId, b: AttrId) -> Result<(), StorageError> {
        if a.rel == b.rel {
            return Err(StorageError::InvalidForeignKey(
                "self-joins are not part of the schema graph".to_string(),
            ));
        }
        let ta = self.attribute(a).data_type;
        let tb = self.attribute(b).data_type;
        if ta != tb {
            return Err(StorageError::InvalidForeignKey(format!(
                "type mismatch {} vs {}",
                ta, tb
            )));
        }
        let fwd = ForeignKey { from: a, to: b };
        if !self.join_edges.contains(&fwd) {
            self.join_edges.push(fwd);
            self.join_edges.push(ForeignKey { from: b, to: a });
        }
        Ok(())
    }

    /// Convenience: register a join edge by names.
    pub fn add_join_edge_by_name(
        &mut self,
        rel_a: &str,
        attr_a: &str,
        rel_b: &str,
        attr_b: &str,
    ) -> Result<(), StorageError> {
        let a = self.resolve(rel_a, attr_a)?;
        let b = self.resolve(rel_b, attr_b)?;
        self.add_join_edge(a, b)
    }

    /// All directed join edges of the schema graph.
    pub fn join_edges(&self) -> &[ForeignKey] {
        &self.join_edges
    }

    /// Join edges leaving attributes of `rel`.
    pub fn join_edges_from(&self, rel: RelId) -> impl Iterator<Item = &ForeignKey> {
        self.join_edges.iter().filter(move |fk| fk.from.rel == rel)
    }

    /// Whether `from.attr = to.attr` is a registered joinable pair.
    pub fn is_joinable(&self, from: AttrId, to: AttrId) -> bool {
        self.join_edges.iter().any(|fk| fk.from == from && fk.to == to)
    }

    /// Multiplicity of the join `from = to`, viewed from the left side: if
    /// the right attribute uniquely identifies rows of its relation the join
    /// is [`JoinMultiplicity::ToOne`], otherwise [`JoinMultiplicity::ToMany`].
    pub fn join_multiplicity(&self, _from: AttrId, to: AttrId) -> JoinMultiplicity {
        let rel = self.relation(to.rel);
        if rel.attr_is_unique(to.idx as usize) {
            JoinMultiplicity::ToOne
        } else {
            JoinMultiplicity::ToMany
        }
    }
}

impl fmt::Display for Catalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rel in &self.relations {
            write!(f, "{}(", rel.name)?;
            for (i, a) in rel.attributes.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}: {}", a.name, a.data_type)?;
            }
            writeln!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn movie_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_relation(
            "MOVIE",
            vec![
                Attribute::new("mid", DataType::Int),
                Attribute::new("title", DataType::Text),
                Attribute::new("year", DataType::Int),
            ],
            &["mid"],
        )
        .unwrap();
        c.add_relation(
            "GENRE",
            vec![Attribute::new("mid", DataType::Int), Attribute::new("genre", DataType::Text)],
            &["mid", "genre"],
        )
        .unwrap();
        c.add_join_edge_by_name("MOVIE", "mid", "GENRE", "mid").unwrap();
        c
    }

    #[test]
    fn resolve_case_insensitive() {
        let c = movie_catalog();
        let a = c.resolve("movie", "MID").unwrap();
        assert_eq!(a.rel, RelId(0));
        assert_eq!(a.idx, 0);
    }

    #[test]
    fn duplicate_relation_rejected() {
        let mut c = movie_catalog();
        let err = c.add_relation("movie", vec![Attribute::new("x", DataType::Int)], &[]);
        assert!(matches!(err, Err(StorageError::DuplicateRelation(_))));
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let mut c = Catalog::new();
        let err = c.add_relation(
            "R",
            vec![Attribute::new("a", DataType::Int), Attribute::new("A", DataType::Int)],
            &[],
        );
        assert!(matches!(err, Err(StorageError::DuplicateAttribute { .. })));
    }

    #[test]
    fn unknown_pk_rejected() {
        let mut c = Catalog::new();
        let err = c.add_relation("R", vec![Attribute::new("a", DataType::Int)], &["b"]);
        assert!(matches!(err, Err(StorageError::UnknownAttribute { .. })));
    }

    #[test]
    fn single_pk_marks_unique() {
        let c = movie_catalog();
        let rel = c.relation_by_name("MOVIE").unwrap();
        assert!(rel.attr_is_unique(0));
        assert!(!rel.attr_is_unique(1));
    }

    #[test]
    fn composite_pk_not_unique_per_column() {
        let c = movie_catalog();
        let rel = c.relation_by_name("GENRE").unwrap();
        assert!(!rel.attr_is_unique(0));
        assert!(!rel.attr_is_unique(1));
    }

    #[test]
    fn join_edges_symmetric() {
        let c = movie_catalog();
        let m = c.resolve("MOVIE", "mid").unwrap();
        let g = c.resolve("GENRE", "mid").unwrap();
        assert!(c.is_joinable(m, g));
        assert!(c.is_joinable(g, m));
    }

    #[test]
    fn multiplicity_classification() {
        let c = movie_catalog();
        let m = c.resolve("MOVIE", "mid").unwrap();
        let g = c.resolve("GENRE", "mid").unwrap();
        // MOVIE -> GENRE is 1-n (genre.mid not unique)
        assert_eq!(c.join_multiplicity(m, g), JoinMultiplicity::ToMany);
        // GENRE -> MOVIE is n-1 (movie.mid unique)
        assert_eq!(c.join_multiplicity(g, m), JoinMultiplicity::ToOne);
    }

    #[test]
    fn join_edge_type_mismatch_rejected() {
        let mut c = movie_catalog();
        let err = c.add_join_edge_by_name("MOVIE", "title", "GENRE", "mid");
        assert!(matches!(err, Err(StorageError::InvalidForeignKey(_))));
    }

    #[test]
    fn self_join_edge_rejected() {
        let mut c = movie_catalog();
        let err = c.add_join_edge_by_name("MOVIE", "mid", "MOVIE", "year");
        assert!(matches!(err, Err(StorageError::InvalidForeignKey(_))));
    }

    #[test]
    fn display_lists_relations() {
        let c = movie_catalog();
        let s = c.to_string();
        assert!(s.contains("MOVIE(mid: INT, title: TEXT, year: INT)"));
    }
}
