//! Snapshot-consistent mutation: copy-on-write database epochs.
//!
//! A [`SnapshotStore`] lets writers mutate the database while queries are
//! in flight, without locks on the read path and without torn reads. The
//! store holds the current epoch as an `Arc<Database>`; readers call
//! [`SnapshotStore::snapshot`] once per request and keep that `Arc` for
//! the request's whole lifetime, so they observe one immutable epoch
//! end-to-end. Writers go through [`SnapshotStore::update`], which clones
//! the current epoch (cheap — tables are `Arc`-shared, see
//! [`Database::table`]'s copy-on-write note), applies the mutation to the
//! private clone, and publishes it atomically as the next epoch.
//!
//! Consistency follows from immutability: an epoch, once published, is
//! never mutated again, so a reader sees the *old* database or the *new*
//! one, never a mix. Cache coherence follows from versioning: every
//! mutation bumps [`Database::version`], and both the plan cache (keyed
//! `(db id, db version, sql)`) and downstream preference caches key on
//! the version, so entries built against a superseded epoch simply stop
//! matching — no explicit invalidation protocol.
//!
//! Writers are serialized by a mutex held across clone + mutate +
//! publish. That keeps version numbers strictly increasing (two
//! concurrent writers cloning the same epoch would otherwise publish two
//! *different* databases under the same `(id, version)` key and poison
//! the caches) and makes each update atomic: either every row of a batch
//! is visible or none is.

use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::database::Database;
use crate::delta::{AppliedDelta, DbDelta};
use crate::error::StorageError;

/// A concurrently updatable holder of immutable [`Database`] epochs.
///
/// ```
/// use qp_storage::{Database, SnapshotStore};
/// let store = SnapshotStore::new(Database::new());
/// let before = store.snapshot();
/// store
///     .update(|db| {
///         db.create_relation("R", vec![qp_storage::Attribute::new("a", qp_storage::DataType::Int)], &["a"])?;
///         Ok(())
///     })
///     .unwrap();
/// let after = store.snapshot();
/// assert!(after.version() > before.version());
/// assert_eq!(before.catalog().relations().len(), 0); // old epoch untouched
/// ```
#[derive(Debug)]
pub struct SnapshotStore {
    /// The published epoch. Readers take the read lock only long enough
    /// to clone the `Arc`; they never hold it across query execution.
    current: RwLock<Arc<Database>>,
    /// Serializes writers across clone + mutate + publish.
    write: Mutex<()>,
}

impl SnapshotStore {
    /// Wraps a database as the store's first epoch.
    pub fn new(db: Database) -> Self {
        SnapshotStore { current: RwLock::new(Arc::new(db)), write: Mutex::new(()) }
    }

    /// Pins the current epoch. The returned `Arc` stays valid (and
    /// immutable) for as long as the caller holds it, regardless of how
    /// many updates are published meanwhile — a request should call this
    /// once and use the same snapshot for all of its reads.
    pub fn snapshot(&self) -> Arc<Database> {
        Arc::clone(&self.current.read())
    }

    /// The version of the current epoch (a convenience for tests and
    /// metrics; racing readers should pin a [`SnapshotStore::snapshot`]
    /// and ask it instead).
    pub fn version(&self) -> u64 {
        self.current.read().version()
    }

    /// Applies `f` to a private copy of the current epoch and publishes
    /// the result as the next epoch. The mutation is atomic from any
    /// reader's point of view: snapshots pinned before the publish keep
    /// seeing the old epoch; snapshots taken after see every change `f`
    /// made. If `f` fails, nothing is published and the error is
    /// returned.
    ///
    /// An armed `snapshot.update` failpoint fails the update *before*
    /// mutation, modelling a rejected write.
    pub fn update<T>(
        &self,
        f: impl FnOnce(&mut Database) -> Result<T, StorageError>,
    ) -> Result<T, StorageError> {
        let _writer = self.write.lock();
        crate::failpoint::check("snapshot.update").map_err(StorageError::Injected)?;
        let mut next = self.current.read().snapshot_clone();
        let out = f(&mut next)?;
        *self.current.write() = Arc::new(next);
        Ok(out)
    }

    /// Applies a typed [`DbDelta`] atomically and publishes the result
    /// as the next epoch, returning the published epoch together with
    /// the applied row ids ([`AppliedDelta`]) — the input the
    /// incremental-maintenance layer patches materializations from. A
    /// rejected delta (unknown relation, arity/type mismatch, delete of
    /// a tuple with no live match) publishes nothing.
    ///
    /// Shares the `snapshot.update` failpoint and the writer mutex with
    /// [`SnapshotStore::update`], so chaos plans that target publishes
    /// exercise delta publishes too.
    pub fn publish_delta(
        &self,
        delta: &DbDelta,
    ) -> Result<(Arc<Database>, AppliedDelta), StorageError> {
        let _writer = self.write.lock();
        crate::failpoint::check("snapshot.update").map_err(StorageError::Injected)?;
        let mut next = self.current.read().snapshot_clone();
        let applied = next.apply_delta(delta)?;
        let published = Arc::new(next);
        *self.current.write() = Arc::clone(&published);
        Ok((published, applied))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;
    use crate::types::DataType;
    use crate::value::Value;

    fn store() -> SnapshotStore {
        let mut db = Database::new();
        db.create_relation(
            "R",
            vec![Attribute::new("a", DataType::Int), Attribute::new("b", DataType::Int)],
            &["a"],
        )
        .unwrap();
        for i in 0..5 {
            db.insert_by_name("R", vec![Value::Int(i), Value::Int(i * 10)]).unwrap();
        }
        SnapshotStore::new(db)
    }

    #[test]
    fn readers_pin_an_epoch_across_updates() {
        let store = store();
        let pinned = store.snapshot();
        let (v0, rows0) = (pinned.version(), pinned.total_rows());
        store
            .update(|db| db.insert_by_name("R", vec![Value::Int(99), Value::Int(990)]).map(|_| ()))
            .unwrap();
        // The pinned epoch is frozen; a fresh snapshot sees the insert.
        assert_eq!(pinned.version(), v0);
        assert_eq!(pinned.total_rows(), rows0);
        let fresh = store.snapshot();
        assert_eq!(fresh.total_rows(), rows0 + 1);
        assert!(fresh.version() > v0);
        assert_eq!(fresh.id(), pinned.id(), "epochs are the same logical database");
    }

    #[test]
    fn failed_update_publishes_nothing() {
        let store = store();
        let v0 = store.version();
        let err = store.update(|db| {
            db.insert_by_name("R", vec![Value::Int(50), Value::Int(1)])?;
            db.insert_by_name("NOPE", vec![Value::Int(0)]).map(|_| ())
        });
        assert!(err.is_err());
        // The half-applied clone was discarded: row 50 is not visible.
        let now = store.snapshot();
        assert_eq!(now.version(), v0);
        assert_eq!(now.total_rows(), 5);
    }

    #[test]
    fn updates_are_atomic_under_concurrency() {
        // Writers insert rows in pairs; readers must never observe an odd
        // count (a torn read would expose a half-published batch).
        let store = std::sync::Arc::new(store());
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let store = std::sync::Arc::clone(&store);
                scope.spawn(move || {
                    for i in 0..20 {
                        store
                            .update(|db| {
                                db.insert_by_name("R", vec![Value::Int(1000 + i * 2), Value::Int(0)])?;
                                db.insert_by_name("R", vec![Value::Int(1001 + i * 2), Value::Int(0)])
                                    .map(|_| ())
                            })
                            .ok(); // primary-key collisions between writers are fine
                    }
                });
            }
            for _ in 0..3 {
                let store = std::sync::Arc::clone(&store);
                scope.spawn(move || {
                    for _ in 0..200 {
                        let snap = store.snapshot();
                        let n = snap.total_rows();
                        assert!(n >= 5 && (n - 5).is_multiple_of(2), "torn read: {n} rows");
                    }
                });
            }
        });
    }

    #[test]
    fn versions_strictly_increase_across_writers() {
        let store = std::sync::Arc::new(store());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let store = std::sync::Arc::clone(&store);
                scope.spawn(move || {
                    for i in 0..10 {
                        let v_before = store.version();
                        store
                            .update(|db| {
                                db.insert_by_name(
                                    "R",
                                    vec![Value::Int(10_000 + t * 100 + i), Value::Int(0)],
                                )
                                .map(|_| ())
                            })
                            .unwrap();
                        assert!(store.version() > v_before);
                    }
                });
            }
        });
        assert_eq!(store.snapshot().total_rows(), 5 + 40);
    }

    #[test]
    fn publish_delta_is_atomic_and_returns_applied_rows() {
        let store = store();
        let pinned = store.snapshot();
        let v0 = pinned.version();
        let delta = DbDelta::new()
            .delete("R", vec![Value::Int(2), Value::Int(20)])
            .insert("R", vec![Value::Int(7), Value::Int(70)]);
        let (published, applied) = store.publish_delta(&delta).unwrap();
        assert_eq!(applied.old_version, v0);
        assert_eq!(applied.new_version, published.version());
        assert!(applied.new_version > v0);
        let slice = &applied.relations[0];
        assert_eq!(slice.deleted, vec![crate::table::RowId(2)]);
        assert_eq!(slice.inserted, vec![crate::table::RowId(5)]);
        // The pinned epoch still sees the deleted row; the published one
        // does not.
        assert!(pinned.table_by_name("R").unwrap().get(crate::table::RowId(2)).is_some());
        assert!(published.table_by_name("R").unwrap().get(crate::table::RowId(2)).is_none());
        assert_eq!(published.total_rows(), 5);
        assert!(Arc::ptr_eq(&published, &store.snapshot()));
    }

    #[test]
    fn rejected_delta_publishes_nothing() {
        let store = store();
        let v0 = store.version();
        let delta = DbDelta::new()
            .insert("R", vec![Value::Int(7), Value::Int(70)])
            .delete("R", vec![Value::Int(99), Value::Int(0)]);
        assert!(store.publish_delta(&delta).is_err());
        assert_eq!(store.version(), v0);
        assert_eq!(store.snapshot().total_rows(), 5);
    }

    #[test]
    fn unchanged_tables_stay_shared_between_epochs() {
        let mut db = Database::new();
        db.create_relation("A", vec![Attribute::new("x", DataType::Int)], &["x"]).unwrap();
        db.create_relation("B", vec![Attribute::new("y", DataType::Int)], &["y"]).unwrap();
        db.insert_by_name("A", vec![Value::Int(1)]).unwrap();
        db.insert_by_name("B", vec![Value::Int(1)]).unwrap();
        let store = SnapshotStore::new(db);
        let before = store.snapshot();
        store
            .update(|db| db.insert_by_name("A", vec![Value::Int(2)]).map(|_| ()))
            .unwrap();
        let after = store.snapshot();
        // Table B was untouched: both epochs point at the same allocation.
        let b_before = before.table_by_name("B").unwrap() as *const _;
        let b_after = after.table_by_name("B").unwrap() as *const _;
        assert_eq!(b_before, b_after, "copy-on-write shares untouched tables");
        let a_before = before.table_by_name("A").unwrap() as *const _;
        let a_after = after.table_by_name("A").unwrap() as *const _;
        assert_ne!(a_before, a_after, "the mutated table was copied");
    }
}
