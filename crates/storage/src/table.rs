//! Row-oriented tables.
//!
//! A [`Table`] stores rows of [`Value`]s for one relation. Rows are
//! addressed by [`RowId`] — the "tuple id" the PPA algorithm's
//! parameterized queries bind (§5). Row slots are append-only, so a
//! `RowId` is stable for the lifetime of the table; deletes tombstone
//! the slot in place (the row id is never reused) so that every
//! materialized result keyed by tuple id stays patchable under write
//! traffic instead of being rebuilt from scratch.

use crate::error::StorageError;
use crate::schema::Relation;
use crate::types::DataType;
use crate::value::Value;

/// Identifier of a row within its table (stable: row slots are
/// append-only and never reused, even across deletes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId(pub u64);

/// A single row: one [`Value`] per attribute.
pub type Row = Vec<Value>;

/// Rows of one relation.
///
/// Deleted rows are tombstoned (`dead[slot] = true`) rather than
/// removed, keeping `RowId`s positional into [`Table::rows`]. The
/// tombstone mask is allocated lazily: a table that has never seen a
/// delete carries no per-row overhead and [`Table::tombstones`]
/// returns `None`.
#[derive(Debug, Clone, Default)]
pub struct Table {
    rows: Vec<Row>,
    /// Tombstone mask; empty means every slot is live.
    dead: Vec<bool>,
    /// Number of `true` entries in `dead`.
    dead_count: usize,
}

impl Table {
    /// Creates an empty table.
    pub fn new() -> Self {
        Table::default()
    }

    /// Number of row *slots* (live + tombstoned): the exclusive upper
    /// bound on `RowId.0`, and the length of the [`Table::rows`] slice.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Number of live (non-tombstoned) rows.
    pub fn live_len(&self) -> usize {
        self.rows.len() - self.dead_count
    }

    /// True iff the table has no row slots at all.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row after checking its arity and types against `rel`.
    /// NULLs are accepted in any column.
    pub fn insert(&mut self, rel: &Relation, row: Row) -> Result<RowId, StorageError> {
        validate_row(rel, &row)?;
        Ok(self.push_row(row))
    }

    /// Appends a row without validation. The caller must guarantee arity
    /// and types; data generators use this on their own validated output to
    /// avoid per-row checking costs.
    pub fn insert_unchecked(&mut self, row: Row) -> RowId {
        self.push_row(row)
    }

    fn push_row(&mut self, row: Row) -> RowId {
        let id = RowId(self.rows.len() as u64);
        self.rows.push(row);
        if !self.dead.is_empty() {
            self.dead.push(false);
        }
        id
    }

    /// Tombstones the row behind `id`. Returns `false` if the slot does
    /// not exist or is already dead. The slot (and its `RowId`) remains
    /// occupied forever; only [`Table::get`]/[`Table::iter`] visibility
    /// changes.
    pub fn delete(&mut self, id: RowId) -> bool {
        let slot = id.0 as usize;
        if slot >= self.rows.len() {
            return false;
        }
        if self.dead.is_empty() {
            self.dead = vec![false; self.rows.len()];
        }
        if self.dead[slot] {
            return false;
        }
        self.dead[slot] = true;
        self.dead_count += 1;
        true
    }

    /// True iff `id` names a live (existing, non-tombstoned) row.
    pub fn is_live(&self, id: RowId) -> bool {
        let slot = id.0 as usize;
        slot < self.rows.len() && !self.dead.get(slot).copied().unwrap_or(false)
    }

    /// The tombstone mask (one flag per row slot), or `None` when every
    /// slot is live. Batch scans use this to mask dead slots without a
    /// per-row branch on the common delete-free path.
    pub fn tombstones(&self) -> Option<&[bool]> {
        if self.dead_count == 0 { None } else { Some(&self.dead) }
    }

    /// The live row behind `id`, if it exists and is not tombstoned.
    pub fn get(&self, id: RowId) -> Option<&Row> {
        if self.dead.get(id.0 as usize).copied().unwrap_or(false) {
            return None;
        }
        self.rows.get(id.0 as usize)
    }

    /// Iterates `(RowId, &Row)` over live rows in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &Row)> {
        self.rows
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.dead.get(*i).copied().unwrap_or(false))
            .map(|(i, r)| (RowId(i as u64), r))
    }

    /// First live row equal to `row` (full-tuple value equality), in
    /// insertion order — how value-addressed deletes resolve a `RowId`.
    pub fn find_live(&self, row: &[Value]) -> Option<RowId> {
        self.iter().find(|(_, r)| r.as_slice() == row).map(|(id, _)| id)
    }

    /// All row slots as a slice, indexed by `RowId.0`. Includes
    /// tombstoned slots — positional consumers must consult
    /// [`Table::tombstones`].
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Values of one column over every slot, in row order (NULLs and
    /// tombstoned slots included).
    pub fn column(&self, idx: usize) -> impl Iterator<Item = &Value> {
        self.rows.iter().map(move |r| &r[idx])
    }

    /// Values of one column over live rows only, in row order.
    pub fn live_column(&self, idx: usize) -> impl Iterator<Item = &Value> {
        self.iter().map(move |(_, r)| &r[idx])
    }

    /// `(RowId, value)` pairs of one column over live rows only — the
    /// position-preserving feed for index builds, which must never point
    /// at a tombstoned slot.
    pub fn live_column_pairs(&self, idx: usize) -> impl Iterator<Item = (RowId, &Value)> {
        self.iter().map(move |(id, r)| (id, &r[idx]))
    }

    /// Iterates the table in contiguous chunks of at most `cap` row
    /// slots, yielding each chunk's starting row id with a borrowed row
    /// slice — the batch-scan entry point: a vectorized scan reads one
    /// chunk per batch without per-row bookkeeping (row ids are
    /// `base..base+len`). Chunks include tombstoned slots; scans mask
    /// them via [`Table::tombstones`].
    ///
    /// # Panics
    /// If `cap` is zero.
    pub fn chunks(&self, cap: usize) -> impl Iterator<Item = (RowId, &[Row])> {
        assert!(cap > 0, "chunk capacity must be non-zero");
        self.rows.chunks(cap).enumerate().map(move |(i, c)| (RowId((i * cap) as u64), c))
    }
}

/// Checks a row's arity and value types against a relation's schema
/// without inserting it. NULLs are accepted in any column; ints widen
/// into float columns. [`Table::insert`] calls this, and delta
/// application uses it to pre-validate a whole batch before mutating
/// anything (all-or-nothing deltas).
pub fn validate_row(rel: &Relation, row: &[Value]) -> Result<(), StorageError> {
    if row.len() != rel.arity() {
        return Err(StorageError::ArityMismatch {
            relation: rel.name.clone(),
            expected: rel.arity(),
            got: row.len(),
        });
    }
    for (value, attr) in row.iter().zip(&rel.attributes) {
        let ok = match (value.data_type(), attr.data_type) {
            (None, _) => true,
            (Some(t), expected) if t == expected => true,
            // ints widen into float columns
            (Some(DataType::Int), DataType::Float) => true,
            _ => false,
        };
        if !ok {
            return Err(StorageError::TypeMismatch {
                relation: rel.name.clone(),
                attribute: attr.name.clone(),
                detail: format!("expected {}, got {:?}", attr.data_type, value.data_type()),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Catalog};

    fn rel() -> (Catalog, crate::schema::RelId) {
        let mut c = Catalog::new();
        let id = c
            .add_relation(
                "MOVIE",
                vec![
                    Attribute::new("mid", DataType::Int),
                    Attribute::new("title", DataType::Text),
                    Attribute::new("rating", DataType::Float),
                ],
                &["mid"],
            )
            .unwrap();
        (c, id)
    }

    #[test]
    fn insert_and_get() {
        let (c, id) = rel();
        let mut t = Table::new();
        let rid = t
            .insert(c.relation(id), vec![Value::Int(1), Value::str("Heat"), Value::Float(8.3)])
            .unwrap();
        assert_eq!(rid, RowId(0));
        assert_eq!(t.get(rid).unwrap()[1], Value::str("Heat"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn arity_checked() {
        let (c, id) = rel();
        let mut t = Table::new();
        let err = t.insert(c.relation(id), vec![Value::Int(1)]);
        assert!(matches!(err, Err(StorageError::ArityMismatch { .. })));
    }

    #[test]
    fn type_checked() {
        let (c, id) = rel();
        let mut t = Table::new();
        let err =
            t.insert(c.relation(id), vec![Value::str("x"), Value::str("t"), Value::Float(0.0)]);
        assert!(matches!(err, Err(StorageError::TypeMismatch { .. })));
    }

    #[test]
    fn int_widens_to_float_column() {
        let (c, id) = rel();
        let mut t = Table::new();
        t.insert(c.relation(id), vec![Value::Int(1), Value::str("t"), Value::Int(8)]).unwrap();
    }

    #[test]
    fn null_allowed_anywhere() {
        let (c, id) = rel();
        let mut t = Table::new();
        t.insert(c.relation(id), vec![Value::Int(1), Value::Null, Value::Null]).unwrap();
    }

    #[test]
    fn iter_yields_stable_row_ids() {
        let (c, id) = rel();
        let mut t = Table::new();
        for i in 0..5 {
            t.insert(c.relation(id), vec![Value::Int(i), Value::str("t"), Value::Float(0.0)])
                .unwrap();
        }
        let ids: Vec<u64> = t.iter().map(|(rid, _)| rid.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn delete_tombstones_slot_and_preserves_row_ids() {
        let (c, id) = rel();
        let mut t = Table::new();
        for i in 0..4 {
            t.insert(c.relation(id), vec![Value::Int(i), Value::str("t"), Value::Float(0.0)])
                .unwrap();
        }
        assert!(t.tombstones().is_none());
        assert!(t.delete(RowId(1)));
        assert!(!t.delete(RowId(1)), "double delete is a no-op");
        assert!(!t.delete(RowId(99)), "out-of-range delete is a no-op");
        assert_eq!(t.len(), 4, "slot count unchanged");
        assert_eq!(t.live_len(), 3);
        assert!(t.get(RowId(1)).is_none(), "dead row invisible to point fetch");
        assert!(t.get(RowId(2)).is_some());
        assert!(!t.is_live(RowId(1)));
        assert!(t.is_live(RowId(2)));
        let ids: Vec<u64> = t.iter().map(|(rid, _)| rid.0).collect();
        assert_eq!(ids, vec![0, 2, 3], "iter skips dead, row ids stable");
        assert_eq!(t.tombstones().unwrap(), &[false, true, false, false]);
        // A reinsert of the same values lands in a fresh slot: row ids
        // are never reused.
        let rid = t
            .insert(c.relation(id), vec![Value::Int(1), Value::str("t"), Value::Float(0.0)])
            .unwrap();
        assert_eq!(rid, RowId(4));
        assert_eq!(t.tombstones().unwrap().len(), 5, "mask tracks appends");
        assert_eq!(t.live_len(), 4);
    }

    #[test]
    fn find_live_matches_full_tuple_and_skips_dead() {
        let (c, id) = rel();
        let mut t = Table::new();
        for i in 0..3 {
            t.insert(c.relation(id), vec![Value::Int(7), Value::str("t"), Value::Float(i as f64)])
                .unwrap();
        }
        let target = vec![Value::Int(7), Value::str("t"), Value::Float(1.0)];
        assert_eq!(t.find_live(&target), Some(RowId(1)));
        t.delete(RowId(1));
        assert_eq!(t.find_live(&target), None);
        assert_eq!(
            t.find_live(&[Value::Int(7), Value::str("t"), Value::Float(0.0)]),
            Some(RowId(0))
        );
    }

    #[test]
    fn live_column_iterators_skip_dead_but_keep_positions() {
        let (c, id) = rel();
        let mut t = Table::new();
        for i in 0..4 {
            t.insert(c.relation(id), vec![Value::Int(i), Value::str("t"), Value::Float(0.0)])
                .unwrap();
        }
        t.delete(RowId(2));
        let mids: Vec<i64> = t.live_column(0).filter_map(|v| v.as_i64()).collect();
        assert_eq!(mids, vec![0, 1, 3]);
        let pairs: Vec<(u64, i64)> =
            t.live_column_pairs(0).map(|(rid, v)| (rid.0, v.as_i64().unwrap())).collect();
        assert_eq!(pairs, vec![(0, 0), (1, 1), (3, 3)]);
        // The positional column iterator still walks every slot.
        assert_eq!(t.column(0).count(), 4);
    }

    #[test]
    fn column_iterator() {
        let (c, id) = rel();
        let mut t = Table::new();
        for i in 0..3 {
            t.insert(c.relation(id), vec![Value::Int(i), Value::str("t"), Value::Float(0.0)])
                .unwrap();
        }
        let mids: Vec<i64> = t.column(0).filter_map(|v| v.as_i64()).collect();
        assert_eq!(mids, vec![0, 1, 2]);
    }
}
