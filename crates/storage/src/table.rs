//! Row-oriented tables.
//!
//! A [`Table`] stores rows of [`Value`]s for one relation. Rows are
//! addressed by [`RowId`] — the "tuple id" the PPA algorithm's
//! parameterized queries bind (§5). Rows are append-only: the paper's
//! workloads are read-mostly and personalization never mutates data.

use crate::error::StorageError;
use crate::schema::Relation;
use crate::types::DataType;
use crate::value::Value;

/// Identifier of a row within its table (stable: rows are append-only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId(pub u64);

/// A single row: one [`Value`] per attribute.
pub type Row = Vec<Value>;

/// Rows of one relation.
#[derive(Debug, Clone, Default)]
pub struct Table {
    rows: Vec<Row>,
}

impl Table {
    /// Creates an empty table.
    pub fn new() -> Self {
        Table::default()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row after checking its arity and types against `rel`.
    /// NULLs are accepted in any column.
    pub fn insert(&mut self, rel: &Relation, row: Row) -> Result<RowId, StorageError> {
        if row.len() != rel.arity() {
            return Err(StorageError::ArityMismatch {
                relation: rel.name.clone(),
                expected: rel.arity(),
                got: row.len(),
            });
        }
        for (value, attr) in row.iter().zip(&rel.attributes) {
            let ok = match (value.data_type(), attr.data_type) {
                (None, _) => true,
                (Some(t), expected) if t == expected => true,
                // ints widen into float columns
                (Some(DataType::Int), DataType::Float) => true,
                _ => false,
            };
            if !ok {
                return Err(StorageError::TypeMismatch {
                    relation: rel.name.clone(),
                    attribute: attr.name.clone(),
                    detail: format!(
                        "expected {}, got {:?}",
                        attr.data_type,
                        value.data_type()
                    ),
                });
            }
        }
        let id = RowId(self.rows.len() as u64);
        self.rows.push(row);
        Ok(id)
    }

    /// Appends a row without validation. The caller must guarantee arity
    /// and types; data generators use this on their own validated output to
    /// avoid per-row checking costs.
    pub fn insert_unchecked(&mut self, row: Row) -> RowId {
        let id = RowId(self.rows.len() as u64);
        self.rows.push(row);
        id
    }

    /// The row behind `id`, if it exists.
    pub fn get(&self, id: RowId) -> Option<&Row> {
        self.rows.get(id.0 as usize)
    }

    /// Iterates `(RowId, &Row)` in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &Row)> {
        self.rows.iter().enumerate().map(|(i, r)| (RowId(i as u64), r))
    }

    /// All rows as a slice, indexed by `RowId.0`.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Values of one column, in row order (NULLs included).
    pub fn column(&self, idx: usize) -> impl Iterator<Item = &Value> {
        self.rows.iter().map(move |r| &r[idx])
    }

    /// Iterates the table in contiguous chunks of at most `cap` rows,
    /// yielding each chunk's starting row id with a borrowed row slice —
    /// the batch-scan entry point: a vectorized scan reads one chunk per
    /// batch without per-row bookkeeping (row ids are `base..base+len`).
    ///
    /// # Panics
    /// If `cap` is zero.
    pub fn chunks(&self, cap: usize) -> impl Iterator<Item = (RowId, &[Row])> {
        assert!(cap > 0, "chunk capacity must be non-zero");
        self.rows.chunks(cap).enumerate().map(move |(i, c)| (RowId((i * cap) as u64), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Catalog};

    fn rel() -> (Catalog, crate::schema::RelId) {
        let mut c = Catalog::new();
        let id = c
            .add_relation(
                "MOVIE",
                vec![
                    Attribute::new("mid", DataType::Int),
                    Attribute::new("title", DataType::Text),
                    Attribute::new("rating", DataType::Float),
                ],
                &["mid"],
            )
            .unwrap();
        (c, id)
    }

    #[test]
    fn insert_and_get() {
        let (c, id) = rel();
        let mut t = Table::new();
        let rid = t
            .insert(c.relation(id), vec![Value::Int(1), Value::str("Heat"), Value::Float(8.3)])
            .unwrap();
        assert_eq!(rid, RowId(0));
        assert_eq!(t.get(rid).unwrap()[1], Value::str("Heat"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn arity_checked() {
        let (c, id) = rel();
        let mut t = Table::new();
        let err = t.insert(c.relation(id), vec![Value::Int(1)]);
        assert!(matches!(err, Err(StorageError::ArityMismatch { .. })));
    }

    #[test]
    fn type_checked() {
        let (c, id) = rel();
        let mut t = Table::new();
        let err =
            t.insert(c.relation(id), vec![Value::str("x"), Value::str("t"), Value::Float(0.0)]);
        assert!(matches!(err, Err(StorageError::TypeMismatch { .. })));
    }

    #[test]
    fn int_widens_to_float_column() {
        let (c, id) = rel();
        let mut t = Table::new();
        t.insert(c.relation(id), vec![Value::Int(1), Value::str("t"), Value::Int(8)]).unwrap();
    }

    #[test]
    fn null_allowed_anywhere() {
        let (c, id) = rel();
        let mut t = Table::new();
        t.insert(c.relation(id), vec![Value::Int(1), Value::Null, Value::Null]).unwrap();
    }

    #[test]
    fn iter_yields_stable_row_ids() {
        let (c, id) = rel();
        let mut t = Table::new();
        for i in 0..5 {
            t.insert(c.relation(id), vec![Value::Int(i), Value::str("t"), Value::Float(0.0)])
                .unwrap();
        }
        let ids: Vec<u64> = t.iter().map(|(rid, _)| rid.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn column_iterator() {
        let (c, id) = rel();
        let mut t = Table::new();
        for i in 0..3 {
            t.insert(c.relation(id), vec![Value::Int(i), Value::str("t"), Value::Float(0.0)])
                .unwrap();
        }
        let mids: Vec<i64> = t.column(0).filter_map(|v| v.as_i64()).collect();
        assert_eq!(mids, vec![0, 1, 2]);
    }
}
