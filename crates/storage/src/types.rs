//! Attribute data types and domain kinds.
//!
//! The paper's *elasticity* dimension (§3.1) distinguishes categorical
//! domains (preferences are exact) from numeric domains (preferences may be
//! elastic). [`DomainKind`] carries that distinction through the catalog so
//! the preference model can validate elastic preferences.

use std::fmt;

/// The storage type of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 text.
    Text,
    /// Boolean.
    Bool,
}

impl DataType {
    /// Whether values of this type are numeric (ints or floats).
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }

    /// The default [`DomainKind`] for this type: numeric types get numeric
    /// domains, everything else is categorical.
    pub fn default_domain(self) -> DomainKind {
        if self.is_numeric() {
            DomainKind::Numeric
        } else {
            DomainKind::Categorical
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Bool => "BOOL",
        };
        f.write_str(s)
    }
}

/// Whether an attribute's domain supports elastic (approximately
/// satisfiable) preferences.
///
/// Per §3.1: "Given the mutual independence of categorical values,
/// preferences for these are considered exact […] preferences for numeric
/// values may be smoothly continuous over their domain […] and thus are
/// considered elastic."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DomainKind {
    /// Mutually independent values; preferences are satisfied exactly or
    /// not at all.
    Categorical,
    /// Smoothly continuous values; preferences may be elastic.
    Numeric,
}

impl fmt::Display for DomainKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DomainKind::Categorical => f.write_str("categorical"),
            DomainKind::Numeric => f.write_str("numeric"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_types() {
        assert!(DataType::Int.is_numeric());
        assert!(DataType::Float.is_numeric());
        assert!(!DataType::Text.is_numeric());
        assert!(!DataType::Bool.is_numeric());
    }

    #[test]
    fn default_domains_follow_type() {
        assert_eq!(DataType::Int.default_domain(), DomainKind::Numeric);
        assert_eq!(DataType::Text.default_domain(), DomainKind::Categorical);
    }

    #[test]
    fn display() {
        assert_eq!(DataType::Int.to_string(), "INT");
        assert_eq!(DomainKind::Numeric.to_string(), "numeric");
    }
}
