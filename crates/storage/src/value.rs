//! Typed runtime values.
//!
//! [`Value`] is the single value representation flowing through the storage
//! layer, the execution engine and the personalization layer. It supports a
//! *total* order (floats compare via [`f64::total_cmp`], `Null` sorts first)
//! so values can be used as sort and group-by keys, and a hash consistent
//! with equality so they can key hash joins and indexes.

use std::borrow::Cow;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::types::DataType;

/// A dynamically typed value stored in a table cell.
///
/// Strings are reference counted so that rows can be cloned cheaply while
/// query operators shuffle them around.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL. Sorts before every other value; equal only to itself for
    /// grouping purposes (three-valued logic lives in the executor, not
    /// here).
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float. NaN is permitted and ordered via `total_cmp`.
    Float(f64),
    /// UTF-8 string.
    Str(Arc<str>),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Creates a string value from anything string-like.
    pub fn str(s: impl Into<Arc<str>>) -> Self {
        Value::Str(s.into())
    }

    /// The [`DataType`] of this value, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Text),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// True iff this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value: ints widen to `f64`, everything else is
    /// `None`. Used by arithmetic, comparisons across `Int`/`Float`, and the
    /// elastic doi functions.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view; floats that are exactly integral convert, other values
    /// do not.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 && f.is_finite() => Some(*f as i64),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// SQL-style equality: NULL compared with anything is "unknown",
    /// reported here as `None`. `Int` and `Float` compare numerically.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.cross_cmp(other) == Ordering::Equal)
    }

    /// SQL-style ordering comparison with NULL → unknown and numeric
    /// cross-type comparison.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.cross_cmp(other))
    }

    /// Total comparison used for sorting and grouping: `Null` first, then
    /// numerics (ints and floats interleaved by numeric value), booleans,
    /// strings. Never panics, defined on every pair of values.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            _ => self.cross_cmp(other),
        }
    }

    /// Comparison between two non-null values; values of incomparable types
    /// order by a fixed type rank so the result is still total.
    fn cross_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.as_ref().cmp(b.as_ref()),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) | Value::Float(_) => 1,
            Value::Bool(_) => 2,
            Value::Str(_) => 3,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            // Ints and floats that compare equal must hash equally:
            // hash every numeric through its f64 bit pattern.
            Value::Int(i) => {
                1u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                1u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Bool(b) => {
                2u8.hash(state);
                b.hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::str(v)
    }
}

impl<'a> From<Cow<'a, str>> for Value {
    fn from(v: Cow<'a, str>) -> Self {
        Value::str(v.into_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn null_sorts_first() {
        assert_eq!(Value::Null.total_cmp(&Value::Int(-100)), Ordering::Less);
        assert_eq!(Value::Int(0).total_cmp(&Value::Null), Ordering::Greater);
        assert_eq!(Value::Null.total_cmp(&Value::Null), Ordering::Equal);
    }

    #[test]
    fn numeric_cross_type_compare() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.0)), Ordering::Equal);
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(Value::Float(3.0).total_cmp(&Value::Int(2)), Ordering::Greater);
    }

    #[test]
    fn equal_numerics_hash_equally() {
        assert_eq!(hash_of(&Value::Int(7)), hash_of(&Value::Float(7.0)));
    }

    #[test]
    fn sql_eq_null_is_unknown() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(2)), Some(false));
    }

    #[test]
    fn string_compare() {
        assert!(Value::str("abc") < Value::str("abd"));
        assert_eq!(Value::str("x"), Value::str("x"));
    }

    #[test]
    fn nan_is_ordered() {
        let nan = Value::Float(f64::NAN);
        // total_cmp puts NaN above +inf; the point is it does not panic and
        // is self-consistent.
        assert_eq!(nan.total_cmp(&nan), Ordering::Equal);
        assert_eq!(nan.total_cmp(&Value::Float(1.0)), Ordering::Greater);
    }

    #[test]
    fn as_i64_from_integral_float() {
        assert_eq!(Value::Float(4.0).as_i64(), Some(4));
        assert_eq!(Value::Float(4.5).as_i64(), None);
        assert_eq!(Value::Float(f64::INFINITY).as_i64(), None);
    }

    #[test]
    fn display_round_trip_readable() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::str("hi").to_string(), "hi");
    }

    #[test]
    fn data_types() {
        assert_eq!(Value::Int(1).data_type(), Some(DataType::Int));
        assert_eq!(Value::Null.data_type(), None);
        assert_eq!(Value::Bool(true).data_type(), Some(DataType::Bool));
    }

    #[test]
    fn incomparable_types_rank_consistently() {
        // bool < str in type rank
        assert_eq!(Value::Bool(true).total_cmp(&Value::str("a")), Ordering::Less);
        assert_eq!(Value::str("a").total_cmp(&Value::Bool(true)), Ordering::Greater);
        // numeric < bool
        assert_eq!(Value::Int(999).total_cmp(&Value::Bool(false)), Ordering::Less);
    }
}
