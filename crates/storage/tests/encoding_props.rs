//! Property tests for the compact binary encoding: every `Value` round
//! trips through encode → decode, and the encoding is byte-stable —
//! re-encoding the decoded value (even into a fresh dictionary) produces
//! the exact same bytes.

use proptest::prelude::*;
use qp_storage::encoding::{decode_value, encode_value, put_f64, put_i64, put_u64, Reader};
use qp_storage::{StringDict, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        any::<bool>().prop_map(Value::Bool),
        "[a-zA-Z0-9 '\\-]{0,24}".prop_map(Value::str),
    ]
}

/// Bit-level equality: `PartialEq` treats `Int(2) == Float(2.0)` and all
/// NaNs equal via `total_cmp`, which is too loose to pin a codec.
fn same_repr(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Null, Value::Null) => true,
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Str(x), Value::Str(y)) => x == y,
        _ => false,
    }
}

proptest! {
    #[test]
    fn varints_round_trip(v in any::<u64>()) {
        let mut buf = Vec::new();
        put_u64(&mut buf, v);
        prop_assert!(buf.len() <= 10);
        let mut r = Reader::new(&buf);
        prop_assert_eq!(r.take_u64().unwrap(), v);
        prop_assert!(r.is_done());
    }

    #[test]
    fn signed_varints_round_trip(v in any::<i64>()) {
        let mut buf = Vec::new();
        put_i64(&mut buf, v);
        let mut r = Reader::new(&buf);
        prop_assert_eq!(r.take_i64().unwrap(), v);
    }

    #[test]
    fn floats_round_trip_bit_exact(bits in any::<u64>()) {
        let v = f64::from_bits(bits);
        let mut buf = Vec::new();
        put_f64(&mut buf, v);
        let mut r = Reader::new(&buf);
        prop_assert_eq!(r.take_f64().unwrap().to_bits(), bits);
    }

    #[test]
    fn values_round_trip(vals in prop::collection::vec(arb_value(), 0..40)) {
        let mut dict = StringDict::new();
        let mut buf = Vec::new();
        for v in &vals {
            encode_value(&mut buf, v, &mut dict);
        }
        let mut r = Reader::new(&buf);
        for v in &vals {
            let back = decode_value(&mut r, &dict).unwrap();
            prop_assert!(same_repr(v, &back), "expected {:?}, decoded {:?}", v, back);
        }
        prop_assert!(r.is_done());
    }

    #[test]
    fn re_encode_is_byte_identical(vals in prop::collection::vec(arb_value(), 0..40)) {
        let mut dict1 = StringDict::new();
        let mut first = Vec::new();
        for v in &vals {
            encode_value(&mut first, v, &mut dict1);
        }
        let mut r = Reader::new(&first);
        let decoded: Vec<Value> =
            vals.iter().map(|_| decode_value(&mut r, &dict1).unwrap()).collect();
        // Fresh dictionary: ids are assigned in first-appearance order, so
        // the bytes must come out identical even without sharing dict1.
        let mut dict2 = StringDict::new();
        let mut second = Vec::new();
        for v in &decoded {
            encode_value(&mut second, v, &mut dict2);
        }
        prop_assert_eq!(first, second);
    }

    #[test]
    fn decoder_is_total_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        // Arbitrary bytes either decode or return a typed error — no panic.
        let dict = StringDict::new();
        let mut r = Reader::new(&bytes);
        while !r.is_done() {
            if decode_value(&mut r, &dict).is_err() {
                break;
            }
        }
    }
}
