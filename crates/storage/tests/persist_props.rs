//! Property tests for the segment-log frame layer: whatever damage the
//! disk inflicts on a log file — truncation at an arbitrary byte, a
//! flipped byte, garbage appended past the end — replay recovers
//! exactly the longest valid prefix of records and reports the loss.

use std::path::{Path, PathBuf};

use proptest::prelude::*;
use qp_storage::persist::{
    crc32, frame_into, replay_log, truncate_log, LogWriter, Tail, FRAME_HEADER,
};

/// A scratch file under the OS temp dir, deleted on drop.
struct ScratchLog {
    path: PathBuf,
}

impl ScratchLog {
    fn new(tag: &str) -> ScratchLog {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "qp_persist_props_{tag}_{}_{n}.qpl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        ScratchLog { path }
    }
}

impl Drop for ScratchLog {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Writes `payloads` as one frame each and returns the per-frame byte
/// offsets (frame i spans `offsets[i] .. offsets[i + 1]`).
fn write_log(path: &Path, payloads: &[Vec<u8>]) -> Vec<u64> {
    let mut writer = LogWriter::create(path.to_path_buf()).expect("create log");
    let mut offsets = vec![0u64];
    for p in payloads {
        writer.append(p).expect("append");
        offsets.push(offsets.last().unwrap() + (FRAME_HEADER + p.len()) as u64);
    }
    writer.flush(true).expect("flush");
    offsets
}

/// Replays counting records; every record is accepted.
fn replay_count(path: &Path) -> (u64, Tail, Vec<Vec<u8>>) {
    let mut seen = Vec::new();
    let summary = replay_log(path, |_lsn, payload| {
        seen.push(payload.to_vec());
        Ok(())
    })
    .expect("replay never hard-fails on frame damage");
    (summary.records, summary.tail, seen)
}

fn arb_payloads() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(any::<u8>(), 1..80), 1..12)
}

proptest! {
    /// An undamaged log replays every record with a clean tail, and the
    /// payloads come back byte-identical in order.
    #[test]
    fn intact_log_replays_fully(payloads in arb_payloads()) {
        let log = ScratchLog::new("intact");
        write_log(&log.path, &payloads);
        let (records, tail, seen) = replay_count(&log.path);
        prop_assert_eq!(records, payloads.len() as u64);
        prop_assert_eq!(tail, Tail::Clean);
        prop_assert_eq!(seen, payloads);
    }

    /// Truncating the file at any byte keeps exactly the frames that
    /// are wholly before the cut. A cut on a frame boundary is clean;
    /// anywhere else is a torn tail.
    #[test]
    fn truncation_keeps_longest_prefix(
        payloads in arb_payloads(),
        cut_frac in 0.0f64..1.0,
    ) {
        let log = ScratchLog::new("trunc");
        let offsets = write_log(&log.path, &payloads);
        let total = *offsets.last().unwrap();
        let cut = (total as f64 * cut_frac) as u64;
        truncate_log(&log.path, cut).expect("truncate");

        let intact = offsets.iter().skip(1).filter(|&&end| end <= cut).count() as u64;
        let (records, tail, seen) = replay_count(&log.path);
        prop_assert_eq!(records, intact);
        prop_assert_eq!(seen.len() as u64, intact);
        for (i, p) in seen.iter().enumerate() {
            prop_assert_eq!(p, &payloads[i]);
        }
        let on_boundary = offsets.contains(&cut);
        prop_assert_eq!(tail == Tail::Clean, on_boundary, "cut at {cut} of {total}");
        if let Tail::Torn { valid_len, dropped_bytes, .. } = tail {
            prop_assert_eq!(valid_len, offsets[intact as usize]);
            prop_assert_eq!(valid_len + dropped_bytes, cut);
        }
    }

    /// Flipping any byte keeps exactly the frames before the damaged
    /// one: the CRC refuses the damaged frame, and replay never trusts
    /// framing past the damage.
    #[test]
    fn bit_flip_stops_at_damaged_frame(
        payloads in arb_payloads(),
        pos_frac in 0.0f64..1.0,
        mask in 1u8..=255,
    ) {
        let log = ScratchLog::new("flip");
        let offsets = write_log(&log.path, &payloads);
        let total = *offsets.last().unwrap();
        let pos = ((total - 1) as f64 * pos_frac) as u64;
        let mut bytes = std::fs::read(&log.path).unwrap();
        bytes[pos as usize] ^= mask;
        std::fs::write(&log.path, &bytes).unwrap();

        // The damaged frame is the one whose span contains `pos`.
        let damaged = offsets.iter().skip(1).filter(|&&end| end <= pos).count() as u64;
        let (records, tail, seen) = replay_count(&log.path);
        prop_assert_eq!(records, damaged);
        for (i, p) in seen.iter().enumerate() {
            prop_assert_eq!(p, &payloads[i]);
        }
        match tail {
            Tail::Torn { valid_len, dropped_bytes, dropped_records, .. } => {
                prop_assert_eq!(valid_len, offsets[damaged as usize]);
                prop_assert_eq!(valid_len + dropped_bytes, total);
                prop_assert!(dropped_records >= 1);
            }
            Tail::Clean => prop_assert!(false, "a flipped byte must tear the tail"),
        }
    }

    /// Garbage appended past the last frame never invents records: all
    /// real frames replay, the garbage is reported dropped.
    #[test]
    fn trailing_garbage_is_dropped_not_parsed(
        payloads in arb_payloads(),
        garbage in prop::collection::vec(any::<u8>(), 1..64),
    ) {
        let log = ScratchLog::new("garbage");
        let offsets = write_log(&log.path, &payloads);
        let total = *offsets.last().unwrap();
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new().append(true).open(&log.path).unwrap();
            f.write_all(&garbage).unwrap();
        }
        let (records, tail, _) = replay_count(&log.path);
        // A random suffix could parse as a frame only by forging a CRC
        // (p = 2^-32); treat that as impossible.
        prop_assert_eq!(records, payloads.len() as u64);
        match tail {
            Tail::Torn { valid_len, dropped_bytes, .. } => {
                prop_assert_eq!(valid_len, total);
                prop_assert_eq!(dropped_bytes, garbage.len() as u64);
            }
            Tail::Clean => prop_assert!(false, "garbage suffix must be reported"),
        }
    }

    /// A caller that rejects a record tears the log at that record —
    /// apply-rejection and frame damage repair identically.
    #[test]
    fn apply_rejection_tears_like_damage(
        payloads in arb_payloads(),
        reject_frac in 0.0f64..1.0,
    ) {
        let log = ScratchLog::new("reject");
        write_log(&log.path, &payloads);
        let reject_at = ((payloads.len() - 1) as f64 * reject_frac) as u64;
        let mut i = 0u64;
        let summary = replay_log(&log.path, |_lsn, _payload| {
            let r = if i == reject_at { Err("poisoned".to_string()) } else { Ok(()) };
            i += 1;
            r
        })
        .expect("rejection is a torn tail, not a hard error");
        prop_assert_eq!(summary.records, reject_at);
        match summary.tail {
            Tail::Torn { dropped_records, reason, .. } => {
                prop_assert_eq!(dropped_records, payloads.len() as u64 - reject_at);
                prop_assert!(reason.contains("poisoned"), "reason: {reason}");
            }
            Tail::Clean => prop_assert!(false, "rejection must tear the tail"),
        }
    }
}

/// `crc32` pins the standard IEEE polynomial — a new implementation
/// that drifts would silently orphan every existing log file.
#[test]
fn crc_is_ieee() {
    assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    assert_eq!(crc32(b""), 0);
}

/// Frames built by `frame_into` replay through `replay_log` — the two
/// halves of the codec agree.
#[test]
fn frame_into_matches_replay() {
    let log = ScratchLog::new("frame_into");
    let mut buf = Vec::new();
    frame_into(&mut buf, b"alpha");
    frame_into(&mut buf, b"beta");
    std::fs::write(&log.path, &buf).unwrap();
    let (records, tail, seen) = replay_count(&log.path);
    assert_eq!(records, 2);
    assert_eq!(tail, Tail::Clean);
    assert_eq!(seen, vec![b"alpha".to_vec(), b"beta".to_vec()]);
}
