//! Property tests for the value model and histograms.

use proptest::prelude::*;
use qp_storage::histogram::CmpOp;
use qp_storage::{Histogram, Value};
use std::cmp::Ordering;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        // finite floats keep the numeric-equivalence property testable
        (-1.0e12..1.0e12f64).prop_map(Value::Float),
        any::<bool>().prop_map(Value::Bool),
        "[a-z]{0,8}".prop_map(Value::str),
    ]
}

fn hash_of(v: &Value) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

proptest! {
    #[test]
    fn total_cmp_is_antisymmetric(a in arb_value(), b in arb_value()) {
        let ab = a.total_cmp(&b);
        let ba = b.total_cmp(&a);
        prop_assert_eq!(ab, ba.reverse());
    }

    #[test]
    fn total_cmp_is_transitive(a in arb_value(), b in arb_value(), c in arb_value()) {
        let mut vals = [a, b, c];
        vals.sort_by(|x, y| x.total_cmp(y));
        // sorted order must be internally consistent
        prop_assert_ne!(vals[0].total_cmp(&vals[1]), Ordering::Greater);
        prop_assert_ne!(vals[1].total_cmp(&vals[2]), Ordering::Greater);
        prop_assert_ne!(vals[0].total_cmp(&vals[2]), Ordering::Greater);
    }

    #[test]
    fn eq_implies_equal_hash(a in arb_value(), b in arb_value()) {
        if a == b {
            prop_assert_eq!(hash_of(&a), hash_of(&b));
        }
    }

    #[test]
    fn sql_cmp_null_propagates(a in arb_value()) {
        prop_assert_eq!(Value::Null.sql_cmp(&a), None);
        prop_assert_eq!(a.sql_cmp(&Value::Null), None);
    }

    #[test]
    fn int_float_equivalence(i in -1_000_000i64..1_000_000) {
        let a = Value::Int(i);
        let b = Value::Float(i as f64);
        prop_assert_eq!(a.total_cmp(&b), Ordering::Equal);
        prop_assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn histogram_selectivities_bounded(
        values in prop::collection::vec(-500i64..500, 1..400),
        probe in -600i64..600,
    ) {
        let vals: Vec<Value> = values.iter().copied().map(Value::Int).collect();
        let h = Histogram::build(vals.iter());
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            let s = h.selectivity(op, &Value::Int(probe));
            prop_assert!((0.0..=1.0).contains(&s), "{op:?} -> {s}");
        }
        // Lt + Ge partitions the non-null values
        let lt = h.selectivity(CmpOp::Lt, &Value::Int(probe));
        let ge = h.selectivity(CmpOp::Ge, &Value::Int(probe));
        prop_assert!((lt + ge - 1.0).abs() < 0.02, "lt={lt} ge={ge}");
    }

    #[test]
    fn histogram_eq_exact_on_small_domains(
        values in prop::collection::vec(0i64..16, 1..300),
        probe in 0i64..16,
    ) {
        let vals: Vec<Value> = values.iter().copied().map(Value::Int).collect();
        let h = Histogram::build(vals.iter());
        let exact = values.iter().filter(|v| **v == probe).count() as f64 / values.len() as f64;
        let est = h.selectivity(CmpOp::Eq, &Value::Int(probe));
        prop_assert!((est - exact).abs() < 1e-9, "est={est} exact={exact}");
    }

    #[test]
    fn histogram_between_monotone(
        values in prop::collection::vec(-100i64..100, 1..200),
        lo in -100i64..0,
        width1 in 0i64..50,
        width2 in 50i64..150,
    ) {
        let vals: Vec<Value> = values.iter().copied().map(Value::Int).collect();
        let h = Histogram::build(vals.iter());
        let narrow = h.selectivity_between(&Value::Int(lo), &Value::Int(lo + width1));
        let wide = h.selectivity_between(&Value::Int(lo), &Value::Int(lo + width2));
        prop_assert!(wide >= narrow - 0.05, "narrow={narrow} wide={wide}");
    }
}
