//! The paper's future-work section, implemented: mining a profile from
//! feedback, authoring preferences against a higher-level concept model,
//! adapting them to the query context, and asking for "best" answers via
//! qualitative descriptors.
//!
//! Run with: `cargo run --release --example adaptive_profiles`

use personalized_queries::core::{
    mine_profile, AnswerAlgorithm, ConceptSchema, Context, ContextRule, ContextualProfile,
    Feedback, MinerConfig, PersonalizeRequest, Personalizer, Profile, QualityDescriptor,
    SelectionCriterion,
};
use personalized_queries::core::context::suggest_options;
use personalized_queries::datagen::{self, ImdbScale};
use personalized_queries::storage::RowId;

fn main() {
    let db = datagen::generate(ImdbScale { movies: 1_500, ..ImdbScale::small() });

    // --- 1. semi-automatic profile construction (§7) -------------------
    // Synthesize a viewing history: the user watched and liked W. Allen
    // comedies, bailed on everything long and everything horror.
    let engine = personalized_queries::exec::Engine::new();
    let liked = engine
        .execute_sql(
            &db,
            "select M.rowid from MOVIE M, GENRE G, DIRECTED D \
             where M.mid = G.mid and M.mid = D.mid and G.genre = 'comedy' and D.did = 0",
        )
        .expect("history query runs");
    let disliked = engine
        .execute_sql(
            &db,
            "select M.rowid from MOVIE M, GENRE G where M.mid = G.mid and G.genre = 'horror'",
        )
        .expect("history query runs");
    let mut feedback: Vec<Feedback> = Vec::new();
    for r in liked.rows.iter().take(60) {
        feedback.push(Feedback { row: RowId(r[0].as_i64().unwrap() as u64), liked: true });
    }
    for r in disliked.rows.iter().take(60) {
        feedback.push(Feedback { row: RowId(r[0].as_i64().unwrap() as u64), liked: false });
    }
    let mined = mine_profile(&db, "MOVIE", &feedback, &MinerConfig::default())
        .expect("mining succeeds");
    println!("mined from {} feedback events:\n{}", feedback.len(), mined.to_dsl(db.catalog()));

    // --- 2. preferences over a higher-level model (§7) ------------------
    let mut concepts = ConceptSchema::new();
    concepts.add_concept(db.catalog(), "Film", "MOVIE").unwrap();
    concepts.add_direct_attr(db.catalog(), "Film", "released", ("MOVIE", "year")).unwrap();
    concepts
        .add_path_attr(
            db.catalog(),
            "Film",
            "director",
            &[(("MOVIE", "mid"), ("DIRECTED", "mid")), (("DIRECTED", "did"), ("DIRECTOR", "did"))],
            ("DIRECTOR", "name"),
        )
        .unwrap();
    concepts
        .add_path_attr(
            db.catalog(),
            "Film",
            "category",
            &[(("MOVIE", "mid"), ("GENRE", "mid"))],
            ("GENRE", "genre"),
        )
        .unwrap();
    let authored = concepts
        .parse_profile(
            db.catalog(),
            "# written against the concept model, not the schema\n\
             doi(Film.director = 'W. Allen') = (0.8, 0)\n\
             doi(Film.category = 'musical') = (-0.9, 0.7)\n\
             doi(Film.released < 1980) = (-0.7, 0)\n",
        )
        .expect("concept profile parses");
    println!(
        "concept-level profile expanded to {} schema preferences ({} joins materialized)",
        authored.selections().count(),
        authored.joins().count()
    );

    // --- 3. context-aware adaptation (§1, §7) ---------------------------
    let mut contextual = ContextualProfile::new(authored);
    let mut evening_overlay = Profile::new();
    evening_overlay
        .add_selection(
            db.catalog(),
            "GENRE",
            "genre",
            personalized_queries::core::CompareOp::Eq,
            "comedy",
            personalized_queries::core::Doi::presence(0.6).unwrap(),
        )
        .unwrap();
    contextual
        .add_rule(ContextRule {
            facet: "time".into(),
            value: "evening".into(),
            overlay: evening_overlay,
            base_weight: 1.0,
        })
        .unwrap();

    for ctx in [
        Context::new().with("time", "morning").with("device", "desktop"),
        Context::new().with("time", "evening").with("device", "mobile"),
    ] {
        let profile = contextual.resolve(&ctx);
        let options = suggest_options(&ctx);
        let mut p = Personalizer::new(&db);
        let report = p
            .run(PersonalizeRequest::sql(&profile, "select title from MOVIE").options(options))
            .expect("personalizes")
            .report;
        println!(
            "context {:?}/{:?}: K = {:?}, {} active preferences, {} tuples",
            ctx.get("time").unwrap_or("-"),
            ctx.get("device").unwrap_or("-"),
            options.criterion.k_limit(),
            profile.selections().count(),
            report.answer.len()
        );
    }

    // --- 4. qualitative descriptors (§2) --------------------------------
    let profile = contextual.resolve(&Context::new().with("time", "evening"));
    let mut p = Personalizer::new(&db);
    let report = p
        .run(
            PersonalizeRequest::sql(&profile, "select title from MOVIE")
                .criterion(SelectionCriterion::TopK(8))
                .l(1)
                .algorithm(AnswerAlgorithm::Ppa),
        )
        .expect("personalizes")
        .report;
    println!("\nanswer quality bands:");
    for d in QualityDescriptor::ALL {
        println!("  {d:<5} (doi >= {:.1}): {} tuples", d.min_doi(), d.filter(&report.answer).len());
    }
}
