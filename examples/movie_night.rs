//! Two users, one query, two answers — the paper's motivating scenario.
//!
//! "Al is a fan of director W. Allen, while Julie is not. Most systems
//! would return to both users the same, exhaustive list of comedies"
//! (§1). Here both ask for comedies playing in theatres; Al and Julie get
//! differently ranked (and differently sized) answers driven by their
//! profiles. Also contrasts SPA and PPA on the same request.
//!
//! Run with: `cargo run --release --example movie_night`

use personalized_queries::core::{
    AnswerAlgorithm, PersonalizationOptions, PersonalizeRequest, Personalizer, Profile,
    SelectionCriterion,
};
use personalized_queries::datagen::{self, ImdbScale};

const QUERY: &str = "select M.title from MOVIE M, GENRE G \
                     where M.mid = G.mid and G.genre = 'comedy'";

fn main() {
    let db = datagen::generate(ImdbScale { movies: 2_000, ..ImdbScale::small() });

    // Al: the paper's profile — loves W. Allen, hates musicals, prefers
    // pre-1980 films *not* to appear.
    let al = datagen::als_profile(&db).expect("profile parses");

    // Julie: likes recent long dramas and riverside theatres; indifferent
    // to W. Allen.
    let julie = Profile::parse(
        db.catalog(),
        "doi(MOVIE.year >= 1995) = (0.8, 0)\n\
         doi(MOVIE.duration = around(140, 30)) = (e(0.6), 0)\n\
         doi(GENRE.genre = 'drama') = (0.7, 0)\n\
         doi(THEATRE.region = 'riverside') = (0.6, 0)\n\
         doi(MOVIE.mid = GENRE.mid) = (0.9)\n\
         doi(MOVIE.mid = PLAY.mid) = (0.8)\n\
         doi(PLAY.tid = THEATRE.tid) = (1)\n",
    )
    .expect("Julie's profile parses");

    let options = PersonalizationOptions {
        criterion: SelectionCriterion::TopK(5),
        l: 1,
        algorithm: AnswerAlgorithm::Ppa,
        ..Default::default()
    };

    for (name, profile) in [("Al", &al), ("Julie", &julie)] {
        let mut p = Personalizer::new(&db);
        let report = p
            .run(PersonalizeRequest::sql(profile, QUERY).options(options))
            .expect("personalizes")
            .report;
        println!("=== {name} ===");
        println!("preferences related to the query:");
        for sp in &report.selected {
            println!("  c={:.3}  {}", sp.criticality, sp.describe(profile, db.catalog()));
        }
        println!("top 5 comedies for {name}:");
        for t in report.answer.tuples.iter().take(5) {
            println!("  doi={:.3}  {}", t.doi, t.row[0]);
        }
        println!("({} tuples total)\n", report.answer.len());
    }

    // SPA vs PPA on Al's request: same answer set, different mechanics.
    println!("=== SPA vs PPA (Al, L = 2) ===");
    for algorithm in [AnswerAlgorithm::Spa, AnswerAlgorithm::Ppa] {
        let mut p = Personalizer::new(&db);
        let report = p
            .run(
                PersonalizeRequest::sql(&al, QUERY)
                    .criterion(SelectionCriterion::TopK(5))
                    .l(2)
                    .algorithm(algorithm),
            )
            .expect("personalizes")
            .report;
        match algorithm {
            AnswerAlgorithm::Spa => println!(
                "SPA: {} tuples in {:?} (single SQL statement, no explanations, \
                 nothing returned until the whole statement finishes)",
                report.answer.len(),
                report.execution_time
            ),
            AnswerAlgorithm::Ppa => println!(
                "PPA: {} tuples in {:?}, first tuple after {:?} (progressive, self-explanatory)",
                report.answer.len(),
                report.execution_time,
                report.first_response.unwrap_or_default()
            ),
        }
    }
}
