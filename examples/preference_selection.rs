//! Inside preference selection (§4): criticality, fake criticality, and
//! the three selection algorithms on a non-trivial profile.
//!
//! Run with: `cargo run --release --example preference_selection`

use personalized_queries::core::select::{doi_based, fakecrit, sps, QueryContext};
use personalized_queries::core::{
    MixedKind, PersonalizationGraph, Preference, Ranking, RankingKind, SelectionCriterion,
};
use personalized_queries::datagen::{self, ImdbScale, ProfileSpec};
use personalized_queries::sql::parse_query;

fn main() {
    let db = datagen::generate(ImdbScale { movies: 1_000, ..ImdbScale::small() });
    let profile = datagen::random_profile(&db, &ProfileSpec::mixed(14, 21));

    // Criticalities of the stored atomic preferences (formula 7).
    println!("atomic preferences by criticality (c = d0+ + |d0-|):");
    let mut prefs: Vec<_> = profile.iter().collect();
    prefs.sort_by(|a, b| b.1.criticality().partial_cmp(&a.1.criticality()).unwrap());
    for (id, pref) in prefs.iter().take(8) {
        let what = match pref {
            Preference::Selection(s) => {
                format!("selection on {}", db.catalog().attr_name(s.attr))
            }
            Preference::Join(j) => format!(
                "join {} -> {}",
                db.catalog().attr_name(j.from),
                db.catalog().attr_name(j.to)
            ),
        };
        println!("  {:?}  c={:.3}  {}", id, pref.criticality(), what);
    }
    println!();

    let graph = PersonalizationGraph::build(&profile);
    let query = parse_query("select title from MOVIE").unwrap();
    let qc = QueryContext::from_query(db.catalog(), &query).unwrap();

    // FakeCrit: the paper's efficient traversal (Figure 5).
    println!("FakeCrit top-8 implicit preferences related to `select title from MOVIE`:");
    let selected = fakecrit::fakecrit(&graph, &qc, SelectionCriterion::TopK(8)).unwrap();
    for sp in &selected {
        println!("  c={:.3}  {}", sp.criticality, sp.describe(&profile, db.catalog()));
    }
    println!();

    // SPS agrees but works harder (it must expand joins before it can
    // prove a selection safe to output).
    let simple = sps::sps(&graph, &qc, SelectionCriterion::TopK(8)).unwrap();
    println!(
        "SPS returns the same top-8: {}",
        if simple == selected { "yes" } else { "NO (bug!)" }
    );

    // Threshold criterion: only preferences above a criticality cut-off.
    let above = fakecrit::fakecrit(&graph, &qc, SelectionCriterion::Threshold(0.5)).unwrap();
    println!("preferences with criticality > 0.5: {}", above.len());

    // §4.2: select enough preferences that any returned tuple is
    // guaranteed a minimum doi, accounting for unseen negatives (dworst).
    // With deep join paths in the queue, dworst stays pessimistic and the
    // selection degenerates toward exhaustive enumeration — the paper
    // notes this "may be acceptable". A flat profile shows the intended
    // gradation:
    println!("\ndoi-driven selection (desired result doi sweep, atomic profile):");
    let atomic = personalized_queries::core::Profile::parse(
        db.catalog(),
        "doi(MOVIE.year >= 1990) = (0.9, 0)\n\
         doi(MOVIE.year < 1950) = (-0.4, 0)\n\
         doi(MOVIE.duration >= 100) = (0.6, 0)\n\
         doi(MOVIE.duration >= 180) = (-0.2, 0)\n\
         doi(MOVIE.year >= 2000) = (0.5, 0)\n",
    )
    .unwrap();
    let atomic_graph = PersonalizationGraph::build(&atomic);
    let ranking = Ranking::new(RankingKind::Inflationary, MixedKind::Sum);
    for d_r in [0.1, 0.5, 0.8, 0.95] {
        let picked = doi_based::doi_based(&atomic_graph, &qc, d_r, &ranking, None).unwrap();
        println!("  dR = {d_r:<4} -> {} preferences selected", picked.len());
    }

    // And on the joined profile, where the paper predicts near-exhaustive
    // enumeration:
    let picked = doi_based::doi_based(&graph, &qc, 0.5, &ranking, None).unwrap();
    println!(
        "joined profile at dR = 0.5: {} of {} selection preferences (deep joins keep dworst high)",
        picked.len(),
        profile.selections().count()
    );
}
