//! Quickstart: personalize a query with the paper's running example.
//!
//! Builds a synthetic movies database, loads Al's profile (Figure 2 of
//! the paper), and personalizes `select title from MOVIE` — Al gets
//! W. Allen films and non-musicals first, with every tuple explaining
//! which preferences it satisfied.
//!
//! Run with: `cargo run --release --example quickstart`

use personalized_queries::core::{
    AnswerAlgorithm, PersonalizationOptions, PersonalizeRequest, Personalizer, SelectionCriterion,
};
use personalized_queries::datagen::{self, ImdbScale};

fn main() {
    // 1. A database shaped like the paper's IMDB setup (§3, §6).
    let db = datagen::generate(ImdbScale { movies: 2_000, ..ImdbScale::small() });
    println!("database: {} rows across {} relations\n", db.total_rows(), db.catalog().relations().len());

    // 2. Al's profile, in the paper's own notation.
    let profile = datagen::als_profile(&db).expect("Figure 2 profile parses");
    println!("Al's profile:\n{}", profile.to_dsl(db.catalog()));

    // 3. Personalize. K = top 6 preferences, L = 1 must hold per tuple.
    let options = PersonalizationOptions {
        criterion: SelectionCriterion::TopK(6),
        l: 1,
        algorithm: AnswerAlgorithm::Ppa,
        ..Default::default()
    };
    let mut personalizer = Personalizer::new(&db);
    let outcome = personalizer
        .run(PersonalizeRequest::sql(&profile, "select title from MOVIE").options(options))
        .expect("personalization succeeds");
    println!(
        "profile #{} v{}: {} of {} preferences selected\n",
        outcome.profile.id, outcome.profile.version, outcome.profile.selected,
        outcome.profile.preferences,
    );
    let report = outcome.report;

    println!("selected preferences (most critical first):");
    for (i, sp) in report.selected.iter().enumerate() {
        println!(
            "  [{i}] c={:.3}  {}",
            sp.criticality,
            sp.describe(&profile, db.catalog())
        );
    }

    println!(
        "\npersonalized answer: {} tuples (selection {:?}, execution {:?}, first tuple after {:?})",
        report.answer.len(),
        report.selection_time,
        report.execution_time,
        report.first_response.unwrap_or_default(),
    );
    println!("top 5, each tuple explains itself (§5: answers are self-explanatory):");
    for t in report.answer.tuples.iter().take(5) {
        println!("  {:<28} {}", t.row[0].to_string(), personalized_queries::core::explain_tuple(
            t,
            &report.selected,
            &profile,
            db.catalog()
        ));
    }

    // 4. Contrast with the un-personalized answer.
    let plain = personalizer
        .engine()
        .execute_sql(&db, "select title from MOVIE")
        .expect("plain query runs");
    println!(
        "\nwithout personalization the same query returns {} undifferentiated tuples",
        plain.len()
    );
}
