//! The three ranking philosophies side by side (§3.3, §6.3).
//!
//! The same personalized answer is ranked with the inflationary, dominant,
//! and reserved functions; the example prints how each philosophy scores
//! the same degree combinations, and how simulated users with different
//! internal philosophies (the Figure 15–17 setup) track each function.
//!
//! Run with: `cargo run --release --example ranking_philosophies`

use personalized_queries::core::{
    AnswerAlgorithm, MixedKind, PersonalizationOptions, PersonalizeRequest, Personalizer, Ranking,
    RankingKind, SelectionCriterion,
};
use personalized_queries::datagen::{self, users, ImdbScale};
use personalized_queries::sql::parse_query;

fn main() {
    // Pure function behaviour on hand-picked degree sets.
    println!("degree combinations (d⁺ sets) under the three philosophies:");
    println!("{:<28} {:>12} {:>10} {:>10}", "degrees", "inflationary", "dominant", "reserved");
    for degrees in [vec![0.9], vec![0.5, 0.5], vec![0.9, 0.1], vec![0.3, 0.3, 0.3, 0.3]] {
        print!("{:<28}", format!("{degrees:?}"));
        for kind in RankingKind::ALL {
            print!(" {:>10.4} ", kind.positive(&degrees));
        }
        println!();
    }
    println!();

    // Rank one personalized answer three ways.
    let db = datagen::generate(ImdbScale { movies: 1_500, ..ImdbScale::small() });
    let profile = datagen::als_profile(&db).expect("profile parses");
    println!("top-3 of Al's personalized answer under each philosophy:");
    for kind in RankingKind::ALL {
        let options = PersonalizationOptions {
            criterion: SelectionCriterion::TopK(6),
            l: 1,
            ranking: Ranking::new(kind, MixedKind::CountWeighted),
            algorithm: AnswerAlgorithm::Ppa,
            ..Default::default()
        };
        let mut p = Personalizer::new(&db);
        let report = p
            .run(PersonalizeRequest::sql(&profile, "select title from MOVIE").options(options))
            .expect("personalizes")
            .report;
        print!("{kind:?}: ");
        for t in report.answer.tuples.iter().take(3) {
            print!("{} ({:.3})  ", t.row[0], t.doi);
        }
        println!();
    }
    println!();

    // The §6.3 experiment in miniature: a simulated user with a known
    // philosophy rates tuples; each candidate ranking function is scored
    // by mean absolute error against the (normalized) ratings.
    println!("recovering a user's philosophy from their ratings (Figures 15–17):");
    let subjects = users::simulate_users(&db, 3, 0, 7);
    let query = parse_query("select title from MOVIE").unwrap();
    for user in &subjects {
        let eval = user.evaluate_query(&db, &query).expect("evaluator builds");
        let sample: Vec<u64> = eval.all_ids.iter().copied().take(200).collect();
        let mut best: Option<(RankingKind, f64)> = None;
        for kind in RankingKind::ALL {
            // predicted interest under this philosophy vs the user's
            // actual (noisy) ratings
            let user_with_kind =
                users::SimulatedUser { philosophy: kind, ..user.clone() };
            let eval_k = user_with_kind.evaluate_query(&db, &query).expect("evaluator");
            let mae: f64 = sample
                .iter()
                .map(|&t| {
                    let predicted = user_with_kind.true_interest(&eval_k, t);
                    let actual = user.rate_tuple(&eval, t, 0);
                    (predicted - actual).abs()
                })
                .sum::<f64>()
                / sample.len() as f64;
            if best.is_none_or(|(_, b)| mae < b) {
                best = Some((kind, mae));
            }
        }
        let (guess, mae) = best.unwrap();
        println!(
            "  {} (true philosophy {:?}): best-fitting function {:?} (MAE {:.3}) — {}",
            user.name,
            user.philosophy,
            guess,
            mae,
            if guess == user.philosophy { "recovered ✓" } else { "missed" }
        );
    }
}
