//! Personalization over a different domain — the framework is not tied to
//! movies: "our approach is applicable to any graph model representing
//! information at the level of entities and relationships" (§3).
//!
//! A restaurant guide: RESTAURANT —< SERVES (cuisine) and —< LOCATED
//! (district), with prices and ratings. Two diners with different
//! profiles ask the same question and get different tables.
//!
//! Run with: `cargo run --release --example restaurant_guide`

use personalized_queries::core::{
    AnswerAlgorithm, PersonalizationOptions, PersonalizeRequest, Personalizer, Profile,
    SelectionCriterion,
};
use personalized_queries::storage::{Attribute, DataType, Database, DomainKind, Value};

const CUISINES: &[&str] =
    &["italian", "thai", "mexican", "japanese", "greek", "indian", "french", "ethiopian"];
const DISTRICTS: &[&str] = &["old-town", "harbour", "market", "uptown"];

fn build_guide() -> Database {
    let mut db = Database::new();
    db.create_relation(
        "RESTAURANT",
        vec![
            Attribute::new("rid", DataType::Int),
            Attribute::new("name", DataType::Text),
            Attribute::new("price", DataType::Int), // average plate, in euros
            Attribute::new("rating", DataType::Float),
            // noise level is a numeric code but preferences over it are
            // exact — demonstrate the domain-kind override
            Attribute::new("noise", DataType::Int).with_domain(DomainKind::Categorical),
        ],
        &["rid"],
    )
    .unwrap();
    db.create_relation(
        "SERVES",
        vec![Attribute::new("rid", DataType::Int), Attribute::new("cuisine", DataType::Text)],
        &["rid", "cuisine"],
    )
    .unwrap();
    db.create_relation(
        "LOCATED",
        vec![Attribute::new("rid", DataType::Int), Attribute::new("district", DataType::Text)],
        &["rid"],
    )
    .unwrap();
    db.catalog_mut().add_join_edge_by_name("RESTAURANT", "rid", "SERVES", "rid").unwrap();
    db.catalog_mut().add_join_edge_by_name("RESTAURANT", "rid", "LOCATED", "rid").unwrap();

    // deterministic pseudo-random data, no RNG needed
    for rid in 0..400i64 {
        let price = 8 + (rid * 7) % 40;
        let rating = 2.5 + ((rid * 13) % 25) as f64 / 10.0;
        let noise = (rid % 3) + 1;
        db.insert_by_name(
            "RESTAURANT",
            vec![
                Value::Int(rid),
                Value::str(format!("Trattoria {rid:03}")),
                Value::Int(price),
                Value::Float(rating),
                Value::Int(noise),
            ],
        )
        .unwrap();
        db.insert_by_name(
            "SERVES",
            vec![Value::Int(rid), Value::str(CUISINES[(rid % 8) as usize])],
        )
        .unwrap();
        if rid % 5 == 0 {
            db.insert_by_name(
                "SERVES",
                vec![Value::Int(rid), Value::str(CUISINES[((rid + 3) % 8) as usize])],
            )
            .unwrap();
        }
        db.insert_by_name(
            "LOCATED",
            vec![Value::Int(rid), Value::str(DISTRICTS[(rid % 4) as usize])],
        )
        .unwrap();
    }
    db
}

fn main() {
    let db = build_guide();
    println!("restaurant guide: {} rows\n", db.total_rows());

    // Nina: loves thai, wants quiet places, plates around 15 euros.
    let nina = Profile::parse(
        db.catalog(),
        "doi(SERVES.cuisine = 'thai') = (0.9, 0)\n\
         doi(SERVES.cuisine = 'french') = (0.4, 0)\n\
         doi(RESTAURANT.noise = 3) = (-0.8, 0.5)\n\
         doi(RESTAURANT.price = around(15, 8)) = (e(0.7), e(-0.3))\n\
         doi(RESTAURANT.rid = SERVES.rid) = (1)\n\
         doi(RESTAURANT.rid = LOCATED.rid) = (0.8)\n",
    )
    .expect("Nina's profile parses");

    // Marco: italian in the old town, price no object, hates low ratings.
    let marco = Profile::parse(
        db.catalog(),
        "doi(SERVES.cuisine = 'italian') = (0.8, 0)\n\
         doi(LOCATED.district = 'old-town') = (0.7, -0.4)\n\
         doi(RESTAURANT.rating < 3.5) = (-0.9, 0)\n\
         doi(RESTAURANT.rid = SERVES.rid) = (1)\n\
         doi(RESTAURANT.rid = LOCATED.rid) = (1)\n",
    )
    .expect("Marco's profile parses");

    let options = PersonalizationOptions {
        criterion: SelectionCriterion::TopK(5),
        l: 1,
        algorithm: AnswerAlgorithm::Ppa,
        ..Default::default()
    };
    const QUERY: &str = "select name, price, rating from RESTAURANT";

    for (who, profile) in [("Nina", &nina), ("Marco", &marco)] {
        let mut p = Personalizer::new(&db);
        let report = p
            .run(PersonalizeRequest::sql(profile, QUERY).options(options))
            .expect("personalizes")
            .report;
        println!("=== {who} ===");
        for sp in &report.selected {
            println!("  c={:.3}  {}", sp.criticality, sp.describe(profile, db.catalog()));
        }
        println!("top tables:");
        for t in report.answer.tuples.iter().take(5) {
            println!(
                "  {}",
                personalized_queries::core::explain_tuple(
                    t,
                    &report.selected,
                    profile,
                    db.catalog()
                )
            );
            println!(
                "      {} — {}€, rating {}",
                t.row[0], t.row[1], t.row[2]
            );
        }
        println!("({} qualifying restaurants)\n", report.answer.len());
    }
}
