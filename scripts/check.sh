#!/usr/bin/env bash
# Full verification gate. Run from the repo root before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (workspace)"
cargo test -q --workspace

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Metric-name drift: every metric name registered by a literal string in
# first-party sources must appear (backticked) in OBSERVABILITY.md, so
# the doc can't silently fall behind the code. crates/obs is excluded —
# its tests register throwaway names to exercise the registry itself.
# Names built at runtime (e.g. per-operation server counters) are out of
# this check's reach and rely on review.
echo "==> OBSERVABILITY.md metric-name check"
metric_srcs=$(ls -d crates/*/src | grep -v '^crates/obs/')
drift=0
while IFS= read -r name; do
  if ! grep -qF "\`$name\`" OBSERVABILITY.md; then
    echo "ERROR: metric '$name' is emitted in code but undocumented in OBSERVABILITY.md"
    drift=1
  fi
done < <(grep -rhoE '\.(counter|gauge|histogram)\("[^"]+"\)' $metric_srcs --include='*.rs' \
           | sed -E 's/.*\("([^"]+)"\)/\1/' | sort -u)
[ "$drift" -eq 0 ] || exit 1
echo "all emitted metric names are documented"

echo "==> cargo test (failpoints feature)"
cargo test -q -p qp-exec -p qp-core --features failpoints

# The serving configuration sweep: everything must pass at every pool
# width — 1 is the identical serial code path, 2 is the minimal stealing
# pair, 4 the default serving width, 8 oversubscribes this container so
# workers contend and steal constantly — and again with both caches
# bypassed. Parallelism and caching are transparent optimizations, never
# behavioural switches.
for par in 1 2 4 8; do
  echo "==> cargo test (QP_PARALLELISM=$par)"
  QP_PARALLELISM=$par cargo test -q --workspace
done

echo "==> cargo test (caches disabled)"
QP_DISABLE_PLAN_CACHE=1 QP_DISABLE_PREF_CACHE=1 cargo test -q --workspace

# Row-engine oracle leg: the row-at-a-time interpreter is the parity
# oracle for the vectorized batch engine; the whole suite must pass with
# it forced on, or the oracle itself has drifted.
echo "==> cargo test (QP_ROW_ENGINE=1)"
QP_ROW_ENGINE=1 cargo test -q --workspace

# Vectorization regression tripwire: re-run the vectorized bench fresh
# and compare each workload's row/batch speedup against the committed
# BENCH_vectorized.json snapshot. A fresh speedup below 80% of the
# committed one is flagged loudly. Advisory only (shared machines are
# noisy): the build refreshes the snapshot via `repro --bench-vectorized`
# deliberately, not through this gate.
if [ -f BENCH_vectorized.json ]; then
  echo "==> vectorized bench regression check (fresh run vs committed)"
  repro_bin="$PWD/target/release/repro"
  bench_tmp="$(mktemp -d)"
  (cd "$bench_tmp" && "$repro_bin" --bench-vectorized --runs 7 >/dev/null)
  awk -F'"speedup": ' '
    FNR == 1 { f++ }
    /"speedup":/ { split($2, a, /[,}]/); n[f]++; v[f, n[f]] = a[1] + 0 }
    END {
      bad = 0
      for (i = 1; i <= n[2]; i++) if (v[2, i] < 0.8 * v[1, i]) bad = 1
      if (bad) print "WARNING: fresh vectorized run regresses the committed BENCH_vectorized.json by >20%"
      else print "fresh vectorized speedups within 20% of the committed snapshot"
    }' BENCH_vectorized.json "$bench_tmp/BENCH_vectorized.json"
  rm -rf "$bench_tmp"
fi

# Chaos leg: the seeded soak harness drives a multi-thread serving fleet
# through the ChaosPlan failpoint schedule with the pool fanned out. The
# seeds are fixed inside the test, so failures replay exactly.
echo "==> cargo test (chaos soak, failpoints + QP_PARALLELISM=4)"
QP_PARALLELISM=4 cargo test -q -p qp-core --features failpoints --test chaos_soak

# Wire-serving leg: build the server and client crates, run the
# server integration suite (failpoints arm the panic-isolation and
# network-chaos soak tests; failpoint registries are process-global, so
# this binary must run single-threaded), then smoke the load generator
# end to end at a tiny scale — an in-process qp-server, 30 users
# registering over the wire, steady + chaos legs.
echo "==> cargo build (qp-server, qp-client)"
cargo build --release -p qp-server -p qp-client
echo "==> cargo test (server integration, failpoints)"
cargo test -q --features failpoints --test server_integration -- --test-threads=1
echo "==> bench-serving smoke (small scale)"
cargo build --release -p qp-bench --features failpoints
repro_fp_bin="$PWD/target/release/repro"
serving_tmp="$(mktemp -d)"
(cd "$serving_tmp" && "$repro_fp_bin" --bench-serving --scale small --runs 1 --users 30 >/dev/null)
rm -rf "$serving_tmp"

# Profile-store leg: the store-backed serving tests (cache identity,
# torn-read safety, codec round-trip properties) plus a small-scale
# smoke of the million-profile bench — 20k users exercises the full
# register → lookup → cold/warm selection pipeline in seconds.
echo "==> cargo test (profile store)"
cargo test -q --test profile_store --test serving
echo "==> bench-profiles smoke (20k users)"
profiles_tmp="$(mktemp -d)"
(cd "$profiles_tmp" && "$repro_fp_bin" --bench-profiles --scale small --users 20000 >/dev/null)
rm -rf "$profiles_tmp"

# Durability leg: frame-layer corruption properties (torn/bit-flipped/
# garbage tails recover the longest valid prefix), then the end-to-end
# recovery suite — reopen identity by digest, checkpoint + snapshot
# replay, torn-tail repair, decode-LRU bounds, server restart over the
# wire. The failpoints run arms the disk-fault sites (read-only
# degradation, refused recovery on read faults, the kill-during-flush
# chaos soak); failpoint registries are process-global, so it must run
# single-threaded. The fsync=always pass proves the synchronous
# durability policy changes loss bounds, never behaviour.
echo "==> cargo test (persistence frame properties)"
cargo test -q -p qp-storage --test persist_props
echo "==> cargo test (crash recovery)"
cargo test -q --test persist_recovery
echo "==> cargo test (disk-fault chaos, failpoints)"
cargo test -q --features failpoints --test persist_recovery -- --test-threads=1
echo "==> cargo test (QP_PERSIST_FSYNC=always, crash recovery)"
QP_PERSIST_FSYNC=always cargo test -q --test persist_recovery
echo "==> bench-recovery smoke (20k users)"
recovery_tmp="$(mktemp -d)"
(cd "$recovery_tmp" && "$repro_fp_bin" --bench-recovery --scale small --users 20000 >/dev/null)
rm -rf "$recovery_tmp"

# Maintenance leg: the incremental-maintenance parity suite (maintained
# materializations byte-identical to recompute-from-scratch, including
# delete-then-reinsert and schema-publish memo drops), then a small
# smoke of the mixed read/write bench at an elevated write rate so the
# patch/carry/rematerialize paths all execute under the clock.
echo "==> cargo test (incremental maintenance)"
cargo test -q -p qp-core --test maintenance
echo "==> bench-maintenance smoke (small scale)"
maint_tmp="$(mktemp -d)"
(cd "$maint_tmp" && "$repro_fp_bin" --bench-maintenance --scale small --runs 1 --write-rate 4 >/dev/null)
rm -rf "$maint_tmp"

# Forced-open breaker: every serving test must still pass when the
# circuit breaker is pinned open — personalizers without a resilience
# bundle are unaffected, and those with one keep serving degraded
# answers deterministically (tests construct explicit BreakerConfigs).
echo "==> cargo test (QP_BREAKER_FORCE_OPEN=1, serving + resilience)"
QP_BREAKER_FORCE_OPEN=1 cargo test -q --test serving --test resilience

# First-party crates only: the vendored offline shims (vendor/*) are API
# stand-ins and are not held to the documentation gate.
FIRST_PARTY=(-p personalized-queries -p qp-storage -p qp-obs -p qp-sql
             -p qp-exec -p qp-core -p qp-datagen -p qp-bench
             -p qp-client -p qp-server)

echo "==> cargo doc -D warnings (first-party crates)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q "${FIRST_PARTY[@]}"

echo "==> cargo test --doc (first-party crates)"
cargo test -q --doc "${FIRST_PARTY[@]}"

echo "ok: all checks passed"
