#!/usr/bin/env bash
# Full verification gate. Run from the repo root before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (workspace)"
cargo test -q --workspace

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test (failpoints feature)"
cargo test -q -p qp-exec -p qp-core --features failpoints

echo "ok: all checks passed"
