//! `qp` — an interactive shell over the personalized-queries system.
//!
//! ```text
//! $ cargo run --release --bin qp
//! qp> \gen 2000                    # generate a 2000-movie database
//! qp> \profile al                  # load the paper's Figure-2 profile
//! qp> \k 6                         # top-K criterion
//! qp> \l 2                         # minimum satisfied preferences
//! qp> select title from MOVIE     # personalized by default
//! qp> \plain select title from MOVIE limit 5
//! qp> \quit
//! ```
//!
//! Profiles can also be loaded from files in the paper's Figure-2
//! notation (`\profile path/to/profile.doi`).

use std::io::{BufRead, Write};

use personalized_queries::core::{
    AnswerAlgorithm, MixedKind, PersonalizationOptions, PersonalizeRequest, Personalizer, Profile,
    Ranking, RankingKind, SelectionAlgorithm, SelectionCriterion,
};
use personalized_queries::datagen::{self, ImdbScale};
use personalized_queries::storage::Database;

struct Shell {
    db: Database,
    profile: Profile,
    options: PersonalizationOptions,
    explain: bool,
}

impl Shell {
    fn new(movies: usize) -> Self {
        let db = datagen::generate(ImdbScale {
            movies,
            actors: movies * 2,
            directors: (movies / 10).max(10),
            theatres: (movies / 50).max(5),
            plays_per_theatre: 25,
            seed: 42,
        });
        db.warm_statistics();
        Shell {
            db,
            profile: Profile::new(),
            options: PersonalizationOptions {
                criterion: SelectionCriterion::TopK(6),
                l: 1,
                ..Default::default()
            },
            explain: true,
        }
    }

    fn handle(&mut self, line: &str) -> Result<bool, String> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(true);
        }
        if let Some(cmd) = line.strip_prefix('\\') {
            return self.command(cmd);
        }
        self.personalized_query(line)?;
        Ok(true)
    }

    fn command(&mut self, cmd: &str) -> Result<bool, String> {
        let mut parts = cmd.split_whitespace();
        let head = parts.next().unwrap_or("");
        let rest: Vec<&str> = parts.collect();
        match head {
            "quit" | "q" | "exit" => return Ok(false),
            "help" | "h" => {
                println!(
                    "commands:\n  \\gen <movies>        regenerate the database\n  \\schema              show the catalog\n  \\profile al|<file>   load a profile (Figure-2 notation)\n  \\profile show        print the active profile\n  \\k <n> | \\l <n>      set K / L\n  \\ranking inflationary|dominant|reserved\n  \\algo spa|ppa        answer algorithm\n  \\explain on|off      per-tuple explanations\n  \\explain <sql>       show the physical plan\n  \\analyze <sql>       EXPLAIN ANALYZE: run with per-operator profiling\n  \\plain <sql>         run SQL without personalization\n  <sql>                run SQL personalized\n  \\quit"
                );
            }
            "gen" => {
                let n: usize = rest
                    .first()
                    .and_then(|s| s.parse().ok())
                    .ok_or("usage: \\gen <movies>")?;
                *self = Shell { profile: std::mem::take(&mut self.profile), ..Shell::new(n) };
                println!("generated {} rows", self.db.total_rows());
            }
            "schema" => print!("{}", self.db.catalog()),
            "profile" => match rest.first() {
                Some(&"show") => print!("{}", self.profile.to_dsl(self.db.catalog())),
                Some(&"al") => {
                    self.profile = datagen::als_profile(&self.db).map_err(|e| e.to_string())?;
                    println!("loaded Al's profile ({} preferences)", self.profile.len());
                }
                Some(path) => {
                    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
                    self.profile =
                        Profile::parse(self.db.catalog(), &text).map_err(|e| e.to_string())?;
                    println!("loaded {} preferences from {path}", self.profile.len());
                }
                None => return Err("usage: \\profile al|show|<file>".to_string()),
            },
            "k" => {
                let k: usize = rest
                    .first()
                    .and_then(|s| s.parse().ok())
                    .ok_or("usage: \\k <n>")?;
                self.options.criterion = SelectionCriterion::TopK(k);
                println!("K = {k}");
            }
            "l" => {
                let l: usize = rest
                    .first()
                    .and_then(|s| s.parse().ok())
                    .ok_or("usage: \\l <n>")?;
                self.options.l = l;
                println!("L = {l}");
            }
            "ranking" => {
                let kind = match rest.first().copied() {
                    Some("inflationary") => RankingKind::Inflationary,
                    Some("dominant") => RankingKind::Dominant,
                    Some("reserved") => RankingKind::Reserved,
                    _ => return Err("usage: \\ranking inflationary|dominant|reserved".to_string()),
                };
                self.options.ranking = Ranking::new(kind, MixedKind::CountWeighted);
                println!("ranking = {kind:?}");
            }
            "algo" => {
                self.options.algorithm = match rest.first().copied() {
                    Some("spa") => AnswerAlgorithm::Spa,
                    Some("ppa") => AnswerAlgorithm::Ppa,
                    _ => return Err("usage: \\algo spa|ppa".to_string()),
                };
                println!("algorithm = {:?}", self.options.algorithm);
            }
            "explain" if rest.first() != Some(&"on") && rest.first() != Some(&"off") && !rest.is_empty() => {
                let sql = rest.join(" ");
                let engine = personalized_queries::exec::Engine::new();
                let query = personalized_queries::sql::parse_query(&sql).map_err(|e| e.to_string())?;
                let plan = engine.explain(&self.db, &query).map_err(|e| e.to_string())?;
                print!("{plan}");
            }
            "explain" => {
                self.explain = !matches!(rest.first().copied(), Some("off"));
                println!("explanations {}", if self.explain { "on" } else { "off" });
            }
            "analyze" => {
                let sql = rest.join(" ");
                if sql.is_empty() {
                    return Err("usage: \\analyze <sql>".to_string());
                }
                let engine = personalized_queries::exec::Engine::new();
                let query = personalized_queries::sql::parse_query(&sql).map_err(|e| e.to_string())?;
                let plan = engine.explain_analyze(&self.db, &query).map_err(|e| e.to_string())?;
                print!("{plan}");
            }
            "dump" => {
                let dir = rest.first().ok_or("usage: \\dump <dir>")?;
                personalized_queries::storage::dump_dir(&self.db, std::path::Path::new(dir))
                    .map_err(|e| e.to_string())?;
                println!("dumped {} rows to {dir}", self.db.total_rows());
            }
            "load" => {
                let dir = rest.first().ok_or("usage: \\load <dir>")?;
                self.db = personalized_queries::storage::load_dir(std::path::Path::new(dir))
                    .map_err(|e| e.to_string())?;
                self.db.warm_statistics();
                println!("loaded {} rows from {dir}", self.db.total_rows());
            }
            "plain" => {
                let sql = rest.join(" ");
                let engine = personalized_queries::exec::Engine::new();
                let rs = engine.execute_sql(&self.db, &sql).map_err(|e| e.to_string())?;
                let shown = rs.rows.len().min(20);
                print!("{}", personalized_queries::exec::ResultSet::new(
                    rs.columns.clone(),
                    rs.rows[..shown].to_vec(),
                ));
                println!("({} rows{})", rs.len(), if rs.len() > shown { ", first 20 shown" } else { "" });
            }
            other => return Err(format!("unknown command \\{other} (try \\help)")),
        }
        Ok(true)
    }

    fn personalized_query(&mut self, sql: &str) -> Result<(), String> {
        if self.profile.is_empty() {
            return Err("no profile loaded — try `\\profile al` (see \\help)".to_string());
        }
        let mut p = Personalizer::new(&self.db);
        self.options.selection = SelectionAlgorithm::FakeCrit;
        let report = p
            .run(PersonalizeRequest::sql(&self.profile, sql).options(self.options))
            .map_err(|e| e.to_string())?
            .report;
        println!("-- {} preferences selected:", report.selected.len());
        for (i, sp) in report.selected.iter().enumerate() {
            println!("--   [{i}] c={:.3}  {}", sp.criticality, sp.describe(&self.profile, self.db.catalog()));
        }
        let shown = report.answer.tuples.len().min(20);
        for t in &report.answer.tuples[..shown] {
            let row: Vec<String> = t.row.iter().map(|v| v.to_string()).collect();
            if self.explain {
                println!("{:<7.4} {:<44} +{:?} -{:?}", t.doi, row.join(" | "), t.satisfied, t.failed);
            } else {
                println!("{:<7.4} {}", t.doi, row.join(" | "));
            }
        }
        println!(
            "({} tuples, selection {:?}, execution {:?}{})",
            report.answer.len(),
            report.selection_time,
            report.execution_time,
            report
                .first_response
                .map(|d| format!(", first tuple {d:?}"))
                .unwrap_or_default()
        );
        Ok(())
    }
}

fn main() {
    let movies = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    println!("qp — personalized queries shell (\\help for commands)");
    print!("generating {movies}-movie database… ");
    std::io::stdout().flush().ok();
    let mut shell = Shell::new(movies);
    println!("{} rows.", shell.db.total_rows());

    let stdin = std::io::stdin();
    let interactive = atty_stdin();
    loop {
        if interactive {
            print!("qp> ");
            std::io::stdout().flush().ok();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => match shell.handle(&line) {
                Ok(true) => {}
                Ok(false) => break,
                Err(e) => eprintln!("error: {e}"),
            },
            Err(e) => {
                eprintln!("error: {e}");
                break;
            }
        }
    }
}

/// Rough interactivity check without extra dependencies: honored via the
/// QP_BATCH environment variable (set it to suppress prompts in pipes).
fn atty_stdin() -> bool {
    std::env::var_os("QP_BATCH").is_none()
}
