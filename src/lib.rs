#![warn(missing_docs)]

//! # personalized-queries
//!
//! A reproduction of *Koutrika & Ioannidis, "Personalized Queries under a
//! Generalized Preference Model" (ICDE 2005)* as a Rust workspace.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`storage`] — in-memory relational store (catalog, tables, histograms).
//! * [`sql`] — SQL front-end for the SPJ subset (lexer, parser, AST).
//! * [`exec`] — query execution engine with UDF registries.
//! * [`core`] — the paper's contribution: the generalized preference model,
//!   preference selection (SPS / FakeCrit / doi-driven), ranking functions,
//!   and personalized answer generation (SPA / PPA).
//! * [`datagen`] — synthetic IMDB-style data, profiles, simulated users.
//! * [`obs`] — zero-dependency observability: structured spans, metrics,
//!   pluggable trace recorders (see OBSERVABILITY.md).
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

pub use qp_core as core;
pub use qp_datagen as datagen;
pub use qp_exec as exec;
pub use qp_obs as obs;
pub use qp_sql as sql;
pub use qp_storage as storage;

/// Commonly used items, importable with `use personalized_queries::prelude::*`.
pub mod prelude {
    pub use qp_core::{
        Doi, ElasticFunction, PersonalizationOptions, PersonalizeOutcome, PersonalizeRequest,
        Personalizer, Preference, Profile, RankingKind,
    };
    pub use qp_exec::{Engine, QueryGuard};
    pub use qp_sql::parse_query;
    pub use qp_storage::{Database, Value};
}
