//! End-to-end integration tests: generated database → profile →
//! personalization → ranked answer, across both answer algorithms and all
//! three selection algorithms.

use personalized_queries::core::{
    AnswerAlgorithm, MixedKind, PersonalizationOptions, PersonalizeRequest, Personalizer, Ranking,
    RankingKind, SelectionAlgorithm, SelectionCriterion,
};
use personalized_queries::datagen::{self, ImdbScale};

fn test_db() -> personalized_queries::storage::Database {
    datagen::generate(ImdbScale { movies: 500, ..ImdbScale::small() })
}

fn options(k: usize, l: usize, algorithm: AnswerAlgorithm) -> PersonalizationOptions {
    PersonalizationOptions {
        criterion: SelectionCriterion::TopK(k),
        l,
        ranking: Ranking::new(RankingKind::Inflationary, MixedKind::CountWeighted),
        algorithm,
        selection: SelectionAlgorithm::FakeCrit,
        fallback_to_original: false,
    }
}

#[test]
fn als_profile_personalizes_movie_query() {
    let db = test_db();
    let profile = datagen::als_profile(&db).unwrap();
    let mut p = Personalizer::new(&db);
    let outcome = p
        .run(
            PersonalizeRequest::sql(&profile, "select title from MOVIE")
                .options(options(6, 1, AnswerAlgorithm::Ppa)),
        )
        .unwrap();
    assert_eq!(outcome.profile.id, profile.id());
    assert_eq!(outcome.profile.preferences, profile.len());
    assert!(outcome.is_complete());
    let report = outcome.report;
    assert!(!report.selected.is_empty(), "no preferences selected");
    assert!(!report.answer.is_empty(), "empty personalized answer");
    // selected preferences are ordered by decreasing criticality
    for w in report.selected.windows(2) {
        assert!(w[0].criticality >= w[1].criticality - 1e-9);
    }
    // answer emitted in non-increasing doi order
    for w in report.answer.tuples.windows(2) {
        assert!(w[0].doi >= w[1].doi - 1e-9, "emission order violates ranking");
    }
    // PPA answers are self-explanatory: every tuple explains itself and
    // satisfied/failed partition the selected preferences
    let k = report.selected.len();
    for t in &report.answer.tuples {
        assert!(t.tuple_id.is_some());
        let mut all: Vec<usize> = t.satisfied.iter().chain(&t.failed).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), t.satisfied.len() + t.failed.len(), "overlap in explanation");
        assert!(all.iter().all(|i| *i < k));
        assert_eq!(all.len(), k, "explanation must cover all K preferences");
    }
    assert!(report.first_response.is_some());
    assert!(report.first_response.unwrap() <= report.execution_time);
}

#[test]
fn spa_and_ppa_agree_on_membership_and_scores() {
    let db = test_db();
    let profile = datagen::als_profile(&db).unwrap();
    for l in [1, 2] {
        let mut p = Personalizer::new(&db);
        let spa = p
            .run(
                PersonalizeRequest::sql(&profile, "select title from MOVIE")
                    .options(options(6, l, AnswerAlgorithm::Spa)),
            )
            .unwrap()
            .report;
        let mut p = Personalizer::new(&db);
        let ppa = p
            .run(
                PersonalizeRequest::sql(&profile, "select title from MOVIE")
                    .options(options(6, l, AnswerAlgorithm::Ppa)),
            )
            .unwrap()
            .report;
        // same tuple set (by title)
        let mut spa_titles: Vec<String> =
            spa.answer.tuples.iter().map(|t| t.row[0].to_string()).collect();
        let mut ppa_titles: Vec<String> =
            ppa.answer.tuples.iter().map(|t| t.row[0].to_string()).collect();
        spa_titles.sort();
        spa_titles.dedup();
        ppa_titles.sort();
        ppa_titles.dedup();
        assert_eq!(spa_titles, ppa_titles, "L={l}: SPA and PPA disagree on the answer set");
    }
}

#[test]
fn ppa_doi_matches_direct_ranking() {
    // Recompute each PPA tuple's doi from its explanation and the
    // selected preferences; it must match the reported doi.
    let db = test_db();
    let profile = datagen::als_profile(&db).unwrap();
    let ranking = Ranking::new(RankingKind::Inflationary, MixedKind::CountWeighted);
    let mut p = Personalizer::new(&db);
    let report = p
        .run(
            PersonalizeRequest::sql(&profile, "select title from MOVIE")
                .options(options(6, 1, AnswerAlgorithm::Ppa)),
        )
        .unwrap()
        .report;
    for t in report.answer.tuples.iter().take(50) {
        // exact preferences only: elastic degrees are tuple-dependent and
        // already covered by the emission-order check
        let exact = t
            .satisfied
            .iter()
            .all(|&i| !report.selected[i].sel(&profile).doi.is_elastic())
            && t.failed
                .iter()
                .all(|&i| !report.selected[i].sel(&profile).doi.is_elastic());
        if !exact {
            continue;
        }
        let pos: Vec<f64> =
            t.satisfied.iter().map(|&i| report.selected[i].d_plus_peak(&profile)).collect();
        let neg: Vec<f64> = t
            .failed
            .iter()
            .map(|&i| report.selected[i].d_minus(&profile))
            .filter(|d| *d < 0.0)
            .collect();
        let expect = ranking.mixed(&pos, &neg);
        assert!(
            (t.doi - expect).abs() < 1e-9,
            "tuple {:?}: reported {} vs recomputed {}",
            t.row,
            t.doi,
            expect
        );
    }
}

#[test]
fn l_monotonicity() {
    // Larger L can only shrink the answer.
    let db = test_db();
    let profile = datagen::als_profile(&db).unwrap();
    let mut sizes = Vec::new();
    for l in 1..=3 {
        let mut p = Personalizer::new(&db);
        let r = p
            .run(
                PersonalizeRequest::sql(&profile, "select title from MOVIE")
                    .options(options(6, l, AnswerAlgorithm::Ppa)),
            )
            .unwrap();
        sizes.push(r.answer().len());
    }
    assert!(sizes[0] >= sizes[1] && sizes[1] >= sizes[2], "{sizes:?}");
}

#[test]
fn all_selection_algorithms_agree() {
    let db = test_db();
    let profile = datagen::random_profile(&db, &datagen::ProfileSpec::mixed(16, 99));
    let query = personalized_queries::sql::parse_query("select title from MOVIE").unwrap();
    let p = Personalizer::new(&db);
    let mut opts = options(8, 1, AnswerAlgorithm::Ppa);
    let fake = p.select_preferences(&profile, &query, &opts).unwrap();
    opts.selection = SelectionAlgorithm::Sps;
    let sps = p.select_preferences(&profile, &query, &opts).unwrap();
    assert_eq!(fake, sps, "SPS and FakeCrit must select the same top-K");
    opts.selection = SelectionAlgorithm::DoiBased { d_r: 0.7, n_estimate: None };
    let doi = p.select_preferences(&profile, &query, &opts).unwrap();
    // doi-based selection also returns preferences in criticality order
    for w in doi.windows(2) {
        assert!(w[0].criticality >= w[1].criticality - 1e-9);
    }
}

#[test]
fn personalized_answer_is_subset_of_plain_answer() {
    let db = test_db();
    let profile = datagen::als_profile(&db).unwrap();
    let mut p = Personalizer::new(&db);
    let plain = p.engine().execute_sql(&db, "select title from MOVIE").unwrap();
    let report = p
        .run(
            PersonalizeRequest::sql(&profile, "select title from MOVIE")
                .options(options(6, 2, AnswerAlgorithm::Ppa)),
        )
        .unwrap()
        .report;
    let plain_titles: std::collections::HashSet<String> =
        plain.rows.iter().map(|r| r[0].to_string()).collect();
    assert!(report.answer.len() <= plain.len());
    for t in &report.answer.tuples {
        assert!(plain_titles.contains(&t.row[0].to_string()));
    }
}

#[test]
fn elastic_preferences_produce_graded_dois() {
    // A profile with a single elastic preference: tuples closer to the
    // center must rank higher.
    let db = test_db();
    let profile = personalized_queries::core::Profile::parse(
        db.catalog(),
        "doi(MOVIE.duration = around(120, 40)) = (e(0.9), 0)\n",
    )
    .unwrap();
    let mut p = Personalizer::new(&db);
    let report = p
        .run(
            PersonalizeRequest::sql(&profile, "select title, duration from MOVIE")
                .options(options(1, 1, AnswerAlgorithm::Ppa)),
        )
        .unwrap()
        .report;
    assert!(report.answer.len() > 2);
    // doi should decrease with distance from 120
    for w in report.answer.tuples.windows(2) {
        let d0 = (w[0].row[1].as_f64().unwrap() - 120.0).abs();
        let d1 = (w[1].row[1].as_f64().unwrap() - 120.0).abs();
        assert!(d0 <= d1 + 1e-9, "not ordered by elastic distance: {d0} then {d1}");
    }
    // best tuple is within the support
    assert!((report.answer.tuples[0].row[1].as_f64().unwrap() - 120.0).abs() < 40.0);
}

#[test]
fn multi_relation_initial_query() {
    let db = test_db();
    let profile = datagen::als_profile(&db).unwrap();
    let mut p = Personalizer::new(&db);
    let report = p
        .run(
            PersonalizeRequest::sql(
                &profile,
                "select T.name, M.title from THEATRE T, PLAY P, MOVIE M \
                 where T.tid = P.tid and P.mid = M.mid",
            )
            .options(options(6, 1, AnswerAlgorithm::Ppa)),
        )
        .unwrap()
        .report;
    assert!(!report.selected.is_empty());
    // the answer should include theatre-level information
    assert_eq!(report.answer.columns, vec!["name", "title"]);
}

#[test]
fn empty_related_preferences_returns_plain_answer() {
    let db = test_db();
    // profile only about theatres; query only about actors
    let profile = personalized_queries::core::Profile::parse(
        db.catalog(),
        "doi(THEATRE.region = 'downtown') = (0.7, 0)\n",
    )
    .unwrap();
    let mut p = Personalizer::new(&db);
    let report = p
        .run(
            PersonalizeRequest::sql(&profile, "select name from ACTOR")
                .options(options(5, 1, AnswerAlgorithm::Ppa)),
        )
        .unwrap()
        .report;
    assert!(report.selected.is_empty());
    let plain = p.engine().execute_sql(&db, "select name from ACTOR").unwrap();
    assert_eq!(report.answer.len(), plain.len());
}

#[test]
fn spa_with_doi_based_selection() {
    let db = test_db();
    let profile = datagen::random_profile(&db, &datagen::ProfileSpec::mixed(12, 5));
    let mut opts = options(8, 1, AnswerAlgorithm::Spa);
    opts.selection = SelectionAlgorithm::DoiBased { d_r: 0.6, n_estimate: None };
    let mut p = Personalizer::new(&db);
    let report = p
        .run(PersonalizeRequest::sql(&profile, "select title from MOVIE").options(opts))
        .unwrap()
        .report;
    // either some preferences were selected and integrated, or none were
    // needed; both are valid outcomes — the call must simply succeed
    for w in report.answer.tuples.windows(2) {
        assert!(w[0].doi >= w[1].doi - 1e-9);
    }
}
