//! Property test: SPA and PPA must agree on the answer *set* for any
//! profile and L — they are two evaluation strategies for the same
//! semantics ("a personalized answer satisfying L of the K preferences").
//! Degrees must agree too for tuples whose identity survives SPA's
//! group-by-projection (the generator makes titles unique, so it does).

use proptest::prelude::*;
use personalized_queries::core::answer::{ppa::ppa, spa::spa};
use personalized_queries::core::select::{fakecrit::fakecrit, QueryContext, SelectionCriterion};
use personalized_queries::core::{
    CompareOp, Doi, MixedKind, PersonalizationGraph, Profile, Ranking, RankingKind,
};
use personalized_queries::exec::Engine;
use personalized_queries::sql::parse_query;
use personalized_queries::storage::{Attribute, DataType, Database, Value};

const GENRES: [&str; 4] = ["comedy", "drama", "musical", "horror"];

/// Builds a small database from generated rows: MOVIE(mid, title, year)
/// and GENRE(mid, genre) with unique titles.
fn build_db(movies: &[(i64, u8)], genres: &[(usize, u8)]) -> Database {
    let mut db = Database::new();
    db.create_relation(
        "MOVIE",
        vec![
            Attribute::new("mid", DataType::Int),
            Attribute::new("title", DataType::Text),
            Attribute::new("year", DataType::Int),
        ],
        &["mid"],
    )
    .unwrap();
    db.create_relation(
        "GENRE",
        vec![Attribute::new("mid", DataType::Int), Attribute::new("genre", DataType::Text)],
        &["mid", "genre"],
    )
    .unwrap();
    for (i, (year_off, _)) in movies.iter().enumerate() {
        db.insert_by_name(
            "MOVIE",
            vec![
                Value::Int(i as i64),
                Value::str(format!("title-{i:03}")),
                Value::Int(1950 + (year_off % 60)),
            ],
        )
        .unwrap();
    }
    let mut seen = std::collections::HashSet::new();
    for (m, g) in genres {
        let mid = (m % movies.len().max(1)) as i64;
        let genre = GENRES[(*g as usize) % GENRES.len()];
        if seen.insert((mid, genre)) {
            db.insert_by_name("GENRE", vec![Value::Int(mid), Value::str(genre)]).unwrap();
        }
    }
    db
}

/// A random profile: genre preferences (positive and negative) plus year
/// range preferences, joined through MOVIE→GENRE.
fn build_profile(db: &Database, prefs: &[(u8, i8)]) -> Profile {
    let c = db.catalog();
    let mut p = Profile::new();
    p.add_join(c, ("MOVIE", "mid"), ("GENRE", "mid"), 0.9).unwrap();
    let mut used = std::collections::HashSet::new();
    for (what, sign) in prefs {
        let d = 0.3 + 0.05 * (*what as f64 % 10.0);
        let doi = if *sign >= 0 { Doi::presence(d).unwrap() } else { Doi::dislike(d).unwrap() };
        match what % 3 {
            0 | 1 => {
                let genre = GENRES[(*what as usize / 3) % GENRES.len()];
                if used.insert(("genre", genre.to_string())) {
                    p.add_selection(c, "GENRE", "genre", CompareOp::Eq, genre, doi).unwrap();
                }
            }
            _ => {
                let year = 1950 + (*what as i64 % 6) * 10;
                if used.insert(("year", year.to_string())) {
                    p.add_selection(c, "MOVIE", "year", CompareOp::Ge, Value::Int(year), doi)
                        .unwrap();
                }
            }
        }
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn spa_and_ppa_answer_sets_agree(
        movies in prop::collection::vec((0i64..60, any::<u8>()), 4..40),
        genres in prop::collection::vec((0usize..40, any::<u8>()), 0..80),
        prefs in prop::collection::vec((any::<u8>(), -1i8..=1), 1..6),
        l in 1usize..3,
        kind_idx in 0usize..3,
    ) {
        let db = build_db(&movies, &genres);
        let profile = build_profile(&db, &prefs);
        if profile.selections().count() == 0 {
            return Ok(());
        }
        let graph = PersonalizationGraph::build(&profile);
        let query = parse_query("select title from MOVIE").unwrap();
        let qc = QueryContext::from_query(db.catalog(), &query).unwrap();
        let selected = fakecrit(&graph, &qc, SelectionCriterion::TopK(6)).unwrap();
        if selected.is_empty() || l > selected.len() {
            return Ok(());
        }
        let ranking = Ranking::new(RankingKind::ALL[kind_idx], MixedKind::CountWeighted);

        let mut engine = Engine::new();
        let spa_answer = spa(&db, &mut engine, &query, &profile, &selected, l, &ranking).unwrap();
        let mut engine = Engine::new();
        let (ppa_answer, _) =
            ppa(&db, &mut engine, &query, &profile, &selected, l, &ranking).unwrap();

        // identical answer sets (titles are unique by construction)
        let mut spa_titles: Vec<String> =
            spa_answer.tuples.iter().map(|t| t.row[0].to_string()).collect();
        let mut ppa_titles: Vec<String> =
            ppa_answer.tuples.iter().map(|t| t.row[0].to_string()).collect();
        spa_titles.sort();
        ppa_titles.sort();
        prop_assert_eq!(&spa_titles, &ppa_titles, "L={}, prefs={:?}", l, prefs);

        // PPA's doi is the mixed combination; SPA's is positive-only, so
        // for every tuple SPA's score must be ≥ PPA's (failures can only
        // subtract), and equal when nothing failed.
        let spa_by_title: std::collections::HashMap<String, f64> = spa_answer
            .tuples
            .iter()
            .map(|t| (t.row[0].to_string(), t.doi))
            .collect();
        for t in &ppa_answer.tuples {
            let s = spa_by_title[&t.row[0].to_string()];
            prop_assert!(
                s >= t.doi - 1e-9,
                "SPA positive-only score {} below PPA mixed {} for {:?}",
                s,
                t.doi,
                t.row
            );
            if t.failed.is_empty() {
                prop_assert!((s - t.doi).abs() < 1e-9);
            }
        }
    }
}
