//! Integration tests for the future-work extensions (§7): concept
//! mapping, profile mining, context-aware personalization, and
//! qualitative descriptors — each driven end-to-end through the
//! personalizer on generated data.

use personalized_queries::core::context::suggest_options;
use personalized_queries::core::{
    mine_profile, AnswerAlgorithm, ConceptSchema, Context, ContextRule, ContextualProfile,
    Doi, Feedback, MinerConfig, PersonalizationOptions, PersonalizeRequest, Personalizer,
    Profile, QualityDescriptor, SelectionCriterion,
};
use personalized_queries::datagen::{self, ImdbScale};
use personalized_queries::exec::Engine;
use personalized_queries::storage::RowId;

fn db() -> personalized_queries::storage::Database {
    datagen::generate(ImdbScale { movies: 800, ..ImdbScale::small() })
}

fn film_concepts(db: &personalized_queries::storage::Database) -> ConceptSchema {
    let mut s = ConceptSchema::new();
    let c = db.catalog();
    s.add_concept(c, "Film", "MOVIE").unwrap();
    s.add_direct_attr(c, "Film", "released", ("MOVIE", "year")).unwrap();
    s.add_path_attr(
        c,
        "Film",
        "director",
        &[(("MOVIE", "mid"), ("DIRECTED", "mid")), (("DIRECTED", "did"), ("DIRECTOR", "did"))],
        ("DIRECTOR", "name"),
    )
    .unwrap();
    s.add_path_attr(c, "Film", "category", &[(("MOVIE", "mid"), ("GENRE", "mid"))], ("GENRE", "genre"))
        .unwrap();
    s
}

#[test]
fn concept_profile_personalizes_end_to_end() {
    let db = db();
    let concepts = film_concepts(&db);
    let profile = concepts
        .parse_profile(
            db.catalog(),
            "doi(Film.director = 'W. Allen') = (0.8, 0)\n\
             doi(Film.category = 'comedy') = (0.6, 0)\n",
        )
        .unwrap();
    let mut p = Personalizer::new(&db);
    let report = p
        .run(
            PersonalizeRequest::sql(&profile, "select title from MOVIE")
                .criterion(SelectionCriterion::TopK(2))
                .l(1)
                .algorithm(AnswerAlgorithm::Ppa),
        )
        .unwrap()
        .report;
    assert_eq!(report.selected.len(), 2);
    assert!(!report.answer.is_empty());
    // concept-level degrees survive intact: top criticality is 0.8
    assert!((report.selected[0].criticality - 0.8).abs() < 1e-9);
}

#[test]
fn concept_and_schema_profiles_are_equivalent() {
    let db = db();
    let concepts = film_concepts(&db);
    let via_concepts = concepts
        .parse_profile(db.catalog(), "doi(Film.director = 'W. Allen') = (0.8, 0)\n")
        .unwrap();
    let via_schema = Profile::parse(
        db.catalog(),
        "doi(MOVIE.mid = DIRECTED.mid) = (1)\n\
         doi(DIRECTED.did = DIRECTOR.did) = (1)\n\
         doi(DIRECTOR.name = 'W. Allen') = (0.8, 0)\n",
    )
    .unwrap();
    let opts = PersonalizationOptions {
        criterion: SelectionCriterion::TopK(1),
        l: 1,
        algorithm: AnswerAlgorithm::Ppa,
        ..Default::default()
    };
    let mut p = Personalizer::new(&db);
    let a = p
        .run(PersonalizeRequest::sql(&via_concepts, "select title from MOVIE").options(opts))
        .unwrap()
        .report;
    let mut p = Personalizer::new(&db);
    let b = p
        .run(PersonalizeRequest::sql(&via_schema, "select title from MOVIE").options(opts))
        .unwrap()
        .report;
    let ids_a: Vec<_> = a.answer.tuples.iter().map(|t| t.tuple_id).collect();
    let ids_b: Vec<_> = b.answer.tuples.iter().map(|t| t.tuple_id).collect();
    assert_eq!(ids_a, ids_b);
}

#[test]
fn mined_profile_reflects_feedback_and_personalizes() {
    let db = db();
    let engine = Engine::new();
    // history: liked = dramas, disliked = comedies
    let liked = engine
        .execute_sql(
            &db,
            "select M.rowid from MOVIE M, GENRE G where M.mid = G.mid and G.genre = 'drama'",
        )
        .unwrap();
    let disliked = engine
        .execute_sql(
            &db,
            "select M.rowid from MOVIE M, GENRE G where M.mid = G.mid and G.genre = 'comedy'",
        )
        .unwrap();
    let mut feedback = Vec::new();
    for r in liked.rows.iter().take(50) {
        feedback.push(Feedback { row: RowId(r[0].as_i64().unwrap() as u64), liked: true });
    }
    for r in disliked.rows.iter().take(50) {
        feedback.push(Feedback { row: RowId(r[0].as_i64().unwrap() as u64), liked: false });
    }
    let mined = mine_profile(&db, "MOVIE", &feedback, &MinerConfig::default()).unwrap();
    // drama mined positive
    let drama = mined
        .selections()
        .find(|(_, s)| s.condition.value.as_str() == Some("drama"))
        .expect("drama preference mined");
    assert!(drama.1.is_presence());
    // and the mined profile actually ranks dramas first
    let mut p = Personalizer::new(&db);
    let report = p
        .run(
            PersonalizeRequest::sql(
                &mined,
                "select M.title from MOVIE M, GENRE G where M.mid = G.mid and G.genre = 'drama'",
            )
            .criterion(SelectionCriterion::TopK(5))
            .l(1)
            .algorithm(AnswerAlgorithm::Ppa),
        )
        .unwrap()
        .report;
    assert!(!report.answer.is_empty());
}

#[test]
fn context_switches_answers() {
    let db = db();
    let c = db.catalog();
    let mut base = Profile::new();
    base.add_selection(
        c,
        "MOVIE",
        "year",
        personalized_queries::core::CompareOp::Ge,
        1990,
        Doi::presence(0.5).unwrap(),
    )
    .unwrap();
    let mut overlay = Profile::new();
    overlay
        .add_selection(
            c,
            "GENRE",
            "genre",
            personalized_queries::core::CompareOp::Eq,
            "comedy",
            Doi::presence(0.9).unwrap(),
        )
        .unwrap();
    overlay.add_join(c, ("MOVIE", "mid"), ("GENRE", "mid"), 1.0).unwrap();
    let mut ctx_profile = ContextualProfile::new(base);
    ctx_profile
        .add_rule(ContextRule {
            facet: "time".into(),
            value: "evening".into(),
            overlay,
            base_weight: 1.0,
        })
        .unwrap();

    let opts = PersonalizationOptions {
        criterion: SelectionCriterion::TopK(5),
        l: 1,
        algorithm: AnswerAlgorithm::Ppa,
        ..Default::default()
    };
    let morning = ctx_profile.resolve(&Context::new().with("time", "morning"));
    let evening = ctx_profile.resolve(&Context::new().with("time", "evening"));
    let mut p = Personalizer::new(&db);
    let rm = p
        .run(PersonalizeRequest::sql(&morning, "select title from MOVIE").options(opts))
        .unwrap()
        .report;
    let mut p = Personalizer::new(&db);
    let re = p
        .run(PersonalizeRequest::sql(&evening, "select title from MOVIE").options(opts))
        .unwrap()
        .report;
    assert_eq!(rm.selected.len(), 1);
    assert_eq!(re.selected.len(), 2, "evening adds the comedy preference");
    // the evening top tuple satisfies the comedy preference
    assert!(!re.answer.tuples[0].satisfied.is_empty());
}

#[test]
fn suggested_options_run_end_to_end() {
    let db = db();
    let profile = datagen::als_profile(&db).unwrap();
    for ctx in [
        Context::new().with("device", "mobile"),
        Context::new().with("device", "tv"),
        Context::new(),
    ] {
        let opts = suggest_options(&ctx);
        let mut p = Personalizer::new(&db);
        let report = p
            .run(PersonalizeRequest::sql(&profile, "select title from MOVIE").options(opts))
            .unwrap()
            .report;
        assert!(report.selected.len() <= opts.criterion.k_limit().unwrap());
    }
}

#[test]
fn best_descriptor_selects_until_guaranteed() {
    let db = db();
    let profile = datagen::als_profile(&db).unwrap();
    let opts = PersonalizationOptions {
        criterion: SelectionCriterion::TopK(10),
        l: 1,
        algorithm: AnswerAlgorithm::Ppa,
        selection: QualityDescriptor::Good.selection_algorithm(),
        ..Default::default()
    };
    let mut p = Personalizer::new(&db);
    let report = p
        .run(PersonalizeRequest::sql(&profile, "select title from MOVIE").options(opts))
        .unwrap()
        .report;
    // the doi-driven selection picked enough preferences (or none were
    // needed); filtering the answer by the descriptor keeps a subset
    let best = QualityDescriptor::Best.filter(&report.answer);
    let good = QualityDescriptor::Good.filter(&report.answer);
    assert!(best.len() <= good.len());
    assert!(good.len() <= report.answer.len());
    for t in &best.tuples {
        assert!(t.doi >= 0.9);
    }
}
