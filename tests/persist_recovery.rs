//! Crash-recovery behaviour of the durable profile store, asserted at
//! the workspace level: a reopened directory serves a byte-identical
//! store (the `digest` definition of identical), damage at any byte of
//! the log costs exactly the suffix behind it, disk faults degrade the
//! store to read-only instead of crashing it, and a server restarted
//! over the same `data_dir` answers for users registered before the
//! restart.
//!
//! The `chaos` module arms `persist.*` failpoints and only compiles
//! with `--features failpoints`; run it single-threaded because the
//! failpoint registry is process-global.

use std::path::PathBuf;
use std::sync::OnceLock;

use proptest::prelude::*;

use personalized_queries::core::store::{FsyncPolicy, PersistOptions, ProfileStore};
use personalized_queries::core::PrefError;
use personalized_queries::datagen::{self, ImdbScale, ProfilePool};
use personalized_queries::storage::persist::replay_log;
use personalized_queries::storage::Database;

fn shared_db() -> &'static Database {
    static DB: OnceLock<Database> = OnceLock::new();
    DB.get_or_init(|| {
        let db = datagen::generate(ImdbScale { movies: 200, ..ImdbScale::small() });
        db.warm_statistics();
        db
    })
}

fn pool() -> &'static ProfilePool {
    static POOL: OnceLock<ProfilePool> = OnceLock::new();
    POOL.get_or_init(|| ProfilePool::build(shared_db()))
}

/// A scratch store directory under the OS temp dir, removed on drop.
struct ScratchDir {
    path: PathBuf,
}

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "qp_recovery_{tag}_{}_{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        ScratchDir { path }
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// Fast durable options for tests: no fsync, no background flusher, no
/// auto-checkpoint — every test controls flush/checkpoint explicitly.
fn quick_options() -> PersistOptions {
    PersistOptions::default()
        .fsync(FsyncPolicy::Never)
        .flush_ms(0)
        .checkpoint_bytes(0)
}

/// The i-th registration of the deterministic test sequence: every
/// third user is named, and every fifth operation re-registers the
/// previous user (exercising version bumps in the log).
fn apply_op(store: &ProfileStore, i: u64) -> Result<(), PrefError> {
    use personalized_queries::core::store::UserId;
    let catalog = shared_db().catalog();
    let profile = pool().profile(catalog, i, 6);
    if i % 5 == 4 && i > 0 {
        store.register(UserId(1000 + i - 1), &profile)?;
    } else if i.is_multiple_of(3) {
        store.register_named(&format!("user-{i}"), &profile)?;
    } else {
        store.register(UserId(1000 + i), &profile)?;
    }
    Ok(())
}

/// A fresh in-memory store holding the first `n` operations — the
/// ground truth a recovered store must be digest-identical to.
fn fresh_prefix(n: u64) -> ProfileStore {
    let store = ProfileStore::new();
    for i in 0..n {
        apply_op(&store, i).expect("in-memory registration cannot fail");
    }
    store
}

/// The single live segment file of a store directory (newest sequence).
fn live_segment(dir: &std::path::Path) -> PathBuf {
    personalized_queries::storage::persist::list_logs(dir)
        .expect("list segment files")
        .pop()
        .expect("directory has a segment file")
        .1
}

#[test]
fn reopen_serves_identical_store() {
    let dir = ScratchDir::new("reopen");
    const OPS: u64 = 400;
    let digest = {
        let store = ProfileStore::open_with(&dir.path, quick_options()).expect("fresh open");
        assert!(store.is_durable());
        assert_eq!(store.recovery().expect("durable stores report recovery").records_kept, 0);
        for i in 0..OPS {
            apply_op(&store, i).expect("healthy disk");
        }
        store.flush().expect("flush");
        store.digest()
    };

    let store = ProfileStore::open_with(&dir.path, quick_options()).expect("reopen");
    assert_eq!(store.digest(), digest, "recovered store is byte-identical");
    assert_eq!(store.digest(), fresh_prefix(OPS).digest(), "and equals a fresh replay");
    let report = store.recovery().expect("report");
    assert!(report.records_kept >= OPS, "every op recovered: {report:?}");
    assert_eq!(report.records_dropped, 0);
    assert!(!report.tail_repaired);

    // The recovered store is live: lookups decode, and registration
    // continues with the version sequence intact.
    use personalized_queries::core::store::UserId;
    let named = store.lookup_named("user-0").expect("named user recovered");
    let decoded = store.get(named).expect("handle").profile().expect("decodes");
    assert!(decoded.is_stored());
    let catalog = shared_db().catalog();
    let v = store
        .register(UserId(1001), &pool().profile(catalog, 1, 6))
        .expect("recovered store accepts writes");
    assert!(v >= 2, "version continues past the recovered one, got {v}");
}

#[test]
fn checkpoint_truncates_log_and_recovery_reads_snapshot() {
    let dir = ScratchDir::new("checkpoint");
    const BEFORE: u64 = 150;
    const AFTER: u64 = 50;
    let digest = {
        let store = ProfileStore::open_with(&dir.path, quick_options()).expect("open");
        for i in 0..BEFORE {
            apply_op(&store, i).expect("healthy disk");
        }
        let wal_before = store.wal_bytes();
        let stats = store.checkpoint().expect("checkpoint").expect("durable store");
        assert_eq!(stats.users, store.len() as u64);
        assert!(stats.snapshot_bytes > 0);
        assert!(
            store.wal_bytes() < wal_before,
            "checkpoint truncates the live log ({} -> {})",
            wal_before,
            store.wal_bytes()
        );
        for i in BEFORE..BEFORE + AFTER {
            apply_op(&store, i).expect("healthy disk");
        }
        store.flush().expect("flush");
        store.digest()
    };

    let store = ProfileStore::open_with(&dir.path, quick_options()).expect("reopen");
    assert_eq!(store.digest(), digest);
    assert_eq!(store.digest(), fresh_prefix(BEFORE + AFTER).digest());
    let report = store.recovery().expect("report");
    assert!(report.snapshot_users > 0, "recovery read the snapshot: {report:?}");
    assert!(report.snapshot_bytes > 0);
    assert!(
        report.records_kept <= AFTER + 1,
        "only the post-checkpoint tail replays: {report:?}"
    );
}

#[test]
fn torn_tail_recovers_longest_prefix_deterministic() {
    // Cut the live segment mid-record and recover: the store must equal
    // a fresh re-registration of exactly the surviving records.
    let dir = ScratchDir::new("torn");
    const OPS: u64 = 60;
    {
        let store = ProfileStore::open_with(&dir.path, quick_options()).expect("open");
        for i in 0..OPS {
            apply_op(&store, i).expect("healthy disk");
        }
        store.flush().expect("flush");
    }
    let segment = live_segment(&dir.path);
    // Find real record boundaries, then cut 3 bytes into a record so
    // the tail is guaranteed torn (not a clean boundary truncation).
    let mut starts = Vec::new();
    replay_log(&segment, |offset, _| {
        starts.push(offset);
        Ok(())
    })
    .unwrap();
    let survivors = (starts.len() * 2 / 3) as u64;
    let cut = starts[survivors as usize] + 3;
    personalized_queries::storage::persist::truncate_log(&segment, cut).unwrap();

    let store = ProfileStore::open_with(&dir.path, quick_options()).expect("recover");
    assert_eq!(store.len() as u64, fresh_prefix(survivors).len() as u64);
    assert_eq!(
        store.digest(),
        fresh_prefix(survivors).digest(),
        "recovered store equals a fresh registration of the surviving prefix"
    );
    let report = store.recovery().expect("report");
    assert!(report.tail_repaired);
    assert_eq!(report.records_kept, survivors);
    assert!(report.records_dropped >= 1);
    assert!(report.bytes_dropped > 0);

    // The tail was truncated away on disk: a second recovery is clean.
    let store2 = ProfileStore::open_with(&dir.path, quick_options()).expect("reopen");
    assert_eq!(store2.digest(), store.digest());
    assert!(!store2.recovery().expect("report").tail_repaired, "tail repair is not sticky");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12 })]

    /// Damage — truncation or a flipped byte — at *any* position in the
    /// live segment recovers a store byte-identical to a fresh
    /// re-registration of the longest valid record prefix.
    #[test]
    fn arbitrary_damage_recovers_a_valid_prefix(
        ops in 5u64..40,
        damage_frac in 0.0f64..1.0,
        flip in any::<bool>(),
        mask in 1u8..=255,
    ) {
        let dir = ScratchDir::new("prop");
        {
            let store = ProfileStore::open_with(&dir.path, quick_options()).expect("open");
            for i in 0..ops {
                apply_op(&store, i).expect("healthy disk");
            }
            store.flush().expect("flush");
        }
        let segment = live_segment(&dir.path);
        let len = std::fs::metadata(&segment).unwrap().len();
        let pos = ((len - 1) as f64 * damage_frac) as u64;
        if flip {
            let mut bytes = std::fs::read(&segment).unwrap();
            bytes[pos as usize] ^= mask;
            std::fs::write(&segment, &bytes).unwrap();
        } else {
            personalized_queries::storage::persist::truncate_log(&segment, pos).unwrap();
        }
        let mut survivors = 0u64;
        replay_log(&segment, |_, _| { survivors += 1; Ok(()) }).unwrap();

        let store = ProfileStore::open_with(&dir.path, quick_options()).expect("recover");
        prop_assert_eq!(store.recovery().expect("report").records_kept, survivors);
        prop_assert_eq!(store.digest(), fresh_prefix(survivors).digest());
    }
}

#[test]
fn decode_lru_bounds_decoded_memory_across_recovery() {
    use personalized_queries::core::store::UserId;
    // 4 shards so a capacity of 8 is meaningful: the LRU keeps at least
    // one entry per shard, so capacity below the shard count floors out.
    std::env::set_var("QP_DECODE_CACHE", "8");
    let dir = ScratchDir::new("lru");
    {
        let store =
            ProfileStore::open_with(&dir.path, quick_options().shards(4)).expect("open");
        let catalog = shared_db().catalog();
        for u in 0..64u64 {
            store.register(UserId(u), &pool().profile(catalog, u, 6)).expect("register");
        }
        store.flush().expect("flush");
    }
    let store = ProfileStore::open_with(&dir.path, quick_options().shards(4)).expect("reopen");
    std::env::remove_var("QP_DECODE_CACHE");
    for u in 0..64u64 {
        store.get(UserId(u)).expect("recovered").profile().expect("decodes");
    }
    assert!(
        store.decoded_cached() <= 8,
        "LRU capacity bounds decoded profiles, got {}",
        store.decoded_cached()
    );
    assert!(store.metrics().counter("profiles.decode.evict").get() >= 56);
}

#[test]
fn server_restart_recovers_profiles_over_the_wire() {
    use qp_server::testsupport::{als_profile_dsl, quick_config, TestServer};
    use qp_server::ServerConfig;

    let dir = ScratchDir::new("server");
    let config = || ServerConfig {
        data_dir: Some(dir.path.clone()),
        ..quick_config()
    };

    let before = {
        let mut ts = TestServer::spawn_with(config());
        let dsl = als_profile_dsl(&ts.store().snapshot());
        let mut client = ts.client();
        client.register_profile("al", &dsl).expect("register");
        let answer = client
            .personalize(qp_client::PersonalizeCall::new("al", "select title from MOVIE").k(3))
            .expect("personalize");
        let report = ts.shutdown();
        assert_eq!(report.profiles_flushed, 1, "shutdown flushed the registered profile");
        answer
    };

    // A new server over the same directory serves the user without a
    // fresh registration — over the wire, not via any shared memory.
    let mut ts = TestServer::spawn_with(config());
    let mut client = ts.client();
    let after = client
        .personalize(qp_client::PersonalizeCall::new("al", "select title from MOVIE").k(3))
        .expect("personalize after restart");
    assert_eq!(after.tuples, before.tuples, "same profile, same personalized answer");
    assert!(ts.server().profiles().is_durable());
    assert_eq!(ts.server().profiles().recovery().expect("recovered").records_kept, 1);
    ts.shutdown();
}

/// Fault-injected durability tests. Compiled only with `--features
/// failpoints`; run single-threaded (the failpoint registry is
/// process-global).
#[cfg(feature = "failpoints")]
mod chaos {
    use super::*;
    use personalized_queries::core::store::UserId;
    use personalized_queries::storage::failpoint::{self, FailAction, FailScenario};
    use personalized_queries::storage::ChaosPlan;

    #[test]
    fn write_fault_degrades_to_read_only_without_losing_reads() {
        let _scenario = FailScenario::setup();
        let dir = ScratchDir::new("wfault");
        let store = ProfileStore::open_with(&dir.path, quick_options()).expect("open");
        let catalog = shared_db().catalog();
        for u in 0..10u64 {
            store.register(UserId(u), &pool().profile(catalog, u, 6)).expect("healthy");
        }
        store.flush().expect("flush");

        failpoint::arm("persist.write", FailAction::Error("injected disk fault".into()));
        let err = store
            .register(UserId(99), &pool().profile(catalog, 99, 6))
            .expect_err("write fault surfaces");
        assert!(matches!(err, PrefError::Persist(_)), "typed persist error, got {err:?}");
        failpoint::clear();

        // The store latched read-only: even with the fault gone, writes
        // are refused with the original reason…
        let reason = store.read_only().expect("degraded");
        assert!(reason.contains("injected disk fault"), "reason: {reason}");
        let err = store
            .register(UserId(100), &pool().profile(catalog, 100, 6))
            .expect_err("still read-only");
        assert!(matches!(err, PrefError::Persist(_)));
        assert!(store.get(UserId(99)).is_none(), "failed registration never applied");

        // …but reads keep serving.
        for u in 0..10u64 {
            store.get(UserId(u)).expect("still served").profile().expect("decodes");
        }
        assert!(store.metrics().counter("persist.errors").get() >= 1);
        assert_eq!(store.metrics().gauge("persist.degraded").get(), 1);

        // A reopen (the operator replaced the disk) serves the prefix
        // and accepts writes again.
        drop(store);
        let store = ProfileStore::open_with(&dir.path, quick_options()).expect("reopen");
        assert_eq!(store.len(), 10);
        assert!(store.read_only().is_none());
        store.register(UserId(99), &pool().profile(catalog, 99, 6)).expect("healthy again");
    }

    #[test]
    fn fsync_fault_under_always_policy_degrades() {
        let _scenario = FailScenario::setup();
        let dir = ScratchDir::new("ffault");
        let store = ProfileStore::open_with(
            &dir.path,
            quick_options().fsync(FsyncPolicy::Always),
        )
        .expect("open");
        let catalog = shared_db().catalog();
        store.register(UserId(1), &pool().profile(catalog, 1, 6)).expect("healthy");

        failpoint::arm("persist.fsync", FailAction::Error("injected fsync fault".into()));
        store
            .register(UserId(2), &pool().profile(catalog, 2, 6))
            .expect_err("fsync fault surfaces under the always policy");
        failpoint::clear();
        assert!(store.read_only().is_some());
        assert!(store.get(UserId(2)).is_none(), "unacknowledged write never applied");
    }

    #[test]
    fn read_fault_refuses_recovery_rather_than_guessing() {
        let _scenario = FailScenario::setup();
        let dir = ScratchDir::new("rfault");
        {
            let store = ProfileStore::open_with(&dir.path, quick_options()).expect("open");
            let catalog = shared_db().catalog();
            store.register(UserId(1), &pool().profile(catalog, 1, 6)).expect("healthy");
            store.flush().expect("flush");
        }
        failpoint::arm("persist.read", FailAction::Error("injected read fault".into()));
        let err = ProfileStore::open_with(&dir.path, quick_options())
            .expect_err("a disk that refuses reads must not recover silently");
        assert!(matches!(err, PrefError::Persist(_)));
        failpoint::clear();
        ProfileStore::open_with(&dir.path, quick_options()).expect("healthy disk recovers");
    }

    /// Kill-during-flush soak: registrations race the disk-fault chaos
    /// schedule; whatever survives on disk must recover to a clean
    /// prefix of the acknowledged sequence, for every seed, with zero
    /// panics.
    #[test]
    fn disk_chaos_soak_recovers_acknowledged_prefix() {
        let catalog = shared_db().catalog();
        for seed in [0xD15C_u64, 0xFA_017, 0xC4A5, 0x5EED] {
            let _scenario = FailScenario::setup();
            let dir = ScratchDir::new("soak");
            let mut acked = 0u64;
            {
                let store = ProfileStore::open_with(
                    &dir.path,
                    quick_options().fsync(FsyncPolicy::Batch).flush_ms(1),
                )
                .expect("open with a healthy disk");
                ChaosPlan::disk_default(seed).arm();
                for i in 0..200u64 {
                    match apply_op(&store, i) {
                        Ok(()) => acked = i + 1,
                        Err(PrefError::Persist(_)) => break,
                        Err(other) => panic!("unsanctioned failure under chaos: {other}"),
                    }
                }
                failpoint::clear();
                // Simulated kill: the store drops mid-stream (its Drop
                // flush is best-effort and may itself have been the
                // faulted write).
            }
            let store = ProfileStore::open_with(&dir.path, quick_options())
                .unwrap_or_else(|e| panic!("seed {seed:#x}: recovery failed: {e}"));
            let recovered = store.recovery().expect("report").records_kept;
            assert!(
                recovered <= acked,
                "seed {seed:#x}: recovered {recovered} records but only {acked} were acked"
            );
            assert_eq!(
                store.digest(),
                fresh_prefix(recovered).digest(),
                "seed {seed:#x}: recovered store must equal the first {recovered} ops"
            );
            // And the survivor store still takes writes.
            store
                .register(UserId(9_999), &pool().profile(catalog, 7, 6))
                .expect("recovered store is healthy");
        }
    }
}
