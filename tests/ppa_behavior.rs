//! Focused behavioral tests for the PPA algorithm (Figure 6): staging,
//! parameterized-query completeness, the MEDI emission bound, early
//! termination, and step-3 (never-touched tuples).

use personalized_queries::core::answer::ppa::ppa;
use personalized_queries::core::select::{fakecrit::fakecrit, QueryContext, SelectionCriterion};
use personalized_queries::core::{
    MixedKind, PersonalizationGraph, Profile, Ranking, RankingKind,
};
use personalized_queries::exec::Engine;
use personalized_queries::sql::parse_query;
use personalized_queries::storage::{Attribute, DataType, Database, Value};

/// A hand-built database where every satisfaction set is known exactly.
///
/// Movies 0..10. GENRE: movies 0–4 are "comedy"; movies 3–6 are
/// "musical". year: movie i has year 1970 + 5·i.
fn tiny_db() -> Database {
    let mut db = Database::new();
    db.create_relation(
        "MOVIE",
        vec![
            Attribute::new("mid", DataType::Int),
            Attribute::new("title", DataType::Text),
            Attribute::new("year", DataType::Int),
        ],
        &["mid"],
    )
    .unwrap();
    db.create_relation(
        "GENRE",
        vec![Attribute::new("mid", DataType::Int), Attribute::new("genre", DataType::Text)],
        &["mid", "genre"],
    )
    .unwrap();
    for i in 0..10i64 {
        db.insert_by_name(
            "MOVIE",
            vec![Value::Int(i), Value::str(format!("m{i}")), Value::Int(1970 + 5 * i)],
        )
        .unwrap();
    }
    for i in 0..=4i64 {
        db.insert_by_name("GENRE", vec![Value::Int(i), Value::str("comedy")]).unwrap();
    }
    for i in 3..=6i64 {
        db.insert_by_name("GENRE", vec![Value::Int(i), Value::str("musical")]).unwrap();
    }
    db
}

/// Profile: +comedy (0.8 via 0.9 join), −musical (−0.6 via join, 1–n
/// absence), +year ≥ 2000 (0.5, atomic presence).
fn profile(db: &Database) -> Profile {
    Profile::parse(
        db.catalog(),
        "doi(GENRE.genre = 'comedy') = (0.8, 0)\n\
         doi(GENRE.genre = 'musical') = (-0.6, 0)\n\
         doi(MOVIE.year >= 2000) = (0.5, 0)\n\
         doi(MOVIE.mid = GENRE.mid) = (0.9)\n",
    )
    .unwrap()
}

fn run(l: usize, kind: RankingKind) -> personalized_queries::core::PersonalizedAnswer {
    let db = tiny_db();
    let p = profile(&db);
    let graph = PersonalizationGraph::build(&p);
    let q = parse_query("select title from MOVIE").unwrap();
    let qc = QueryContext::from_query(db.catalog(), &q).unwrap();
    let selected = fakecrit(&graph, &qc, SelectionCriterion::TopK(3)).unwrap();
    assert_eq!(selected.len(), 3);
    let mut engine = Engine::new();
    let ranking = Ranking::new(kind, MixedKind::CountWeighted);
    let (answer, stats) = ppa(&db, &mut engine, &q, &p, &selected, l, &ranking).unwrap();
    assert!(stats.total >= stats.first_response.unwrap_or_default());
    answer
}

/// Ground truth per movie i: comedy iff i ≤ 4, fails musical-absence iff
/// 3 ≤ i ≤ 6, year pref iff 1970+5i ≥ 2000 (i ≥ 6).
fn truth(i: i64) -> (bool, bool, bool) {
    (i <= 4, !(3..=6).contains(&i), i >= 6)
}

#[test]
fn explanations_match_ground_truth() {
    let db = tiny_db();
    let p = profile(&db);
    let answer = run(1, RankingKind::Inflationary);
    let graph_profile = &p;
    // figure out which selected index is which by description
    let graph = PersonalizationGraph::build(graph_profile);
    let q = parse_query("select title from MOVIE").unwrap();
    let qc = QueryContext::from_query(db.catalog(), &q).unwrap();
    let selected = fakecrit(&graph, &qc, SelectionCriterion::TopK(3)).unwrap();
    let idx_of = |needle: &str| {
        selected
            .iter()
            .position(|s| s.describe(graph_profile, db.catalog()).contains(needle))
            .unwrap()
    };
    let comedy = idx_of("comedy");
    let musical = idx_of("musical");
    let year = idx_of("year");

    for t in &answer.tuples {
        let mid = t.tuple_id.unwrap() as i64; // rowid == mid here
        let (is_comedy, no_musical, recent) = truth(mid);
        assert_eq!(t.satisfied.contains(&comedy), is_comedy, "movie {mid} comedy");
        assert_eq!(t.satisfied.contains(&musical), no_musical, "movie {mid} musical-absence");
        assert_eq!(t.satisfied.contains(&year), recent, "movie {mid} year");
    }
}

#[test]
fn l1_includes_every_qualifying_movie() {
    let answer = run(1, RankingKind::Inflationary);
    // every movie satisfies ≥ 1: comedies 0-4; non-musical 0-2,7-9; recent 6-9
    // movie 5: not comedy, musical (3..=6), year 1995 → satisfies nothing? 5: year 1995 < 2000,
    // genre musical only → fails all three → excluded.
    let ids: Vec<i64> = answer.tuples.iter().map(|t| t.tuple_id.unwrap() as i64).collect();
    assert!(!ids.contains(&5), "movie 5 satisfies nothing");
    assert_eq!(answer.len(), 9);
}

#[test]
fn l2_and_l3_shrink_consistently() {
    let a2 = run(2, RankingKind::Inflationary);
    let a3 = run(3, RankingKind::Inflationary);
    // L=2: movies satisfying ≥2 prefs: 0,1,2 (comedy+¬musical), 3,4 (comedy only → 1)…
    // check by ground truth
    for t in &a2.tuples {
        let (a, b, c) = truth(t.tuple_id.unwrap() as i64);
        assert!([a, b, c].iter().filter(|x| **x).count() >= 2);
    }
    for t in &a3.tuples {
        let (a, b, c) = truth(t.tuple_id.unwrap() as i64);
        assert_eq!([a, b, c].iter().filter(|x| **x).count(), 3);
    }
    // membership: L=3 ⊆ L=2
    let ids2: std::collections::HashSet<u64> =
        a2.tuples.iter().map(|t| t.tuple_id.unwrap()).collect();
    for t in &a3.tuples {
        assert!(ids2.contains(&t.tuple_id.unwrap()));
    }
}

#[test]
fn emission_order_respects_doi_for_every_ranking() {
    for kind in RankingKind::ALL {
        let answer = run(1, kind);
        for w in answer.tuples.windows(2) {
            assert!(
                w[0].doi >= w[1].doi - 1e-9,
                "{kind:?}: {} before {}",
                w[0].doi,
                w[1].doi
            );
        }
    }
}

#[test]
fn doi_values_match_direct_computation() {
    let db = tiny_db();
    let p = profile(&db);
    let graph = PersonalizationGraph::build(&p);
    let q = parse_query("select title from MOVIE").unwrap();
    let qc = QueryContext::from_query(db.catalog(), &q).unwrap();
    let selected = fakecrit(&graph, &qc, SelectionCriterion::TopK(3)).unwrap();
    let ranking = Ranking::new(RankingKind::Dominant, MixedKind::Sum);
    let mut engine = Engine::new();
    let (answer, _) = ppa(&db, &mut engine, &q, &p, &selected, 1, &ranking).unwrap();
    for t in &answer.tuples {
        let pos: Vec<f64> = t.satisfied.iter().map(|&i| selected[i].d_plus_peak(&p)).collect();
        let neg: Vec<f64> = t
            .failed
            .iter()
            .map(|&i| selected[i].d_minus(&p))
            .filter(|d| *d < 0.0)
            .collect();
        let expect = ranking.mixed(&pos, &neg);
        assert!((t.doi - expect).abs() < 1e-9, "movie {:?}", t.tuple_id);
    }
}

#[test]
fn step3_tuples_satisfying_only_absence_appear() {
    // With only the absence preference selected (K = 1, L = 1), movies
    // never touched by the absence query (non-musicals) must appear via
    // step 3 with the absence preference satisfied.
    let db = tiny_db();
    let p = Profile::parse(
        db.catalog(),
        "doi(GENRE.genre = 'musical') = (-0.6, 0)\n\
         doi(MOVIE.mid = GENRE.mid) = (0.9)\n",
    )
    .unwrap();
    let graph = PersonalizationGraph::build(&p);
    let q = parse_query("select title from MOVIE").unwrap();
    let qc = QueryContext::from_query(db.catalog(), &q).unwrap();
    let selected = fakecrit(&graph, &qc, SelectionCriterion::TopK(1)).unwrap();
    assert_eq!(selected.len(), 1);
    let mut engine = Engine::new();
    let ranking = Ranking::default();
    let (answer, stats) = ppa(&db, &mut engine, &q, &p, &selected, 1, &ranking).unwrap();
    // movies 3..=6 are musicals (fail); the others satisfy by absence
    let ids: Vec<i64> = answer.tuples.iter().map(|t| t.tuple_id.unwrap() as i64).collect();
    assert_eq!(ids.len(), 6, "{ids:?}");
    for id in [0, 1, 2, 7, 8, 9] {
        assert!(ids.contains(&id), "movie {id} missing from {ids:?}");
    }
    // pure absence run: no presence queries at all
    assert_eq!(stats.presence_queries, 0);
    assert_eq!(stats.absence_queries, 1);
}

#[test]
fn early_termination_skips_unreachable_l() {
    // L larger than what remaining queries can satisfy stops the run
    // quickly and returns empty.
    let db = tiny_db();
    let p = Profile::parse(
        db.catalog(),
        "doi(MOVIE.year >= 2000) = (0.5, 0)\n\
         doi(MOVIE.year < 1975) = (0.4, 0)\n",
    )
    .unwrap();
    let graph = PersonalizationGraph::build(&p);
    let q = parse_query("select title from MOVIE").unwrap();
    let qc = QueryContext::from_query(db.catalog(), &q).unwrap();
    let selected = fakecrit(&graph, &qc, SelectionCriterion::TopK(2)).unwrap();
    let mut engine = Engine::new();
    // the two presence regions are disjoint: no movie satisfies both
    let (answer, _) =
        ppa(&db, &mut engine, &q, &p, &selected, 2, &Ranking::default()).unwrap();
    assert!(answer.is_empty());
}

#[test]
fn duplicate_tuples_processed_once() {
    // a movie with two comedy-adjacent genres still yields one answer
    // tuple (the sub-queries are DISTINCT and PPA dedups by tuple id)
    let mut db = tiny_db();
    db.insert_by_name("GENRE", vec![Value::Int(0), Value::str("drama")]).unwrap();
    let p = profile(&db);
    let graph = PersonalizationGraph::build(&p);
    let q = parse_query("select title from MOVIE").unwrap();
    let qc = QueryContext::from_query(db.catalog(), &q).unwrap();
    let selected = fakecrit(&graph, &qc, SelectionCriterion::TopK(3)).unwrap();
    let mut engine = Engine::new();
    let (answer, _) =
        ppa(&db, &mut engine, &q, &p, &selected, 1, &Ranking::default()).unwrap();
    let count0 = answer.tuples.iter().filter(|t| t.tuple_id == Some(0)).count();
    assert_eq!(count0, 1);
}

#[test]
fn initial_query_filters_are_preserved() {
    // personalization never resurrects tuples the initial query excludes
    let db = tiny_db();
    let p = profile(&db);
    let graph = PersonalizationGraph::build(&p);
    let q = parse_query("select title from MOVIE where year >= 1985").unwrap();
    let qc = QueryContext::from_query(db.catalog(), &q).unwrap();
    let selected = fakecrit(&graph, &qc, SelectionCriterion::TopK(3)).unwrap();
    let mut engine = Engine::new();
    let (answer, _) =
        ppa(&db, &mut engine, &q, &p, &selected, 1, &Ranking::default()).unwrap();
    for t in &answer.tuples {
        let mid = t.tuple_id.unwrap() as i64;
        assert!(1970 + 5 * mid >= 1985, "movie {mid} violates the query filter");
    }
}
