//! Property test: any generated profile serializes to the Figure-2 DSL
//! and parses back to an equal profile — the DSL is a faithful,
//! lossless storage format for every preference type.

use std::sync::OnceLock;

use proptest::prelude::*;
use personalized_queries::core::Profile;
use personalized_queries::datagen::{self, ImdbScale, ProfileSpec};
use personalized_queries::storage::Database;

fn shared_db() -> &'static Database {
    static DB: OnceLock<Database> = OnceLock::new();
    DB.get_or_init(|| datagen::generate(ImdbScale { movies: 200, ..ImdbScale::small() }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_profiles_round_trip_through_dsl(
        positive in 0usize..10,
        negative in 0usize..6,
        complex in 0usize..6,
        elastic in 0usize..6,
        seed in 0u64..10_000,
    ) {
        let db = shared_db();
        let spec = ProfileSpec { positive_presence: positive, negative, complex, elastic, seed };
        let profile = datagen::random_profile(db, &spec);
        let dsl = profile.to_dsl(db.catalog());
        let reparsed = Profile::parse(db.catalog(), &dsl)
            .unwrap_or_else(|e| panic!("{e}\n--- dsl ---\n{dsl}"));
        prop_assert_eq!(&profile, &reparsed, "dsl:\n{}", dsl);
    }

    #[test]
    fn als_profile_round_trips_repeatedly(_n in 0u8..4) {
        let db = shared_db();
        let p1 = datagen::als_profile(db).unwrap();
        let p2 = Profile::parse(db.catalog(), &p1.to_dsl(db.catalog())).unwrap();
        let p3 = Profile::parse(db.catalog(), &p2.to_dsl(db.catalog())).unwrap();
        prop_assert_eq!(&p1, &p2);
        prop_assert_eq!(&p2, &p3);
    }
}
