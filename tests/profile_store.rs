//! Profile-store behaviour at the workspace level: cache identity of
//! stored profiles, torn-read safety under concurrent re-registration,
//! and the compact-codec round-trip property over arbitrary generated
//! profiles.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;

use personalized_queries::core::store::codec::{decode_profile, encode_profile};
use personalized_queries::core::store::{ProfileStore, UserId};
use personalized_queries::core::{
    PersonalizationOptions, PersonalizeRequest, Personalizer, SelectionCriterion, STORED_ID_BIT,
};
use personalized_queries::datagen::{self, ImdbScale, ProfilePool, ProfileSpec};
use personalized_queries::storage::{Database, StringDict};

fn shared_db() -> &'static Database {
    static DB: OnceLock<Database> = OnceLock::new();
    DB.get_or_init(|| {
        let db = datagen::generate(ImdbScale { movies: 300, ..ImdbScale::small() });
        db.warm_statistics();
        db
    })
}

fn options() -> PersonalizationOptions {
    PersonalizationOptions { criterion: SelectionCriterion::TopK(6), ..Default::default() }
}

const SQL: &str = "select title from MOVIE";

/// Two handles to the same stored profile decode to the same `Arc` and
/// therefore carry the same `(user_id, version)` cache identity: a
/// selection computed through one is a preference-cache hit through the
/// other. A detached clone gets a fresh ad-hoc id, so it must *not*
/// share those entries — its mutation invisibly diverging from the
/// stored blob is exactly the bug the stored-id split prevents.
#[test]
fn stored_handles_share_cache_entries_but_detached_clones_do_not() {
    let db = shared_db();
    let stored = datagen::random_profile(db, &ProfileSpec::mixed(12, 21));
    let store = Arc::new(ProfileStore::new());
    let uid = UserId(77);
    store.register(uid, &stored).unwrap();

    let p1 = store.get(uid).expect("registered").profile().expect("decodes");
    let p2 = store.get(uid).expect("registered").profile().expect("decodes");
    assert!(Arc::ptr_eq(&p1, &p2), "both handles see the one decoded instance");
    assert_eq!(p1.id(), STORED_ID_BIT | 77);
    assert!(p1.is_stored());

    let mut p = Personalizer::new(db);
    p.set_preference_cache_enabled(true);
    let cold = p.run(PersonalizeRequest::sql(&p1, SQL).options(options())).unwrap();
    assert_eq!(cold.cache.pref_hits, 0);
    let warm = p.run(PersonalizeRequest::sql(&p2, SQL).options(options())).unwrap();
    assert_eq!(warm.cache.pref_hits, 1, "same stored identity shares the cache entry");

    // A detached clone re-keys: same content, different identity. Its
    // run must recompute rather than replay the stored profile's entry,
    // and mutating it must not poison the stored entry either.
    let mut detached = (*p1).clone();
    assert!(!detached.is_stored(), "clones leave the stored id space");
    detached
        .add_selection(
            db.catalog(),
            "MOVIE",
            "year",
            personalized_queries::core::CompareOp::Ge,
            1995,
            personalized_queries::core::Doi::presence(0.5).unwrap(),
        )
        .unwrap();
    let diverged = p.run(PersonalizeRequest::sql(&detached, SQL).options(options())).unwrap();
    assert_eq!(diverged.cache.pref_hits, 0, "a detached clone must not reuse stored entries");
    let replay = p.run(PersonalizeRequest::sql(&p1, SQL).options(options())).unwrap();
    assert_eq!(replay.cache.pref_hits, 1, "the stored entry survived the clone's run");
}

/// Re-registration replaces the entry wholesale: readers racing a
/// version-bumping writer must observe one of the two registered
/// profiles exactly — never a mixture, never a torn decode.
#[test]
fn parallel_readers_never_see_a_torn_profile() {
    let db = shared_db();
    let a = datagen::random_profile(db, &ProfileSpec::positive_only(4, 1));
    let b = datagen::random_profile(db, &ProfileSpec::mixed(16, 2));
    assert_ne!(a, b);

    let store = Arc::new(ProfileStore::new());
    let uid = UserId(5);
    store.register(uid, &a).unwrap();

    const ROUNDS: usize = 300;
    std::thread::scope(|scope| {
        let writer = {
            let store = Arc::clone(&store);
            let (a, b) = (&a, &b);
            scope.spawn(move || {
                for i in 0..ROUNDS {
                    store.register(uid, if i % 2 == 0 { b } else { a }).unwrap();
                }
            })
        };
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let store = Arc::clone(&store);
                let (a, b) = (&a, &b);
                scope.spawn(move || {
                    let mut seen_versions = 0u64;
                    for _ in 0..ROUNDS {
                        let handle = store.get(uid).expect("user never disappears");
                        let profile = handle.profile().expect("blob always decodes");
                        assert!(
                            *profile == *a || *profile == *b,
                            "reader saw a profile that is neither registered version"
                        );
                        assert_eq!(profile.version(), handle.version());
                        seen_versions = seen_versions.max(handle.version());
                    }
                    seen_versions
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            assert!(r.join().unwrap() >= 1, "every reader resolved at least one version");
        }
    });
    assert_eq!(store.get(uid).unwrap().version(), ROUNDS as u64 + 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any generated profile compact-encodes, decodes back to an equal
    /// profile, and re-encodes into a fresh dictionary byte-identically
    /// — the codec is deterministic and lossless for every preference
    /// type the model supports.
    #[test]
    fn compact_codec_round_trips_generated_profiles(
        positive in 0usize..8,
        negative in 0usize..5,
        complex in 0usize..5,
        elastic in 0usize..5,
        seed in 0u64..10_000,
    ) {
        let db = shared_db();
        let spec = ProfileSpec { positive_presence: positive, negative, complex, elastic, seed };
        let profile = datagen::random_profile(db, &spec);

        let mut dict = StringDict::new();
        let mut blob = Vec::new();
        encode_profile(&profile, &mut dict, &mut blob);
        let decoded = decode_profile(&blob, &dict, 9, 3).expect("decodes");
        prop_assert_eq!(&profile, &decoded, "decode must preserve every preference");
        prop_assert_eq!(decoded.id(), STORED_ID_BIT | 9);
        prop_assert_eq!(decoded.version(), 3);

        let mut dict2 = StringDict::new();
        let mut blob2 = Vec::new();
        encode_profile(&decoded, &mut dict2, &mut blob2);
        prop_assert_eq!(&blob, &blob2, "re-encode into a fresh dict is byte-identical");
    }

    /// The pooled (million-scale) generator goes through the same codec
    /// unharmed, and registration round-trips via the store itself.
    #[test]
    fn pooled_profiles_round_trip_through_the_store(user in 0u64..100_000, prefs in 0usize..16) {
        let db = shared_db();
        static POOL: OnceLock<ProfilePool> = OnceLock::new();
        let pool = POOL.get_or_init(|| ProfilePool::build(db));
        let profile = pool.profile(db.catalog(), user, prefs);

        let store = ProfileStore::new();
        let uid = UserId(user);
        store.register(uid, &profile).unwrap();
        let decoded = store.get(uid).expect("registered").profile().expect("decodes");
        prop_assert_eq!(&profile, &*decoded);
    }
}
