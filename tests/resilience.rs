//! Serving-resilience integration: the circuit breaker trips on
//! sustained unhealth and recovers through a half-open probe, the
//! admission controller sheds excess load as a typed error, a forced-open
//! breaker serves degraded answers deterministically, and a
//! [`SnapshotStore`]-backed personalizer pins one database epoch per
//! request while writers publish updates.
//!
//! Every breaker in this file uses an explicit [`BreakerConfig`] with
//! `forced_open` pinned, so the assertions hold regardless of the
//! `QP_BREAKER_FORCE_OPEN` environment (check.sh re-runs this suite with
//! it set).

use std::sync::Arc;
use std::time::Duration;

use qp_core::{
    AdmissionConfig, AnswerAlgorithm, BreakerConfig, BreakerState, DegradeEvent,
    PersonalizationOptions, PersonalizeRequest, Personalizer, PrefError, Profile, Resilience,
    SelectionCriterion,
};
use qp_exec::QueryGuard;
use qp_obs::{MemoryRecorder, Tracer};
use qp_storage::{Attribute, DataType, Database, SnapshotStore, Value};

fn movies_db() -> Database {
    let mut db = Database::new();
    db.create_relation(
        "MOVIE",
        vec![
            Attribute::new("mid", DataType::Int),
            Attribute::new("title", DataType::Text),
            Attribute::new("year", DataType::Int),
        ],
        &["mid"],
    )
    .unwrap();
    db.create_relation(
        "GENRE",
        vec![Attribute::new("mid", DataType::Int), Attribute::new("genre", DataType::Text)],
        &["mid", "genre"],
    )
    .unwrap();
    for (mid, t, y) in [
        (1, "Annie Hall", 1977),
        (2, "Manhattan", 1979),
        (3, "Zelig", 1983),
        (4, "Heat", 1995),
        (5, "Chicago", 2002),
    ] {
        db.insert_by_name("MOVIE", vec![Value::Int(mid), Value::str(t), Value::Int(y)]).unwrap();
    }
    for (mid, g) in [(1, "comedy"), (2, "comedy"), (3, "comedy"), (4, "thriller"), (5, "musical")]
    {
        db.insert_by_name("GENRE", vec![Value::Int(mid), Value::str(g)]).unwrap();
    }
    db
}

fn profile(db: &Database) -> Profile {
    Profile::parse(
        db.catalog(),
        "doi(MOVIE.year < 1980) = (0.8, 0)\n\
         doi(GENRE.genre = 'musical') = (-0.9, 0.7)\n\
         doi(MOVIE.mid = GENRE.mid) = (0.9)\n",
    )
    .unwrap()
}

fn options() -> PersonalizationOptions {
    PersonalizationOptions {
        criterion: SelectionCriterion::TopK(3),
        l: 1,
        algorithm: AnswerAlgorithm::Ppa,
        ..Default::default()
    }
}

/// A breaker config that trips fast, probes fast, and ignores the
/// `QP_BREAKER_FORCE_OPEN` environment.
fn test_breaker() -> BreakerConfig {
    BreakerConfig {
        window: 8,
        min_samples: 2,
        trip_ratio: 0.5,
        cooldown: Duration::from_millis(40),
        forced_open: false,
    }
}

/// An immediately-expired guard: PPA degrades with a deadline cut, which
/// is the breaker's failure signal.
fn expired_guard() -> QueryGuard {
    QueryGuard::builder().deadline(Duration::ZERO).build()
}

#[test]
fn breaker_trips_short_circuits_and_recovers() {
    let db = movies_db();
    let profile = profile(&db);
    let recorder = Arc::new(MemoryRecorder::new());
    let mut p = Personalizer::new(&db);
    p.set_tracer(Tracer::new(recorder.clone()));
    p.set_resilience(Some(Arc::new(Resilience::new().with_breaker(test_breaker()))));

    // Two deadline-tripped runs: both degrade (PPA cuts at the deadline),
    // and the second one trips the breaker open.
    for _ in 0..2 {
        let out = p
            .run(PersonalizeRequest::sql(&profile, "select title from MOVIE")
                .options(options())
                .guard(expired_guard()))
            .unwrap();
        assert!(!out.is_complete(), "a zero deadline must cut the run");
    }
    let breaker = Arc::clone(p.resilience().unwrap());
    let breaker = breaker.breaker.as_ref().unwrap();
    assert_eq!(breaker.state(), BreakerState::Open, "2/2 failures past min_samples");

    // While open, requests short-circuit into the degraded path: the
    // unpersonalized answer, with the substitution on the record.
    let out = p
        .run(PersonalizeRequest::sql(&profile, "select title from MOVIE").options(options()))
        .unwrap();
    assert!(out.resilience.short_circuited);
    assert!(!out.resilience.probe);
    assert_eq!(out.answer().len(), 5, "the degraded answer is the plain query's rows");
    assert!(out.answer().tuples.iter().all(|t| t.doi == 0.0), "unpersonalized: doi 0");
    assert!(
        out.degradation().events.iter().any(|e| matches!(
            e,
            DegradeEvent::Fallback { stage, .. } if stage == "breaker"
        )),
        "breaker substitution is reported, not silent: {:?}",
        out.degradation()
    );

    // After the cooldown, exactly one request runs as the half-open
    // probe; it succeeds (no deadline this time) and closes the breaker.
    std::thread::sleep(Duration::from_millis(50));
    let out = p
        .run(PersonalizeRequest::sql(&profile, "select title from MOVIE").options(options()))
        .unwrap();
    assert!(out.resilience.probe, "first post-cooldown request is the probe");
    assert!(!out.resilience.short_circuited);
    assert!(out.is_complete());
    assert_eq!(breaker.state(), BreakerState::Closed, "successful probe closes the breaker");

    // Fully recovered: the next run is an ordinary complete one.
    let out = p
        .run(PersonalizeRequest::sql(&profile, "select title from MOVIE").options(options()))
        .unwrap();
    assert!(out.is_complete() && !out.resilience.probe && !out.resilience.short_circuited);

    // The life cycle is observable: state-change events and counters.
    let events: Vec<String> = recorder.events().into_iter().map(|e| e.name).collect();
    assert!(events.iter().any(|e| e == "breaker.open"), "{events:?}");
    assert!(events.iter().any(|e| e == "breaker.half_open"), "{events:?}");
    assert!(events.iter().any(|e| e == "breaker.close"), "{events:?}");
    assert!(events.iter().any(|e| e == "breaker.short_circuit"), "{events:?}");
    assert_eq!(p.metrics().counter("breaker.opened").get(), 1);
    assert_eq!(p.metrics().counter("breaker.closed").get(), 1);
    assert!(p.metrics().counter("breaker.short_circuited").get() >= 1);
}

#[test]
fn admission_sheds_overload_as_a_typed_error() {
    let db = movies_db();
    let profile = profile(&db);
    let mut p = Personalizer::new(&db);
    let bundle = Arc::new(Resilience::new().with_admission(AdmissionConfig {
        max_inflight: 1,
        max_queue_wait: Duration::from_millis(5),
    }));
    p.set_resilience(Some(Arc::clone(&bundle)));

    // Occupy the only permit, as a concurrent request would.
    let permit = bundle.admission.as_ref().unwrap().try_acquire().unwrap();
    let err = p
        .run(PersonalizeRequest::sql(&profile, "select title from MOVIE").options(options()))
        .expect_err("the full controller must shed");
    match err {
        PrefError::Overloaded { in_flight, .. } => assert_eq!(in_flight, 1),
        other => panic!("expected Overloaded, got {other}"),
    }
    assert_eq!(p.metrics().counter("admission.shed").get(), 1);

    // Releasing the permit re-opens the door.
    drop(permit);
    let out = p
        .run(PersonalizeRequest::sql(&profile, "select title from MOVIE").options(options()))
        .unwrap();
    assert!(out.is_complete());
    assert_eq!(p.metrics().counter("admission.admitted").get(), 1);
}

#[test]
fn forced_open_breaker_serves_degraded_answers_deterministically() {
    let db = movies_db();
    let profile = profile(&db);
    let mut p = Personalizer::new(&db);
    let mut config = test_breaker();
    config.forced_open = true;
    p.set_resilience(Some(Arc::new(Resilience::new().with_breaker(config))));

    for _ in 0..3 {
        let out = p
            .run(PersonalizeRequest::sql(&profile, "select title from MOVIE").options(options()))
            .unwrap();
        assert!(out.resilience.short_circuited, "forced-open never lets a request through");
        assert!(!out.resilience.probe, "forced-open never probes");
        assert_eq!(out.answer().len(), 5);
        assert!(!out.is_complete());
    }
}

#[test]
fn serving_personalizer_pins_one_epoch_per_request() {
    let store = Arc::new(SnapshotStore::new(movies_db()));
    let profile = {
        let snap = store.snapshot();
        profile(&snap)
    };
    let mut p = Personalizer::serving(Arc::clone(&store));
    // This test asserts on hit/miss bookkeeping, so it forces both caches
    // on: the check.sh sweep re-runs the suite with
    // QP_DISABLE_PLAN_CACHE/QP_DISABLE_PREF_CACHE set, and this test must
    // describe the caches, not the environment.
    p.set_plan_cache_enabled(true);
    p.set_preference_cache_enabled(true);

    let first = p
        .run(PersonalizeRequest::sql(&profile, "select title from MOVIE").options(options()))
        .unwrap();
    // Chicago (2002, musical) satisfies none of the three preferences at
    // L = 1, so the personalized answer holds the other four movies.
    assert_eq!(first.answer().len(), 4);
    assert_eq!(first.cache.pref_misses, 1, "cold preference cache");

    let warm = p
        .run(PersonalizeRequest::sql(&profile, "select title from MOVIE").options(options()))
        .unwrap();
    assert_eq!(warm.cache.pref_hits, 1, "same profile version: selection memoized");
    assert_eq!(warm.cache.plan_hits, first.cache.plan_misses, "every compiled plan re-hit");

    // Publish a new epoch while the personalizer keeps serving.
    let v_before = p.db().version();
    store
        .update(|db| {
            db.insert_by_name(
                "MOVIE",
                vec![Value::Int(6), Value::str("Sleeper"), Value::Int(1973)],
            )
            .map(|_| ())
        })
        .unwrap();
    assert!(p.db().version() > v_before, "the personalizer sees the new epoch");

    let after = p
        .run(PersonalizeRequest::sql(&profile, "select title from MOVIE").options(options()))
        .unwrap();
    assert_eq!(after.answer().len(), 5, "the new epoch's row is served");
    assert!(
        after.answer().tuples.iter().any(|t| t.row.iter().any(|v| v == &Value::str("Sleeper"))),
        "the inserted movie appears"
    );
    assert_eq!(
        after.cache.plan_hits, 0,
        "(db id, version) plan keys invalidate naturally on publish"
    );
    assert_eq!(after.cache.pref_hits, 1, "selection depends on the catalog, not the rows");
}

#[test]
fn concurrent_publishes_never_tear_served_answers() {
    // Writers insert rows in pairs; every served answer must observe the
    // initial 5 rows plus a whole number of pairs.
    let store = Arc::new(SnapshotStore::new(movies_db()));
    let empty = Profile::new(); // no preferences: the plain answer path
    std::thread::scope(|scope| {
        for w in 0..2i64 {
            let store = Arc::clone(&store);
            scope.spawn(move || {
                for i in 0..12 {
                    let base = 100 + w * 100 + i * 2;
                    store
                        .update(|db| {
                            db.insert_by_name(
                                "MOVIE",
                                vec![Value::Int(base), Value::str("a"), Value::Int(1990)],
                            )?;
                            db.insert_by_name(
                                "MOVIE",
                                vec![Value::Int(base + 1), Value::str("b"), Value::Int(1991)],
                            )
                            .map(|_| ())
                        })
                        .unwrap();
                }
            });
        }
        for _ in 0..3 {
            let store = Arc::clone(&store);
            let empty = &empty;
            scope.spawn(move || {
                let mut p = Personalizer::serving(store);
                for _ in 0..40 {
                    let out = p
                        .run(PersonalizeRequest::sql(empty, "select title from MOVIE"))
                        .unwrap();
                    let n = out.answer().len();
                    assert!(out.is_complete());
                    assert!(
                        n >= 5 && (n - 5).is_multiple_of(2),
                        "torn read: {n} rows observed mid-publish"
                    );
                }
            });
        }
    });
    let final_count = Personalizer::serving(Arc::clone(&store))
        .run(PersonalizeRequest::sql(&Profile::new(), "select title from MOVIE"))
        .unwrap()
        .answer()
        .len();
    assert_eq!(final_count, 5 + 2 * 24, "all published pairs are visible at the end");
}
