//! Wire-level lifecycle tests for `qp-server`, driven through
//! `qp-client` and raw TCP streams via the `qp_server::testsupport`
//! fixture.
//!
//! The tests in the root module need no fault injection and run under
//! plain `cargo test`. The `chaos` module arms failpoints and only
//! compiles with `--features failpoints`; run it single-threaded
//! (`-- --test-threads=1`) because failpoint sites are process-global
//! and the plain tests here would otherwise observe armed sites.

use std::io::{Read, Write};
use std::time::Duration;

use qp_client::{wire, Client, DeltaSpec, ErrorCode, Json, PersonalizeCall, Response};
use qp_server::testsupport::{als_profile_dsl, quick_config, wait_for, TestServer};
use qp_server::{assert_server_error, ServerConfig};

/// Reads one response frame off a raw stream.
fn read_response(raw: &mut std::net::TcpStream) -> Response {
    raw.set_read_timeout(Some(Duration::from_secs(5))).expect("set timeout");
    let frame = wire::read_frame(raw, wire::DEFAULT_MAX_FRAME).expect("response frame");
    Response::from_json(&frame).expect("well-formed response")
}

/// Asserts the server closed the stream: the next read yields EOF (or a
/// reset) rather than data.
fn assert_stream_closed(raw: &mut std::net::TcpStream) {
    raw.set_read_timeout(Some(Duration::from_secs(5))).expect("set timeout");
    let mut buf = [0u8; 1];
    match raw.read(&mut buf) {
        Ok(0) => {}
        Ok(_) => panic!("expected the server to close the connection, got more data"),
        Err(e) => assert!(
            !matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut),
            "expected close, got timeout: {e}"
        ),
    }
}

#[test]
fn clean_request_response_roundtrip() {
    let mut ts = TestServer::spawn();
    let mut client = ts.client();
    client.ping().expect("ping");

    let dsl = als_profile_dsl(&ts.store().snapshot());
    let reg = client.register_profile("al", &dsl).expect("register profile");
    assert!(reg.preferences > 0, "Al's profile has preferences");
    assert_eq!(reg.version, 1, "first registration is version 1");

    let answer = client
        .personalize(PersonalizeCall::new("al", "select title from MOVIE").k(4).l(1))
        .expect("personalize");
    assert_eq!(answer.columns, vec!["title".to_string()]);
    assert!(!answer.tuples.is_empty(), "personalized answer has tuples");
    assert!(
        answer.tuples.windows(2).all(|w| w[0].doi >= w[1].doi),
        "tuples arrive best-first"
    );
    assert!(answer.tuples.iter().all(|t| matches!(t.row[0], Json::Str(_))));

    let stats = client.stats().expect("stats");
    let responses = stats
        .iter()
        .find(|(name, _)| name == "server.responses")
        .and_then(|(_, v)| v.as_u64())
        .expect("server.responses counter");
    assert!(responses >= 3, "ping + register + personalize all counted: {responses}");

    ts.shutdown();
}

#[test]
fn typed_request_errors_keep_the_connection_usable() {
    let mut ts = TestServer::spawn();
    let mut client = ts.client();

    assert_server_error!(
        client.personalize(PersonalizeCall::new("nobody", "select title from MOVIE")),
        ErrorCode::UnknownUser
    );
    assert_server_error!(
        client.register_profile("al", "doi(NOPE.not_a_column = 'x') = (0.5, 0)"),
        ErrorCode::BadRequest
    );
    let dsl = als_profile_dsl(&ts.store().snapshot());
    client.register_profile("al", &dsl).expect("register after errors");
    assert_server_error!(
        client.personalize(
            PersonalizeCall::new("al", "select title from MOVIE").algorithm("quantum")
        ),
        ErrorCode::BadRequest
    );
    // A typed error never poisons the connection.
    client.ping().expect("connection still usable");
    ts.shutdown();
}

#[test]
fn malformed_frame_poisons_only_its_connection() {
    let mut ts = TestServer::spawn();
    let mut raw = ts.raw_stream();
    let garbage = b"this is not json";
    raw.write_all(&(garbage.len() as u32).to_be_bytes()).expect("header");
    raw.write_all(garbage).expect("payload");

    match read_response(&mut raw) {
        Response::Error(e) => {
            assert_eq!(e.code, ErrorCode::BadFrame);
            assert!(!e.retryable);
        }
        other => panic!("expected bad_frame, got {other:?}"),
    }
    assert_stream_closed(&mut raw);
    assert_eq!(ts.counter("server.frames.malformed"), 1);

    // Only that connection died; the server keeps serving.
    ts.client().ping().expect("fresh connection works");
    ts.shutdown();
}

#[test]
fn oversized_frame_is_rejected_from_the_header_alone() {
    let mut ts = TestServer::spawn();
    let mut raw = ts.raw_stream();
    // Declare a 64 MiB payload and send none of it: the rejection must
    // come from the header, not from reading our (nonexistent) payload.
    raw.write_all(&(64u32 * 1024 * 1024).to_be_bytes()).expect("header");

    match read_response(&mut raw) {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::FrameTooLarge),
        other => panic!("expected frame_too_large, got {other:?}"),
    }
    assert_stream_closed(&mut raw);
    assert_eq!(ts.counter("server.frames.too_large"), 1);

    ts.client().ping().expect("fresh connection works");
    ts.shutdown();
}

#[test]
fn oversized_answer_is_a_typed_error_not_an_oversized_frame() {
    // The frame limit binds writes too: a broad personalized answer that
    // encodes past max_frame must come back as a typed error the client
    // can parse, never as a frame the client is entitled to refuse.
    let mut ts = TestServer::spawn_with(ServerConfig {
        max_frame: 2048,
        ..quick_config()
    });
    let dsl = als_profile_dsl(&ts.store().snapshot());
    let mut client = ts.client();
    client.register_profile("al", &dsl).expect("register");

    let e = assert_server_error!(
        client.personalize(PersonalizeCall::new("al", "select title from MOVIE").k(4)),
        ErrorCode::AnswerTooLarge
    );
    assert!(!e.retryable, "shrinking the answer needs a different query, not a retry");
    assert_eq!(ts.counter("server.responses.too_large"), 1);

    // The connection stays usable, and a narrow answer still fits.
    client.ping().expect("connection survives the oversized answer");
    let answer = client
        .personalize(PersonalizeCall::new("al", "select M.title from MOVIE M where M.mid = 1"))
        .expect("narrow answer fits the frame limit");
    assert!(answer.tuples.len() <= 1);
    ts.shutdown();
}

#[test]
fn client_disconnect_mid_frame_leaves_the_server_up() {
    let mut ts = TestServer::spawn();
    {
        let mut raw = ts.raw_stream();
        // Promise 100 payload bytes, deliver 10, hang up.
        raw.write_all(&100u32.to_be_bytes()).expect("header");
        raw.write_all(&[b'{'; 10]).expect("partial payload");
    } // dropped: the server sees EOF inside the frame

    wait_for(Duration::from_secs(5), "torn frame to be noticed", || {
        ts.counter("server.connections.read_errors") >= 1
    });
    ts.client().ping().expect("server survived the torn frame");
    ts.shutdown();
}

#[test]
fn stalled_client_hits_the_io_deadline() {
    let mut ts = TestServer::spawn_with(ServerConfig {
        io_timeout: Duration::from_millis(150),
        ..quick_config()
    });
    let mut raw = ts.raw_stream();
    // Send a header, then stall instead of the promised payload: the
    // body read must time out under io_timeout and close the connection.
    raw.write_all(&50u32.to_be_bytes()).expect("header");
    assert_stream_closed(&mut raw);
    assert!(ts.counter("server.connections.idle_closed") >= 1);

    ts.client().ping().expect("server survived the stall");
    ts.shutdown();
}

#[test]
fn idle_connection_is_reaped() {
    let mut ts = TestServer::spawn_with(ServerConfig {
        idle_timeout: Duration::from_millis(120),
        ..quick_config()
    });
    let mut raw = ts.raw_stream();
    // Send nothing at all; the idle timeout reaps the connection.
    assert_stream_closed(&mut raw);
    wait_for(Duration::from_secs(5), "idle close to be counted", || {
        ts.counter("server.connections.idle_closed") >= 1
    });
    ts.shutdown();
}

#[test]
fn accept_queue_sheds_connections_over_the_bound() {
    let mut ts = TestServer::spawn_with(ServerConfig {
        max_connections: 1,
        ..quick_config()
    });
    let mut first = ts.client();
    first.ping().expect("first connection admitted");

    let mut second = ts.client();
    let e = assert_server_error!(second.ping(), ErrorCode::Overloaded);
    assert!(e.retryable, "connection-level shed is retryable");
    assert_eq!(ts.counter("server.connections.shed"), 1);

    // The admitted connection is unaffected, and closing it frees the slot.
    first.ping().expect("first connection still fine");
    drop(first);
    wait_for(Duration::from_secs(5), "slot to free", || ts.server().open_connections() == 0);
    ts.client().ping().expect("slot freed after disconnect");
    ts.shutdown();
}

#[test]
fn admission_sheds_before_parsing_the_request() {
    // max_inflight 0: every frame is shed. The proof that shedding
    // happens pre-parse: a frame whose JSON would be a bad_request still
    // comes back overloaded.
    let mut ts = TestServer::spawn_with(ServerConfig {
        admission: qp_core::AdmissionConfig {
            max_inflight: 0,
            max_queue_wait: Duration::ZERO,
        },
        ..quick_config()
    });
    let mut raw = ts.raw_stream();
    let junk_op = "{\"op\":\"no_such_operation\"}";
    raw.write_all(&(junk_op.len() as u32).to_be_bytes()).expect("header");
    raw.write_all(junk_op.as_bytes()).expect("payload");
    match read_response(&mut raw) {
        Response::Error(e) => {
            assert_eq!(e.code, ErrorCode::Overloaded, "shed before parse, not bad_request");
            assert!(e.retryable);
        }
        other => panic!("expected overloaded, got {other:?}"),
    }

    // The shed did not poison the connection: the next frame gets its
    // own (also shed) answer on the same stream.
    let mut client = ts.client();
    assert_server_error!(client.ping(), ErrorCode::Overloaded);
    assert!(ts.counter("server.shed") >= 2);
    ts.shutdown();
}

#[test]
fn publish_delta_maintains_materialized_results_across_epochs() {
    let mut ts = TestServer::spawn();
    let mut client = ts.client();
    let dsl = als_profile_dsl(&ts.store().snapshot());
    let reg = client.register_profile("al", &dsl).expect("register");

    // Warm the server's materialization registry with one PPA run.
    let call = || reg.call("select title from MOVIE").k(4).l(1).algorithm("ppa");
    client.personalize(call()).expect("warm run");

    // Publish a small write: one fresh movie plus its genre row.
    let receipt = client
        .publish_delta(
            DeltaSpec::new()
                .insert(
                    "MOVIE",
                    vec![
                        Json::num(900_000.0),
                        Json::str("Fresh Epoch"),
                        Json::num(1975.0),
                        Json::num(95.0),
                    ],
                )
                .insert("GENRE", vec![Json::num(900_000.0), Json::str("comedy")]),
        )
        .expect("publish delta");
    assert!(receipt.new_version > receipt.old_version, "delta produced a new epoch");
    assert_eq!(receipt.rows_inserted, 2);
    assert_eq!(receipt.rows_deleted, 0);
    assert!(
        receipt.patched + receipt.carried + receipt.rematerialized > 0,
        "the warm registry was maintained, not recomputed away: {receipt:?}"
    );

    // The same connection keeps personalizing against the new epoch, and
    // a value-addressed delete of the published row round-trips too.
    let after = client.personalize(call()).expect("post-publish personalize");
    assert!(!after.tuples.is_empty());
    let undo = client
        .publish_delta(DeltaSpec::new().delete(
            "MOVIE",
            vec![Json::num(900_000.0), Json::str("Fresh Epoch"), Json::num(1975.0), Json::num(95.0)],
        ))
        .expect("delete the published row");
    assert_eq!(undo.rows_deleted, 1);

    // The maintenance counters are on the wire stats surface.
    let stats = client.stats().expect("stats");
    let counter = |name: &str| {
        stats.iter().find(|(n, _)| n == name).and_then(|(_, v)| v.as_u64()).unwrap_or(0)
    };
    assert_eq!(counter("maint.deltas"), 2);
    assert_eq!(counter("maint.rows_inserted"), 2);
    assert_eq!(counter("maint.rows_deleted"), 1);
    assert_eq!(counter("maint.memo.kept"), 2, "data publishes kept the selection memos");

    ts.shutdown();
}

#[test]
fn rejected_deltas_are_typed_and_change_nothing() {
    let mut ts = TestServer::spawn();
    let mut client = ts.client();
    let version_before = ts.store().snapshot().version();

    // Unknown relation.
    assert_server_error!(
        client.publish_delta(DeltaSpec::new().insert("NOPE", vec![Json::num(1.0)])),
        ErrorCode::DeltaRejected
    );
    // Arity mismatch (MOVIE has four columns).
    assert_server_error!(
        client.publish_delta(DeltaSpec::new().insert("MOVIE", vec![Json::num(1.0)])),
        ErrorCode::DeltaRejected
    );
    // Delete addressing no live tuple.
    assert_server_error!(
        client.publish_delta(DeltaSpec::new().delete(
            "MOVIE",
            vec![Json::num(987_654.0), Json::str("ghost"), Json::num(1900.0), Json::num(90.0)],
        )),
        ErrorCode::DeltaRejected
    );
    // A mixed delta with one bad slice is rejected wholesale: the valid
    // insert must not land.
    assert_server_error!(
        client.publish_delta(
            DeltaSpec::new()
                .insert(
                    "MOVIE",
                    vec![
                        Json::num(900_001.0),
                        Json::str("Half Applied"),
                        Json::num(2001.0),
                        Json::num(100.0),
                    ],
                )
                .insert("NOPE", vec![Json::num(1.0)]),
        ),
        ErrorCode::DeltaRejected
    );

    assert_eq!(
        ts.store().snapshot().version(),
        version_before,
        "rejected deltas never publish an epoch"
    );
    assert_eq!(ts.counter("server.requests.delta_rejected"), 4);
    assert_eq!(ts.counter("maint.deltas"), 0);
    // Typed rejections never poison the connection.
    client.ping().expect("connection still usable");
    ts.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let mut ts = TestServer::spawn();
    let addr = ts.addr();
    let dsl = als_profile_dsl(&ts.store().snapshot());
    ts.client().register_profile("al", &dsl).expect("register");

    let workers: Vec<_> = (0..3)
        .map(|_| {
            std::thread::spawn(move || {
                // The timeout also bounds each response read; three
                // concurrent full scans on a loaded single-CPU host
                // (check.sh runs this under QP_PARALLELISM=4) can hold
                // a response well past a casual deadline, and a worker
                // that gives up early reads as a failed drain here.
                let mut client =
                    Client::connect(addr, Duration::from_secs(60)).expect("connect");
                let mut completed = 0usize;
                for _ in 0..50 {
                    match client
                        .personalize(PersonalizeCall::new("al", "select title from MOVIE").k(3))
                    {
                        Ok(answer) => {
                            assert!(!answer.columns.is_empty());
                            completed += 1;
                        }
                        // Once the drain begins, either a typed
                        // shutting_down error or a severed socket is
                        // sanctioned; anything else is a bug.
                        Err(qp_client::ClientError::Server(e)) => {
                            assert_eq!(e.code, ErrorCode::ShuttingDown, "unexpected: {e}");
                            break;
                        }
                        Err(qp_client::ClientError::Io(_))
                        | Err(qp_client::ClientError::Protocol(_)) => break,
                    }
                }
                completed
            })
        })
        .collect();

    // Gate on a *worker* personalize having completed, not merely on
    // `in_flight > 0`: a request stays on the in-flight counter until
    // its response bytes are written, so the register call above can
    // leave a stale nonzero reading after its client already returned —
    // shutting down on that signal alone can beat the workers out of
    // the accept backlog and RST all of them before any is served.
    wait_for(Duration::from_secs(5), "worker traffic to be in flight", || {
        ts.counter("server.requests.personalize") >= 1 && ts.server().in_flight() > 0
    });
    let report = ts.shutdown();
    assert_eq!(report.aborted, 0, "the drain window covers in-flight requests");

    let completed: usize = workers.into_iter().map(|w| w.join().expect("no panic")).sum();
    assert!(completed > 0, "no worker answer survived the drain");
}

/// Fault-injected lifecycle tests. Compiled only with `--features
/// failpoints`; run single-threaded so the process-global failpoint
/// registry cannot leak armed sites into the plain tests above.
#[cfg(feature = "failpoints")]
mod chaos {
    use super::*;
    use qp_client::ClientError;
    use qp_server::assert_connection_broken;
    use qp_storage::failpoint::{self, FailAction, FailScenario};
    use qp_storage::ChaosPlan;

    #[test]
    fn panicking_handler_is_isolated_to_its_connection() {
        let _scenario = FailScenario::setup();
        let mut ts = TestServer::spawn();
        let dsl = als_profile_dsl(&ts.store().snapshot());
        let mut client = ts.client();
        client.register_profile("al", &dsl).expect("register");

        failpoint::arm("spa.execute", FailAction::Panic("injected handler panic".into()));
        let e = assert_server_error!(
            client.personalize(
                PersonalizeCall::new("al", "select title from MOVIE").algorithm("spa")
            ),
            ErrorCode::Internal
        );
        assert!(e.message.contains("injected handler panic"));
        // The panicking connection is closed...
        assert_connection_broken!(client.ping());
        assert_eq!(ts.counter("server.panics"), 1);

        // ...but the server did not die with it.
        failpoint::clear();
        let mut fresh = ts.client();
        fresh.ping().expect("server survived the panic");
        fresh
            .personalize(PersonalizeCall::new("al", "select title from MOVIE").algorithm("spa"))
            .expect("and still serves answers");
        ts.shutdown();
    }

    #[test]
    fn shutdown_drains_a_deliberately_slow_request() {
        let _scenario = FailScenario::setup();
        let mut ts = TestServer::spawn();
        let addr = ts.addr();
        let dsl = als_profile_dsl(&ts.store().snapshot());
        ts.client().register_profile("al", &dsl).expect("register");

        // Every scan sleeps 300 ms: the request is guaranteed to still
        // be in flight when shutdown starts, and guaranteed to finish
        // inside the 2 s drain window.
        failpoint::arm("exec.scan", FailAction::Delay(300));
        let worker = std::thread::spawn(move || {
            let mut client = Client::connect(addr, Duration::from_secs(10)).expect("connect");
            client.personalize(PersonalizeCall::new("al", "select title from MOVIE").k(2))
        });
        wait_for(Duration::from_secs(5), "slow request to be in flight", || {
            ts.server().in_flight() > 0
        });
        let report = ts.shutdown();
        assert!(report.drained >= 1, "the in-flight request drained: {report:?}");
        assert_eq!(report.aborted, 0);
        worker.join().expect("no panic").expect("drained request completed normally");
    }

    #[test]
    fn network_chaos_soak_terminates_in_sanctioned_states() {
        let _scenario = FailScenario::setup();
        let mut ts = TestServer::spawn_with(ServerConfig {
            io_timeout: Duration::from_secs(1),
            ..quick_config()
        });
        let addr = ts.addr();
        let dsl = als_profile_dsl(&ts.store().snapshot());
        ts.client().register_profile("al", &dsl).expect("register");

        // Wire faults (read/write aborts, torn writes, delays) plus the
        // engine-level serving schedule, all from fixed seeds.
        ChaosPlan::wire_default(0xC0FFEE).arm();
        ChaosPlan::serving_default(7).arm();

        let workers: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut ok = 0usize;
                    let mut typed = 0usize;
                    let mut severed = 0usize;
                    let mut client: Option<Client> = None;
                    for i in 0..40 {
                        if client.is_none() {
                            match Client::connect(addr, Duration::from_secs(5)) {
                                Ok(c) => client = Some(c),
                                Err(_) => {
                                    severed += 1;
                                    continue;
                                }
                            }
                        }
                        let c = client.as_mut().expect("connected above");
                        let algorithm = if (t + i) % 2 == 0 { "ppa" } else { "spa" };
                        match c.personalize(
                            PersonalizeCall::new("al", "select title from MOVIE")
                                .k(3)
                                .algorithm(algorithm),
                        ) {
                            Ok(answer) => {
                                assert!(!answer.columns.is_empty());
                                ok += 1;
                            }
                            Err(ClientError::Server(e)) => {
                                // Typed errors are sanctioned; a panic
                                // leaking out of a handler is not.
                                assert_ne!(
                                    e.code,
                                    ErrorCode::Internal,
                                    "handler panicked under chaos: {e}"
                                );
                                typed += 1;
                            }
                            Err(ClientError::Io(_)) | Err(ClientError::Protocol(_)) => {
                                // Chaos severed the connection (read
                                // abort, torn write); reconnect.
                                severed += 1;
                                client = None;
                            }
                        }
                    }
                    (ok, typed, severed)
                })
            })
            .collect();

        let mut total_ok = 0;
        let mut total_severed = 0;
        for w in workers {
            let (ok, _typed, severed) = w.join().expect("no panic escaped a client thread");
            total_ok += ok;
            total_severed += severed;
        }
        assert!(total_ok > 0, "some requests completed under chaos");
        assert!(total_severed > 0, "the wire chaos actually fired");
        assert_eq!(ts.counter("server.panics"), 0, "no handler panics under error chaos");

        // Disarm and verify the server is fully healthy.
        failpoint::clear();
        let mut fresh = ts.client();
        fresh.ping().expect("server alive after the soak");
        fresh
            .personalize(PersonalizeCall::new("al", "select title from MOVIE").k(3))
            .expect("clean answers after the soak");
        ts.shutdown();
    }
}
