//! Multi-user serving tests: the request/response API, parallel PPA
//! determinism, plan/preference cache lifecycles, shared guard budgets,
//! and store-backed (user-addressed) requests.

use std::sync::Arc;

use personalized_queries::core::{
    AnswerAlgorithm, CompareOp, Doi, PersonalizationOptions, PersonalizeRequest, Personalizer,
    Profile, SelectionCriterion,
};
use personalized_queries::datagen::{self, ImdbScale, ProfileSpec};
use personalized_queries::exec::{Engine, QueryGuard};
use personalized_queries::storage::Database;

fn db() -> Database {
    let db = datagen::generate(ImdbScale { movies: 800, ..ImdbScale::small() });
    db.warm_statistics();
    db
}

/// A mixed profile so both PPA phases (presence rounds, absence rounds,
/// and the per-tuple parameterized probes) execute.
fn mixed_profile(db: &Database) -> Profile {
    datagen::random_profile(
        db,
        &ProfileSpec { positive_presence: 8, negative: 3, complex: 0, elastic: 0, seed: 11 },
    )
}

fn ppa_options(k: usize) -> PersonalizationOptions {
    PersonalizationOptions {
        criterion: SelectionCriterion::TopK(k),
        l: 1,
        algorithm: AnswerAlgorithm::Ppa,
        ..Default::default()
    }
}

const SQL: &str = "select title from MOVIE";

/// The cache-lifecycle tests below assert on hit/miss bookkeeping, so
/// they force both caches on: the check.sh sweep re-runs the whole
/// suite with `QP_DISABLE_PLAN_CACHE`/`QP_DISABLE_PREF_CACHE` set, and
/// these tests must describe the caches, not the environment.
fn caching_personalizer(db: &Database) -> Personalizer<'_> {
    let mut p = Personalizer::new(db);
    p.set_plan_cache_enabled(true);
    p.set_preference_cache_enabled(true);
    p
}

#[test]
fn parallel_ppa_answers_are_byte_identical_to_serial() {
    let db = db();
    let profile = mixed_profile(&db);
    let mut serial = None;
    for workers in [1usize, 2, 4, 7] {
        let mut p = Personalizer::new(&db);
        let outcome = p
            .run(PersonalizeRequest::sql(&profile, SQL).options(ppa_options(8)).parallelism(workers))
            .unwrap();
        match &serial {
            None => serial = Some(outcome.report),
            Some(base) => {
                assert_eq!(
                    base.answer, outcome.report.answer,
                    "parallelism={workers} must reproduce the serial answer exactly"
                );
                assert_eq!(base.selected, outcome.report.selected);
            }
        }
    }
}

#[test]
fn plan_cache_hits_repeat_queries_and_invalidates_on_data_change() {
    let mut db = db();
    let mut engine = Engine::new();
    engine.set_plan_cache_enabled(true);
    assert!(engine.plan_cache().is_some(), "enabling installs a plan cache");

    engine.execute_sql(&db, SQL).unwrap();
    engine.execute_sql(&db, SQL).unwrap();
    let cache = engine.plan_cache().unwrap();
    assert_eq!(cache.hits(), 1, "second identical query reuses the plan");
    assert_eq!(cache.misses(), 1);

    // Any mutation bumps the database version, so the stale plan key no
    // longer matches: the next run replans instead of reusing.
    let before = db.version();
    db.insert_by_name(
        "MOVIE",
        vec![
            personalized_queries::storage::Value::Int(999_999),
            personalized_queries::storage::Value::str("Fresh Film"),
            personalized_queries::storage::Value::Int(2026),
            personalized_queries::storage::Value::Int(100),
        ],
    )
    .unwrap();
    assert!(db.version() > before, "writes bump the database version");
    engine.execute_sql(&db, SQL).unwrap();
    assert_eq!(cache.hits(), 1, "post-write run must not reuse the stale plan");
    assert_eq!(cache.misses(), 2);
}

#[test]
fn outcome_reports_cache_activity_per_run() {
    let db = db();
    let profile = mixed_profile(&db);
    let mut p = caching_personalizer(&db);

    let cold = p.run(PersonalizeRequest::sql(&profile, SQL).options(ppa_options(6))).unwrap();
    assert_eq!(cold.cache.plan_hits, 0, "first run has nothing cached");
    assert_eq!(cold.cache.pref_hits, 0);
    assert!(cold.cache.plan_misses > 0);
    assert_eq!(cold.cache.pref_misses, 1);

    let warm = p.run(PersonalizeRequest::sql(&profile, SQL).options(ppa_options(6))).unwrap();
    assert!(warm.cache.plan_hits > 0, "repeat run reuses cached plans: {:?}", warm.cache);
    assert_eq!(warm.cache.pref_hits, 1, "repeat run reuses the cached selection");
    assert_eq!(warm.cache.pref_misses, 0);
    assert_eq!(warm.report.selected, cold.report.selected);

    // Disabling the caches for one request bypasses them without
    // discarding the warm entries.
    let bypassed = p
        .run(
            PersonalizeRequest::sql(&profile, SQL)
                .options(ppa_options(6))
                .plan_cache(false)
                .preference_cache(false),
        )
        .unwrap();
    assert_eq!(bypassed.cache.plan_hits, 0);
    assert_eq!(bypassed.cache.pref_hits, 0);
    let warm_again = p.run(PersonalizeRequest::sql(&profile, SQL).options(ppa_options(6))).unwrap();
    assert_eq!(warm_again.cache.pref_hits, 1, "warm entries survived the bypassed request");
}

#[test]
fn preference_cache_invalidates_on_profile_mutation() {
    let db = db();
    let mut profile = mixed_profile(&db);
    let mut p = caching_personalizer(&db);

    p.run(PersonalizeRequest::sql(&profile, SQL).options(ppa_options(6))).unwrap();
    let warm = p.run(PersonalizeRequest::sql(&profile, SQL).options(ppa_options(6))).unwrap();
    assert_eq!(warm.cache.pref_hits, 1);

    // Mutating the profile bumps its version, so the old cache key no
    // longer matches — the selection must be recomputed, not replayed.
    let v = profile.version();
    profile
        .add_selection(db.catalog(), "MOVIE", "year", CompareOp::Ge, 2020, Doi::presence(0.9).unwrap())
        .unwrap();
    assert!(profile.version() > v, "mutation bumps the profile version");
    let after = p.run(PersonalizeRequest::sql(&profile, SQL).options(ppa_options(6))).unwrap();
    assert_eq!(after.cache.pref_hits, 0, "stale selection must not be replayed");
    assert_eq!(after.cache.pref_misses, 1);
    assert_eq!(after.profile.version, profile.version());
}

#[test]
fn explicit_invalidation_drops_a_profile_from_the_cache() {
    let db = db();
    let profile = mixed_profile(&db);
    let other = datagen::random_profile(
        &db,
        &ProfileSpec { positive_presence: 5, negative: 0, complex: 0, elastic: 0, seed: 99 },
    );
    let mut p = caching_personalizer(&db);
    p.run(PersonalizeRequest::sql(&profile, SQL).options(ppa_options(6))).unwrap();
    p.run(PersonalizeRequest::sql(&other, SQL).options(ppa_options(4))).unwrap();
    assert_eq!(p.preference_cache().unwrap().len(), 2);

    p.invalidate_profile(profile.id());
    assert_eq!(p.preference_cache().unwrap().len(), 1, "only the named profile is dropped");
    let rerun = p.run(PersonalizeRequest::sql(&other, SQL).options(ppa_options(4))).unwrap();
    assert_eq!(rerun.cache.pref_hits, 1, "the other profile's entry survived");
}

#[test]
fn guard_budget_is_shared_across_parallel_workers() {
    let db = db();
    let profile = mixed_profile(&db);
    // An intermediate-row budget small enough that the PPA probes trip it.
    let tight = || QueryGuard::builder().max_intermediate_rows(2_000).build();

    let run = |parallelism: usize| {
        let mut p = Personalizer::new(&db);
        p.run(
            PersonalizeRequest::sql(&profile, SQL)
                .options(ppa_options(10))
                .guard(tight())
                .parallelism(parallelism),
        )
        .unwrap()
    };
    let serial = run(1);
    let parallel = run(4);
    assert!(!serial.is_complete(), "the tight budget must trip the serial run");
    assert!(
        !parallel.is_complete(),
        "workers share one budget: 4 threads must trip the same global limit"
    );

    // Degraded answers are still sound: every emitted tuple appears, in
    // rank order, at the top of the unguarded answer.
    let mut p = Personalizer::new(&db);
    let full = p.run(PersonalizeRequest::sql(&profile, SQL).options(ppa_options(10))).unwrap();
    for outcome in [&serial, &parallel] {
        let n = outcome.answer().tuples.len();
        assert!(n < full.answer().tuples.len());
        assert_eq!(outcome.answer().tuples, full.answer().tuples[..n].to_vec());
    }
}

#[test]
fn shared_personalizer_serves_threads_identically() {
    let db = Arc::new(db());
    let profile = Arc::new(mixed_profile(&db));
    let base = {
        let mut p = Personalizer::shared(db.clone());
        p.run(PersonalizeRequest::sql(&profile, SQL).options(ppa_options(8))).unwrap().report
    };
    let answers: Vec<_> = std::thread::scope(|scope| {
        (0..4)
            .map(|i| {
                let db = db.clone();
                let profile = profile.clone();
                scope.spawn(move || {
                    let mut p = Personalizer::shared(db);
                    p.run(
                        PersonalizeRequest::sql(&profile, SQL)
                            .options(ppa_options(8))
                            .parallelism(1 + i % 3),
                    )
                    .unwrap()
                    .report
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    for report in answers {
        assert_eq!(report.answer, base.answer);
    }
}

/// A user-addressed request resolved through the [`ProfileStore`] agrees
/// with the same query run against the borrowed profile directly.
#[test]
fn store_backed_requests_agree_with_borrowed() {
    use personalized_queries::core::store::{ProfileStore, UserId};
    use std::sync::Arc;

    let db = db();
    let profile = mixed_profile(&db);
    let options = ppa_options(6);

    let mut p = Personalizer::new(&db);
    let via_borrowed =
        p.run(PersonalizeRequest::sql(&profile, SQL).options(options)).unwrap().report;

    let store = Arc::new(ProfileStore::new());
    let uid = UserId(7);
    store.register(uid, &profile).unwrap();
    let mut p = Personalizer::new(&db).with_profile_store(Arc::clone(&store));
    let via_store =
        p.run(PersonalizeRequest::user(uid, SQL).options(options)).unwrap().report;
    assert_eq!(via_store.answer, via_borrowed.answer);
    assert_eq!(via_store.selected.len(), via_borrowed.selected.len());

    // Running the same query again hits the store's selection memo and
    // still yields the identical answer.
    let again = p.run(PersonalizeRequest::user(uid, SQL).options(options)).unwrap().report;
    assert_eq!(again.answer, via_borrowed.answer);
}
