//! Focused behavioral tests for SPA (§5, Example 6) and for the skyline /
//! top-N extensions layered over the answers.

use personalized_queries::core::answer::ppa::ppa_limited;
use personalized_queries::core::answer::spa::{build_spa_query, spa};
use personalized_queries::core::select::{fakecrit::fakecrit, QueryContext, SelectionCriterion};
use personalized_queries::core::{
    skyline, MixedKind, PersonalizationGraph, Profile, Ranking, RankingKind,
};
use personalized_queries::exec::Engine;
use personalized_queries::sql::parse_query;
use personalized_queries::storage::{Attribute, DataType, Database, Value};

fn tiny_db() -> Database {
    let mut db = Database::new();
    db.create_relation(
        "MOVIE",
        vec![
            Attribute::new("mid", DataType::Int),
            Attribute::new("title", DataType::Text),
            Attribute::new("year", DataType::Int),
        ],
        &["mid"],
    )
    .unwrap();
    db.create_relation(
        "GENRE",
        vec![Attribute::new("mid", DataType::Int), Attribute::new("genre", DataType::Text)],
        &["mid", "genre"],
    )
    .unwrap();
    for i in 0..10i64 {
        db.insert_by_name(
            "MOVIE",
            vec![Value::Int(i), Value::str(format!("m{i}")), Value::Int(1970 + 5 * i)],
        )
        .unwrap();
    }
    for i in 0..=4i64 {
        db.insert_by_name("GENRE", vec![Value::Int(i), Value::str("comedy")]).unwrap();
    }
    for i in 3..=6i64 {
        db.insert_by_name("GENRE", vec![Value::Int(i), Value::str("musical")]).unwrap();
    }
    db
}

fn profile(db: &Database) -> Profile {
    Profile::parse(
        db.catalog(),
        "doi(GENRE.genre = 'comedy') = (0.8, 0)\n\
         doi(GENRE.genre = 'musical') = (-0.6, 0)\n\
         doi(MOVIE.year >= 2000) = (0.5, 0)\n\
         doi(MOVIE.mid = GENRE.mid) = (0.9)\n",
    )
    .unwrap()
}

fn selected(
    db: &Database,
    p: &Profile,
) -> Vec<personalized_queries::core::SelectedPreference> {
    let graph = PersonalizationGraph::build(p);
    let q = parse_query("select title from MOVIE").unwrap();
    let qc = QueryContext::from_query(db.catalog(), &q).unwrap();
    fakecrit(&graph, &qc, SelectionCriterion::TopK(3)).unwrap()
}

/// Ground truth per movie i (see tiny_db): comedy iff i ≤ 4, non-musical
/// iff i ∉ 3..=6, recent iff i ≥ 6.
fn truth(i: i64) -> [bool; 3] {
    [i <= 4, !(3..=6).contains(&i), i >= 6]
}

#[test]
fn spa_membership_matches_ground_truth() {
    let db = tiny_db();
    let p = profile(&db);
    let sel = selected(&db, &p);
    let q = parse_query("select title from MOVIE").unwrap();
    for l in 1..=3usize {
        let mut engine = Engine::new();
        let answer = spa(&db, &mut engine, &q, &p, &sel, l, &Ranking::default()).unwrap();
        let got: std::collections::BTreeSet<String> =
            answer.tuples.iter().map(|t| t.row[0].to_string()).collect();
        let expect: std::collections::BTreeSet<String> = (0..10)
            .filter(|&i| truth(i).iter().filter(|x| **x).count() >= l)
            .map(|i| format!("m{i}"))
            .collect();
        assert_eq!(got, expect, "L = {l}");
    }
}

#[test]
fn spa_scores_use_positive_combination_only() {
    // the paper: SPA "cannot rank results based both on preferences ...
    // satisfied and which are not" — scores must come from the positive
    // combination of the satisfied degrees alone
    let db = tiny_db();
    let p = profile(&db);
    let sel = selected(&db, &p);
    let q = parse_query("select title from MOVIE").unwrap();
    let mut engine = Engine::new();
    let answer = spa(
        &db,
        &mut engine,
        &q,
        &p,
        &sel,
        1,
        &Ranking::new(RankingKind::Inflationary, MixedKind::Sum),
    )
    .unwrap();
    // map each title back to its ground truth and recompute
    for t in &answer.tuples {
        let i: i64 = t.row[0].to_string()[1..].parse().unwrap();
        let tr = truth(i);
        // degree per satisfied pref: find by matching description order
        let mut pos = Vec::new();
        for (si, sp) in sel.iter().enumerate() {
            let desc = sp.describe(&p, db.catalog());
            let satisfied = if desc.contains("comedy") {
                tr[0]
            } else if desc.contains("musical") {
                tr[1]
            } else {
                tr[2]
            };
            if satisfied {
                pos.push(sel[si].d_plus_peak(&p));
            }
        }
        let expect = RankingKind::Inflationary.positive(&pos);
        assert!((t.doi - expect).abs() < 1e-9, "movie {i}: {} vs {expect}", t.doi);
    }
}

#[test]
fn spa_statement_round_trips_and_is_self_contained() {
    let db = tiny_db();
    let p = profile(&db);
    let sel = selected(&db, &p);
    let q = parse_query("select title from MOVIE").unwrap();
    let mut engine = Engine::new();
    let built = build_spa_query(&db, &mut engine, &q, &p, &sel, 2).unwrap();
    let sql = built.to_string();
    // one statement, parses back identically
    assert_eq!(qp_sql_parse(&sql), built);
    // and executing the SQL *text* (after registering the rank UDF) gives
    // the same rows as the API call
    personalized_queries::core::answer::spa::register_rank_udf(
        &mut engine,
        RankingKind::Inflationary,
    );
    let via_text = engine.execute_sql(&db, &sql).unwrap();
    let via_api = spa(&db, &mut engine, &q, &p, &sel, 2, &Ranking::default()).unwrap();
    assert_eq!(via_text.len(), via_api.len());
}

fn qp_sql_parse(sql: &str) -> personalized_queries::sql::Query {
    parse_query(sql).unwrap()
}

#[test]
fn spa_multi_column_projection() {
    let db = tiny_db();
    let p = profile(&db);
    let sel = selected(&db, &p);
    let q = parse_query("select title, year from MOVIE").unwrap();
    let mut engine = Engine::new();
    let answer = spa(&db, &mut engine, &q, &p, &sel, 1, &Ranking::default()).unwrap();
    assert_eq!(answer.columns, vec!["title", "year"]);
    for t in &answer.tuples {
        assert_eq!(t.row.len(), 2);
    }
}

#[test]
fn ppa_limited_stops_early_with_correct_prefix() {
    let db = tiny_db();
    let p = profile(&db);
    let sel = selected(&db, &p);
    let q = parse_query("select title from MOVIE").unwrap();
    let ranking = Ranking::default();
    let mut engine = Engine::new();
    let (full, _) = ppa_limited(&db, &mut engine, &q, &p, &sel, 1, &ranking, None).unwrap();
    let mut engine = Engine::new();
    let (top3, _) = ppa_limited(&db, &mut engine, &q, &p, &sel, 1, &ranking, Some(3)).unwrap();
    assert_eq!(top3.len(), 3);
    // the limited run emits exactly the full run's prefix
    for (a, b) in top3.tuples.iter().zip(&full.tuples) {
        assert_eq!(a.tuple_id, b.tuple_id);
        assert!((a.doi - b.doi).abs() < 1e-12);
    }
}

#[test]
fn skyline_of_personalized_answer() {
    let db = tiny_db();
    let p = profile(&db);
    let sel = selected(&db, &p);
    let q = parse_query("select title from MOVIE").unwrap();
    let mut engine = Engine::new();
    let (answer, _) =
        personalized_queries::core::answer::ppa::ppa(&db, &mut engine, &q, &p, &sel, 1, &Ranking::default())
            .unwrap();
    let sky = skyline(&answer, &sel, &p);
    assert!(!sky.is_empty());
    assert!(sky.len() <= answer.len());
    // every skyline tuple is non-dominated: no other answer tuple is at
    // least as good on all three preferences and better on one
    use personalized_queries::core::skyline::{dominates, preference_vector};
    for s in &sky.tuples {
        let vs = preference_vector(s, &sel, &p);
        for o in &answer.tuples {
            let vo = preference_vector(o, &sel, &p);
            assert!(!dominates(&vo, &vs), "{:?} dominated by {:?}", s.tuple_id, o.tuple_id);
        }
    }
    // movies 0-2 satisfy comedy + non-musical but not recent; movies 7-9
    // satisfy non-musical + recent but not comedy → both groups survive
    let ids: Vec<i64> = sky.tuples.iter().map(|t| t.tuple_id.unwrap() as i64).collect();
    assert!(ids.iter().any(|i| *i <= 2), "{ids:?}");
    assert!(ids.iter().any(|i| *i >= 7), "{ids:?}");
}
