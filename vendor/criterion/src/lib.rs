//! Offline stand-in for `criterion`.
//!
//! Provides the API subset the workspace's benchmarks use —
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, and
//! `Bencher::iter` — with a simple measurement loop (median of
//! `sample_size` timed iterations, printed as a table row). No
//! statistical analysis, plotting, or state persistence: the point is
//! that `cargo bench` builds and produces useful relative numbers
//! without network access to crates.io.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: a function name plus a parameter rendering.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id like `name/param`.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId { name: format!("{name}/{param}") }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    samples: usize,
    median: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly and records the median iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // warm-up
        black_box(f());
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            times.push(t0.elapsed());
        }
        times.sort_unstable();
        self.median = times[times.len() / 2];
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'c> {
    prefix: String,
    samples: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: self.samples, median: Duration::ZERO };
        f(&mut b);
        println!("{}/{:<40} median {:>12.3?}", self.prefix, id.to_string(), b.median);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { samples: self.samples, median: Duration::ZERO };
        f(&mut b, input);
        println!("{}/{:<40} median {:>12.3?}", self.prefix, id.to_string(), b.median);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 20 }
    }
}

impl Criterion {
    /// Sets the default per-benchmark sample count.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.samples = n.max(1);
        self
    }

    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        let samples = self.samples;
        BenchmarkGroup { prefix: name.to_string(), samples, _criterion: self }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("smoke");
        let mut runs = 0usize;
        g.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs >= 3);
        g.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("positive", 16).to_string(), "positive/16");
    }
}
