//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the non-poisoning `parking_lot`
//! API surface the workspace uses (`RwLock::read` / `write` returning
//! guards directly). Poisoned locks are recovered rather than
//! propagated, matching `parking_lot`'s behavior of not poisoning.

use std::sync::{self, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with the `parking_lot` calling convention.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Clone> Clone for RwLock<T> {
    fn clone(&self) -> Self {
        RwLock::new(self.read().clone())
    }
}

/// A mutex with the `parking_lot` calling convention.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
