//! Offline stand-in for `proptest`.
//!
//! The build environment has no network access to crates.io, so this
//! vendored shim implements the subset of the `proptest` API the
//! workspace's property tests use: the [`Strategy`] trait with
//! `prop_map` / `prop_filter` / `prop_filter_map` / `prop_recursive`,
//! range and tuple and `&'static str` (mini-regex) strategies,
//! [`collection::vec`], [`option::of`] / [`option::weighted`],
//! [`any`], [`Just`], `prop_oneof!`, and the `proptest!` test-runner
//! macro with `prop_assert*` assertions.
//!
//! Differences from upstream, deliberately accepted for an offline test
//! dependency: no shrinking (failures report the raw inputs), a fixed
//! deterministic seed derived from the test name (runs are exactly
//! reproducible), and a simplified regex dialect for string strategies
//! (character classes and `{m,n}` repetition, which is all the
//! workspace's generators use).

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

// ---------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------

/// Deterministic test RNG (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from a raw value.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed ^ 0x5DEE_CE66_D1CE_4E5B }
    }

    /// A generator seeded from a test name (stable across runs).
    pub fn for_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self::from_seed(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

// ---------------------------------------------------------------------
// Strategy trait and object-safe erasure
// ---------------------------------------------------------------------

/// A generator of test values.
pub trait Strategy: 'static {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + 'static,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `f` returns true (bounded retries).
    fn prop_filter<F>(self, reason: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        Filter { inner: self, reason: reason.into(), f }
    }

    /// Filter and map in one step: `None` values are re-drawn.
    fn prop_filter_map<U, F>(self, reason: impl Into<String>, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U> + 'static,
    {
        FilterMap { inner: self, reason: reason.into(), f }
    }

    /// Builds a recursive strategy: `self` is the leaf case and
    /// `recurse` wraps an inner strategy into the recursive cases.
    /// `depth` bounds the nesting; the size hints are accepted for API
    /// compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            strat = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        strat
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

trait ErasedStrategy<T> {
    fn generate_erased(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn generate_erased(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn ErasedStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_erased(rng)
    }
}

// ---------------------------------------------------------------------
// Combinators
// ---------------------------------------------------------------------

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + 'static,
    U: 'static,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

const FILTER_RETRIES: usize = 10_000;

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool + 'static,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.reason);
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    reason: String,
    f: F,
}

impl<S, U, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<U> + 'static,
    U: 'static,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        for _ in 0..FILTER_RETRIES {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map exhausted retries: {}", self.reason);
    }
}

/// A constant strategy.
pub struct Just<T: Clone>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among same-typed strategies (backs `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len());
        self.arms[i].generate(rng)
    }
}

// ---------------------------------------------------------------------
// Primitive strategies: ranges, any, strings, tuples
// ---------------------------------------------------------------------

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
impl_range_strategy_float!(f32, f64);

/// Types with a canonical whole-domain strategy, for [`any`].
pub trait Arbitrary: Sized + 'static {
    /// Strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// A strategy backed by a plain function.
pub struct FnStrategy<T>(fn(&mut TestRng) -> T);

impl<T: 'static> Strategy for FnStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// The canonical whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = FnStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                FnStrategy(|rng| rng.next_u64() as $t)
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    type Strategy = FnStrategy<bool>;
    fn arbitrary() -> Self::Strategy {
        FnStrategy(|rng| rng.next_u64() & 1 == 1)
    }
}

impl Arbitrary for f64 {
    type Strategy = FnStrategy<f64>;
    fn arbitrary() -> Self::Strategy {
        // finite values only; magnitudes spread across a wide range
        FnStrategy(|rng| {
            let mag = (rng.next_f64() * 2.0 - 1.0) * 1.0e12;
            mag * rng.next_f64()
        })
    }
}

// --- &'static str: a mini-regex string strategy -----------------------

enum PatAtom {
    Lit(char),
    Class(Vec<char>),
}

fn parse_pattern(pat: &str) -> Vec<(PatAtom, usize, usize)> {
    let mut chars = pat.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let atom = if c == '[' {
            let mut set = Vec::new();
            let mut prev: Option<char> = None;
            for c in chars.by_ref() {
                if c == ']' {
                    break;
                }
                if c == '-' {
                    // a trailing '-' (or one with no successor yet) is
                    // handled when the next char arrives or as a literal
                    if prev.is_some() {
                        prev = Some('\u{0}'); // marker: pending range
                        continue;
                    }
                    set.push('-');
                    continue;
                }
                if prev == Some('\u{0}') {
                    // complete a range: last pushed char up to c
                    let lo = *set.last().expect("range has a start");
                    for x in (lo as u32 + 1)..=(c as u32) {
                        if let Some(ch) = char::from_u32(x) {
                            set.push(ch);
                        }
                    }
                    prev = Some(c);
                    continue;
                }
                set.push(c);
                prev = Some(c);
            }
            if prev == Some('\u{0}') {
                set.push('-'); // pattern ended "x-]": treat '-' literally
            }
            PatAtom::Class(set)
        } else {
            PatAtom::Lit(c)
        };
        let (lo, hi) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            match spec.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse().expect("repeat lower bound"),
                    b.trim().parse().expect("repeat upper bound"),
                ),
                None => {
                    let n = spec.trim().parse().expect("repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push((atom, lo, hi));
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for (atom, lo, hi) in parse_pattern(self) {
            let n = if lo == hi { lo } else { lo + rng.below(hi - lo + 1) };
            for _ in 0..n {
                match &atom {
                    PatAtom::Lit(c) => out.push(*c),
                    PatAtom::Class(set) => {
                        assert!(!set.is_empty(), "empty character class in `{self}`");
                        out.push(set[rng.below(set.len())]);
                    }
                }
            }
        }
        out
    }
}

// --- tuples -----------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

// ---------------------------------------------------------------------
// collection / option modules
// ---------------------------------------------------------------------

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A strategy for `Vec`s of `elem` values with length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                self.size.lo + rng.below(self.size.hi - self.size.lo + 1)
            };
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// See [`of`] / [`weighted`].
    pub struct OptionStrategy<S> {
        inner: S,
        some_prob: f64,
    }

    /// `Some` with probability 0.75 (matching upstream's default).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        weighted(0.75, inner)
    }

    /// `Some` with probability `some_prob`.
    pub fn weighted<S: Strategy>(some_prob: f64, inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner, some_prob }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_f64() < self.some_prob {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// `prop::…` paths used via the prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

// ---------------------------------------------------------------------
// Runner config and macros
// ---------------------------------------------------------------------

/// Test-runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Defines `#[test]` functions that run their body over generated
/// inputs. Supported syntax mirrors upstream:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0i64..10, v in prop::collection::vec(any::<bool>(), 0..4)) {
///         prop_assert!(x >= 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let __strategy = ( $( $strat, )+ );
                let mut __rng = $crate::TestRng::for_name(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    let __inputs = $crate::Strategy::generate(&__strategy, &mut __rng);
                    let __desc = format!("{:?}", __inputs);
                    let __result: ::std::result::Result<(), ::std::string::String> = (|| {
                        let ( $($arg,)+ ) = __inputs;
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(__msg) = __result {
                        panic!(
                            "proptest `{}` failed at case {}/{}:\n{}\ninputs: {}",
                            stringify!($name),
                            __case + 1,
                            __cfg.cases,
                            __msg,
                            __desc
                        );
                    }
                }
            }
        )*
    };
}

/// Uniform choice among the listed strategies (all must generate the
/// same type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if !(__l == __r) {
            return ::std::result::Result::Err(
                format!("assertion failed: `{:?}` != `{:?}`", __l, __r));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        if !(__l == __r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` != `{:?}`: {}", __l, __r, format!($($fmt)+)));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if __l == __r {
            return ::std::result::Result::Err(
                format!("assertion failed: `{:?}` == `{:?}`", __l, __r));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        if __l == __r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` == `{:?}`: {}", __l, __r, format!($($fmt)+)));
        }
    }};
}

/// Everything the workspace's tests import.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng, Union,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples() {
        let mut rng = TestRng::for_name("ranges");
        let s = (0i64..10, 0usize..=3, -1.0..=1.0f64);
        for _ in 0..1000 {
            let (a, b, c) = s.generate(&mut rng);
            assert!((0..10).contains(&a));
            assert!(b <= 3);
            assert!((-1.0..=1.0).contains(&c));
        }
    }

    #[test]
    fn string_pattern() {
        let mut rng = TestRng::for_name("string");
        for _ in 0..500 {
            let s = "[a-c][a-z0-9_]{0,6}x".generate(&mut rng);
            assert!(s.ends_with('x'));
            let first = s.chars().next().unwrap();
            assert!(('a'..='c').contains(&first), "{s}");
            assert!(s.len() >= 2 && s.len() <= 8, "{s}");
        }
        // class with literal '-' at the end and spaces/quotes
        for _ in 0..200 {
            let s = "[a-zA-Z '._-]{0,10}".generate(&mut rng);
            assert!(s.len() <= 10);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphabetic() || " '._-".contains(c)), "{s}");
        }
    }

    #[test]
    fn oneof_and_recursive() {
        #[derive(Debug, Clone)]
        enum T {
            #[allow(dead_code)]
            Leaf(i64),
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf(_) => 1,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (0i64..5).prop_map(T::Leaf);
        let strat = leaf.prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner)
                .prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::for_name("recursive");
        let mut saw_node = false;
        for _ in 0..200 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 4);
            saw_node |= matches!(t, T::Node(..));
        }
        assert!(saw_node);
    }

    proptest! {
        #[test]
        fn runner_smoke(v in prop::collection::vec(any::<u8>(), 0..8), flag in any::<bool>()) {
            prop_assert!(v.len() < 8);
            if flag {
                prop_assert_eq!(v.len(), v.len());
            } else {
                prop_assert_ne!(v.len() + 1, v.len());
            }
        }
    }

    #[test]
    #[should_panic(expected = "proptest `always_fails` failed")]
    fn failure_reports_inputs() {
        proptest! {
            #[allow(unused)]
            fn always_fails(x in 0i64..10) {
                prop_assert!(x < 0, "x = {}", x);
            }
        }
        always_fails();
    }
}
