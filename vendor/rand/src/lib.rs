//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored shim provides the (small) subset of the `rand` 0.8 API the
//! workspace uses: `StdRng::seed_from_u64`, `Rng::gen`, `Rng::gen_bool`,
//! and `Rng::gen_range` over integer and float ranges. The generator is
//! splitmix64 — deterministic, seedable, and statistically good enough
//! for synthetic data generation (it is not, and does not need to be,
//! cryptographic or bit-compatible with upstream `rand`).

use std::ops::{Range, RangeInclusive};

/// Seedable construction (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling a value of `T` from a range, used by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// The user-facing random-value API.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next value uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A random value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::generate(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }

    /// A value uniform over `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for f32 {
    fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64() as f32
    }
}

/// Types with a uniform-range sampler — the single blanket
/// [`SampleRange`] impl below dispatches through this, which keeps
/// float-literal type inference working (`gen_range(0.2..0.7)` infers
/// `f64` exactly as with upstream `rand`).
pub trait SampleUniform: Copy {
    /// Draws uniformly from `[lo, hi)` (or `[lo, hi]` if `inclusive`).
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "empty range in gen_range");
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A deterministic seedable generator (splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15) }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..7);
            assert!((-5..7).contains(&v));
            let v = rng.gen_range(2usize..=6);
            assert!((2..=6).contains(&v));
            let f = rng.gen_range(0.5..2.5f64);
            assert!((0.5..2.5).contains(&f));
            let p: f64 = rng.gen();
            assert!((0.0..1.0).contains(&p));
        }
    }

    #[test]
    fn gen_bool_rate_plausible() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
    }
}
